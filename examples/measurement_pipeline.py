"""Scenario: from raw probes to a validated deployment plan.

The full operational pipeline a DIA operator would run, end to end:

1. **Measure** — simulate a King probing campaign against the (unknown)
   true latencies: 3 probes per pair, lognormal jitter, and node/pair
   losses (real campaigns never measure everything).
2. **Clean** — drop nodes with incomplete measurements, exactly as the
   paper prepares Meridian (2500 → 1796).
3. **Plan** — place servers (K-center-B), solve the assignment
   (Distributed-Greedy), and compute the simulation-clock offsets with
   headroom: the lag δ is planned against the 95th percentile of the
   jittered latencies (§II-E).
4. **Ship** — serialize the assignment + offsets as a JSON deployment
   plan (`repro.core.deployment`).
5. **Validate** — replay a workload in the event simulator against the
   *true* latencies with live jitter, and count late messages.

Run:
    python examples/measurement_pipeline.py
"""

import numpy as np

from repro.algorithms import distributed_greedy
from repro.core import ClientAssignmentProblem, DeploymentPlan, max_interaction_path_length
from repro.datasets import (
    MeasurementCampaign,
    drop_incomplete_nodes,
    simulate_king_measurements,
    synthesize_meridian_like,
)
from repro.net.jitter import LogNormalJitter
from repro.net.latency import LatencyMatrix
from repro.placement import kcenter_b
from repro.sim import poisson_workload, simulate_assignment
from repro.sim.dia import percentile_schedule

TRUE_NODES = 200
JITTER = LogNormalJitter(0.25)


def main() -> None:
    # The "real world": true latencies nobody observes directly.
    truth = synthesize_meridian_like(TRUE_NODES, seed=31)

    # 1. Measurement campaign.
    campaign = MeasurementCampaign(
        probes_per_pair=3,
        jitter=JITTER,
        pair_loss_rate=0.005,
        node_loss_rate=0.02,
    )
    raw = simulate_king_measurements(truth, campaign, seed=0)
    print(
        f"campaign: {TRUE_NODES} nodes probed, "
        f"{np.isnan(raw).sum() // 2} unordered pairs unmeasured"
    )

    # 2. Cleaning.
    measured, report = drop_incomplete_nodes(raw)
    print(f"cleaning: {report.n_before} -> {report.n_after} nodes "
          f"({len(report.dropped)} dropped)\n")
    kept = np.array(
        [u for u in range(TRUE_NODES) if u not in set(report.dropped)]
    )
    truth_kept = truth.submatrix(kept)

    # 3. Plan on the measured matrix with percentile headroom.
    servers = kcenter_b(measured, 16, seed=0)
    problem = ClientAssignmentProblem(measured, servers)
    assignment = distributed_greedy(problem)
    schedule = percentile_schedule(assignment, JITTER, 95.0)
    print(
        f"plan: D(measured) = "
        f"{max_interaction_path_length(assignment):.0f} ms, "
        f"lag planned at p95 = {schedule.delta:.0f} ms"
    )

    # 4. Ship.
    plan = DeploymentPlan.from_schedule(schedule)
    plan.save("/tmp/dia_deployment.json")
    print(f"shipped: /tmp/dia_deployment.json "
          f"({len(plan.client_assignments)} clients, "
          f"{len(plan.server_offsets)} servers)\n")

    # 5. Validate against the true network with live jitter.
    ops = poisson_workload(problem.n_clients, rate=0.002, horizon=2000, seed=1)
    result = simulate_assignment(
        schedule,
        ops,
        jitter=JITTER,
        seed=2,
        allow_late=True,
        base_matrix=truth_kept.values,
    )
    late = result.late_server_arrivals + result.late_client_updates
    print(
        f"validation: {result.n_operations} operations, "
        f"{result.n_messages} messages over TRUE latencies + live jitter"
    )
    print(
        f"late messages: {late} ({late / result.n_messages:.3%}), "
        f"timewarp repairs: {result.repairs}, "
        f"consistent: {result.servers_consistent}"
    )
    print(
        "\nThe p95 headroom absorbs both the measurement error and the "
        "live jitter;\nre-plan at a higher percentile if the late rate "
        "exceeds the application's artifact budget."
    )


if __name__ == "__main__":
    main()
