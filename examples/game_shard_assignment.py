"""Scenario: assigning players to mirrored game servers.

A multiplayer game operator runs 12 mirrored world servers (the paper's
distributed server architecture) with limited slots per server. Players
are spread across the world; the operator wants the *fairness-safe*
interaction time — the constant lag δ every operation is executed with —
as low as possible.

This example:

1. builds a player population on a clustered latency matrix;
2. compares the intuitive nearest-server matchmaking against the
   paper's Distributed-Greedy assignment under per-server slot limits;
3. derives the simulation-time offsets each server must run ahead by
   (the deployable output of the paper's §II-C analysis);
4. validates both deployments in the discrete-event simulator: every
   player sees every action after exactly δ ms, in issuance order.

Run:
    python examples/game_shard_assignment.py
"""

import numpy as np

from repro.algorithms import distributed_greedy_detailed, nearest_server
from repro.core import ClientAssignmentProblem, OffsetSchedule, max_interaction_path_length
from repro.datasets import synthesize_meridian_like
from repro.placement import kcenter_b
from repro.sim import poisson_workload, simulate_assignment

N_PLAYERS = 240
N_SERVERS = 12
SLOTS_PER_SERVER = 30  # capacity: 1.5x the balanced load


def main() -> None:
    matrix = synthesize_meridian_like(N_PLAYERS, seed=7)
    servers = kcenter_b(matrix, N_SERVERS, seed=0)
    problem = ClientAssignmentProblem(
        matrix, servers, capacities=SLOTS_PER_SERVER
    )
    print(
        f"{N_PLAYERS} players, {N_SERVERS} mirrored servers, "
        f"{SLOTS_PER_SERVER} slots each\n"
    )

    # --- Matchmaking strategies -------------------------------------
    nearest = nearest_server(problem)
    refined = distributed_greedy_detailed(problem)

    for label, assignment in (
        ("nearest-server matchmaking", nearest),
        ("distributed-greedy refinement", refined.assignment),
    ):
        d = max_interaction_path_length(assignment)
        loads = assignment.loads()
        print(f"{label}:")
        print(f"  fairness-safe action delay delta = {d:.0f} ms")
        print(
            f"  server loads: min={loads.min()}, max={loads.max()}, "
            f"servers used: {assignment.used_servers().size}/{N_SERVERS}"
        )

    saved = max_interaction_path_length(nearest) - refined.final_d
    print(
        f"\nreassigning {refined.n_modifications} players "
        f"({refined.n_messages} coordination messages) cut the action "
        f"delay by {saved:.0f} ms\n"
    )

    # --- Deployable clock offsets ------------------------------------
    schedule = OffsetSchedule(refined.assignment)
    offsets = schedule.server_offsets
    print("per-server simulation clock offsets (run ahead of clients by):")
    for rank, s in enumerate(np.argsort(-offsets)[:5]):
        print(f"  server node {problem.servers[s]:>4}: +{offsets[s]:.0f} ms")
    print("  ...\n")

    # --- End-to-end validation ---------------------------------------
    ops = poisson_workload(N_PLAYERS, rate=0.002, horizon=2000.0, seed=1)
    report = simulate_assignment(schedule, ops)
    print(
        f"simulated {report.n_operations} player actions "
        f"({report.n_messages} messages): healthy={report.healthy}"
    )
    print(
        f"every action visible to every player after exactly "
        f"{report.max_interaction_time:.0f} ms "
        f"(consistent={report.servers_consistent}, fair={report.fair})"
    )


if __name__ == "__main__":
    main()
