"""Scenario: choosing a latency percentile to plan against under jitter.

Real networks jitter; the paper's §II-E prescribes planning the
assignment's constant lag δ against a chosen *percentile* of the latency
distribution. Planning at the median keeps δ small but many messages
arrive late (inconsistency repairs, artifacts); planning at p99.9 nearly
eliminates lateness at the cost of a longer lag.

This example runs the actual tradeoff: one assignment, lognormal
jitter, and a sweep of planning percentiles, each validated in the
discrete-event simulator against the true (base) latencies.

Run:
    python examples/jitter_tolerant_scheduling.py
"""

from repro.algorithms import greedy
from repro.core import ClientAssignmentProblem, max_interaction_path_length
from repro.datasets import synthesize_meridian_like
from repro.net.jitter import LogNormalJitter
from repro.placement import kcenter_a
from repro.sim import poisson_workload, simulate_assignment
from repro.sim.dia import percentile_schedule

JITTER_SIGMA = 0.3
PERCENTILES = (50.0, 75.0, 90.0, 99.0, 99.9)


def main() -> None:
    matrix = synthesize_meridian_like(150, seed=11)
    problem = ClientAssignmentProblem(matrix, kcenter_a(matrix, 12, seed=0))
    assignment = greedy(problem)
    jitter = LogNormalJitter(JITTER_SIGMA)
    ops = poisson_workload(problem.n_clients, rate=0.003, horizon=2000.0, seed=1)

    d_base = max_interaction_path_length(assignment)
    print(
        f"assignment D (no jitter) = {d_base:.0f} ms; "
        f"lognormal jitter sigma = {JITTER_SIGMA}\n"
    )
    print(
        f"{'plan at':>8} {'delta (ms)':>11} {'late msgs':>10} "
        f"{'late rate':>10} {'repairs':>8}"
    )
    for q in PERCENTILES:
        schedule = percentile_schedule(assignment, jitter, q)
        report = simulate_assignment(
            schedule,
            ops,
            jitter=jitter,
            seed=2,
            allow_late=True,
            base_matrix=matrix.values,
        )
        late = report.late_server_arrivals + report.late_client_updates
        print(
            f"{q:>7.1f}% {schedule.delta:>11.0f} {late:>10d} "
            f"{late / report.n_messages:>10.4%} {report.repairs:>8d}"
        )

    print(
        "\nInterpretation: each row trades interactivity (delta) for "
        "consistency safety.\nThe paper recommends a high percentile "
        "(e.g. 90th) as the practical middle ground;\nselecting the exact "
        "percentile is application policy (paper §II-E)."
    )


if __name__ == "__main__":
    main()
