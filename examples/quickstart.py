"""Quickstart: solve one client assignment instance end to end.

Generates a synthetic Internet latency matrix, places servers with the
2-approximate K-center algorithm, runs all four of the paper's
heuristics, and prints each algorithm's maximum interaction path length
(the paper's objective D) and its normalized interactivity relative to
the super-optimal lower bound.

Run:
    python examples/quickstart.py
"""

from repro import (
    ClientAssignmentProblem,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.algorithms import get_algorithm, paper_algorithm_names
from repro.datasets import synthesize_meridian_like
from repro.placement import kcenter_a


def main() -> None:
    # A 300-node latency matrix statistically similar to the Meridian
    # data set the paper uses (clustered, heavy-tailed, non-metric).
    matrix = synthesize_meridian_like(300, seed=42)
    print(f"network: {matrix}")

    # Place 30 servers with K-center-A; every node hosts a client.
    servers = kcenter_a(matrix, 30, seed=0)
    problem = ClientAssignmentProblem(matrix, servers)
    print(f"instance: {problem}")

    # The paper's normalization baseline.
    lower_bound = interaction_lower_bound(problem)
    print(f"super-optimal lower bound: {lower_bound:.1f} ms\n")

    print(f"{'algorithm':<22} {'D (ms)':>10} {'normalized':>11}")
    for name in paper_algorithm_names():
        assignment = get_algorithm(name)(problem, seed=0)
        d = max_interaction_path_length(assignment)
        print(f"{name:<22} {d:>10.1f} {d / lower_bound:>11.3f}")

    print(
        "\nExpected shape (paper §V): nearest-server is the worst;"
        " the greedy algorithms approach the lower bound."
    )


if __name__ == "__main__":
    main()
