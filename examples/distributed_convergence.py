"""Scenario: watching Distributed-Greedy converge (paper Fig. 9, live).

Distributed-Greedy runs *on the servers themselves*: the server holding
a client on the current longest interaction path coordinates a
reassignment, one modification at a time. This example traces the
protocol on one instance: the maximum interaction path length after
every modification, which client moved, and the message cost — then
verifies the paper's observation that a few tens of modifications
(a small fraction of the client count) capture ~99% of the improvement.

Run:
    python examples/distributed_convergence.py
"""

from repro.algorithms import distributed_greedy_detailed, nearest_server
from repro.core import (
    ClientAssignmentProblem,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.datasets import synthesize_meridian_like
from repro.placement import random_placement


def main() -> None:
    matrix = synthesize_meridian_like(400, seed=5)
    problem = ClientAssignmentProblem(matrix, random_placement(matrix, 40, seed=2))
    lb = interaction_lower_bound(problem)

    initial = nearest_server(problem)
    print(
        f"initial (nearest-server) D = "
        f"{max_interaction_path_length(initial):.0f} ms "
        f"(normalized {max_interaction_path_length(initial) / lb:.3f})\n"
    )

    result = distributed_greedy_detailed(problem, initial=initial)

    print("convergence trace (D after each assignment modification):")
    trace = result.trace
    milestones = sorted(
        {0, 1, 2, 5, 10, 20, 40, len(trace) - 1} & set(range(len(trace)))
    )
    for i in milestones:
        marker = " <- initial" if i == 0 else (" <- final" if i == len(trace) - 1 else "")
        print(f"  after {i:>3} mods: D = {trace[i]:>7.0f} ms "
              f"(normalized {trace[i] / lb:.3f}){marker}")

    total_improvement = trace[0] - trace[-1]
    pct_clients = 100.0 * result.n_modifications / problem.n_clients
    print(
        f"\nconverged: {result.converged}; "
        f"{result.n_modifications} modifications "
        f"({pct_clients:.1f}% of {problem.n_clients} clients), "
        f"{result.n_messages} protocol messages"
    )
    print(
        f"total improvement: {total_improvement:.0f} ms "
        f"({100 * total_improvement / trace[0]:.1f}% of the initial D)"
    )

    # The paper's ~99% observation, on this instance.
    budget = 2 * problem.n_servers
    at_budget = trace[min(budget, len(trace) - 1)]
    fraction = (trace[0] - at_budget) / total_improvement if total_improvement else 1.0
    print(
        f"improvement captured within {budget} modifications "
        f"(2 per server): {100 * fraction:.1f}%"
    )


if __name__ == "__main__":
    main()
