"""Scenario: keeping interactivity low while players come and go.

Server placement is a long-term decision, but client assignment "can be
adjusted promptly to adapt to system dynamics" (paper §VI). This example
runs a session-long join/leave process through the online assignment
manager and compares three operating policies:

1. **nearest joins** — each arriving player connects to the closest
   server (what naive matchmaking does);
2. **greedy joins** — each arrival is placed to minimize the resulting
   maximum interaction path length (an O(|S|^2) decision);
3. **greedy joins + periodic rebalance** — additionally run a bounded
   Distributed-Greedy repair every 25 events.

Run:
    python examples/online_churn.py
"""

from repro.algorithms.online import simulate_churn
from repro.datasets import synthesize_meridian_like
from repro.placement import kcenter_b

N_NODES = 250
N_SERVERS = 16
N_EVENTS = 400


def main() -> None:
    matrix = synthesize_meridian_like(N_NODES, seed=21)
    servers = kcenter_b(matrix, N_SERVERS, seed=0)

    policies = (
        ("nearest joins", dict(join_policy="nearest")),
        ("greedy joins", dict(join_policy="greedy")),
        (
            "greedy + rebalance/25",
            dict(join_policy="greedy", rebalance_every=25, rebalance_moves=8),
        ),
    )

    print(
        f"{N_EVENTS} join/leave events, {N_SERVERS} servers, "
        f"{N_NODES}-node network\n"
    )
    print(f"{'policy':<24} {'mean D (ms)':>12} {'final D (ms)':>13} {'repairs':>8}")
    results = {}
    for label, kwargs in policies:
        result = simulate_churn(
            matrix, servers, n_events=N_EVENTS, seed=3, **kwargs
        )
        results[label] = result
        print(
            f"{label:<24} {result.mean_d():>12.1f} {result.final_d():>13.1f} "
            f"{result.moves_by_rebalance:>8d}"
        )

    nearest = results["nearest joins"].mean_d()
    managed = results["greedy + rebalance/25"].mean_d()
    print(
        f"\nplacement-aware joins + periodic repair keep the fairness-safe "
        f"delay {100 * (nearest - managed) / nearest:.0f}% below "
        f"nearest-server matchmaking, with no disruption to connected "
        f"players beyond the listed repair moves."
    )


if __name__ == "__main__":
    main()
