"""Scenario: provisioning server capacity for a simulation platform.

A distributed interactive simulation operator must decide how much
capacity to provision per server site (paper §IV-E / Fig. 10): too
little and the assignment algorithms cannot place clients well; beyond a
point, extra capacity buys nothing. This example sweeps per-server
capacity, reports the interactivity of each algorithm, and locates the
knee — the smallest capacity within 5% of the uncapacitated optimum.

Run:
    python examples/capacity_planning.py
"""

import numpy as np

from repro.algorithms import get_algorithm, paper_algorithm_names
from repro.core import (
    ClientAssignmentProblem,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.datasets import synthesize_meridian_like
from repro.placement import random_placement

N_NODES = 240
N_SERVERS = 24


def main() -> None:
    matrix = synthesize_meridian_like(N_NODES, seed=3)
    servers = random_placement(matrix, N_SERVERS, seed=0)
    balanced = N_NODES // N_SERVERS
    capacities = [balanced, int(1.5 * balanced), 2 * balanced, 4 * balanced, N_NODES]
    lb = interaction_lower_bound(ClientAssignmentProblem(matrix, servers))

    algorithms = paper_algorithm_names()
    print(
        f"{N_NODES} clients, {N_SERVERS} servers "
        f"(balanced load = {balanced} clients/server)\n"
    )
    header = f"{'capacity':>9} " + " ".join(f"{a:>20}" for a in algorithms)
    print(header)

    results = {a: [] for a in algorithms}
    for capacity in capacities:
        problem = ClientAssignmentProblem(matrix, servers, capacities=capacity)
        row = [f"{capacity:>9}"]
        for name in algorithms:
            assignment = get_algorithm(name)(problem, seed=0)
            norm = max_interaction_path_length(assignment) / lb
            results[name].append(norm)
            row.append(f"{norm:>20.3f}")
        print(" ".join(row))

    print("\nprovisioning knee (capacity reaching within 5% of uncapacitated):")
    for name in algorithms:
        best = results[name][-1]  # loosest capacity ~= uncapacitated
        knee = next(
            (
                capacities[i]
                for i in range(len(capacities))
                if results[name][i] <= 1.05 * best
            ),
            capacities[-1],
        )
        print(f"  {name:<22} {knee} clients/server")

    print(
        "\nExpected shape (paper Fig. 10): interactivity degrades as "
        "capacity tightens;\nnearest-server and distributed-greedy are "
        "least affected, and distributed-greedy\nremains the best overall."
    )


if __name__ == "__main__":
    main()
