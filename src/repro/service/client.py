"""A blocking JSON-lines client with request pipelining.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` framing
over one TCP connection. Two usage styles:

- ``request(op, **params)`` — send one request and block for its reply.
- ``send(op, **params)`` then ``recv()`` — fire-and-collect pipelining;
  the server replies strictly in order, so the *n*-th ``recv`` matches
  the *n*-th ``send``. This is what lets the load generator keep the
  socket full without threads.

Replies are returned as envelope dicts (``ok`` / ``result`` /
``error``). :meth:`call` unwraps: it returns ``result`` directly and
raises :class:`~repro.errors.ServiceError` (carrying the wire
``error.code``) on a failure reply.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame


class RemoteError(ServiceError):
    """A failure reply from the server, as a local exception.

    ``code`` is the *wire* error code (overriding the class-level
    ``service-error``), so callers can dispatch on
    ``exc.code`` exactly as they would on ``reply["error"]["code"]``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message


class ServiceClient:
    """One blocking connection to an assignment server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._max_frame_bytes = int(max_frame_bytes)
        self._next_id = 1
        self._inflight = 0
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, op: str, **params: Any) -> int:
        """Write one request frame; returns its request id."""
        self._require_open()
        request_id = self._next_id
        self._next_id += 1
        frame: Dict[str, Any] = {"id": request_id, "op": op}
        frame.update(params)
        self._sock.sendall(encode_frame(frame))
        self._inflight += 1
        return request_id

    def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (for protocol tests; no reply bookkeeping)."""
        self._require_open()
        self._sock.sendall(payload)
        self._inflight += 1

    def recv(self) -> Dict[str, Any]:
        """Read the next reply envelope (in send order)."""
        self._require_open()
        line = self._file.readline(self._max_frame_bytes + 1)
        if not line:
            raise ServiceError("server closed the connection")
        if not line.endswith(b"\n"):
            raise ProtocolError("reply frame exceeds the size limit")
        self._inflight -= 1
        return decode_frame(line, max_bytes=self._max_frame_bytes)

    def drain(self) -> List[Dict[str, Any]]:
        """Collect every outstanding pipelined reply."""
        replies = []
        while self._inflight > 0:
            replies.append(self.recv())
        return replies

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request and block for its reply envelope."""
        if self._inflight:
            raise ServiceError(
                "request() with pipelined replies outstanding; drain() first"
            )
        self.send(op, **params)
        return self.recv()

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Like :meth:`request`, but unwrap: result dict or raise."""
        return self.unwrap(self.request(op, **params))

    @staticmethod
    def unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
        """Extract ``result`` from an envelope; raise on error replies."""
        if not isinstance(reply, dict) or "ok" not in reply:
            raise ProtocolError(f"malformed reply envelope: {reply!r}")
        if reply["ok"]:
            return reply.get("result", {})
        error = reply.get("error") or {}
        raise RemoteError(
            str(error.get("code", "service-error")),
            str(error.get("message", "")),
        )

    # -- convenience wrappers ------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def open_session(self, **params: Any) -> Dict[str, Any]:
        return self.call("open_session", **params)

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.call("close_session", session=session)

    def batch(
        self, session: str, events: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        return self.call("batch", session=session, events=events)["results"]

    def query(self, session: str, what: str = "stats") -> Dict[str, Any]:
        return self.call("query", session=session, what=what)

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("client is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["RemoteError", "ServiceClient"]
