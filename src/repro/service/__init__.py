"""Assignment-as-a-service: the session server over the online stack.

The paper frames client assignment as a *continuously running* concern —
clients join and leave while the system maintains interactivity — and
this package serves it that way, behind a transport-agnostic service
API:

- :mod:`repro.service.core` — :class:`AssignmentService`, the
  transport-agnostic core: session create/close, client join/leave,
  server crash/recover/partition/heal, rebalance, and
  D/interactivity/degraded-state queries, each session wrapping a
  :class:`~repro.resilience.runtime.DurableRuntime` (volatile or
  WAL-backed per :class:`~repro.resilience.runtime.DurabilityConfig`).
  Every request and reply is a plain JSON-able dict, so the in-process
  path (``service.handle(request)``) and the wire path are **output
  equivalent** — the same seeded event sequence yields byte-identical
  assignment trajectories and state digests through either
  (``tests/service/test_equivalence.py`` enforces it).
- :mod:`repro.service.protocol` — JSON-lines wire framing with a frame
  size cap, request validation, and structured error replies carrying
  the stable codes of :mod:`repro.errors` (clients never parse
  exception strings).
- :mod:`repro.service.server` — the asyncio TCP server multiplexing
  many concurrent sessions over many connections, plus
  :class:`ServerThread` for embedding a live server in tests and the
  load generator.
- :mod:`repro.service.client` — a blocking socket client with request
  pipelining.
- :mod:`repro.service.workload` — deterministic seeded
  join/leave/crash/recover/partition/heal/rebalance event sequences
  shared by the load generator, the equivalence tests, and the
  in-process replayer.
- :mod:`repro.service.replay` — the *library-path* replayer: drives
  the same events straight through
  :class:`~repro.algorithms.online.OnlineAssignmentManager` +
  :class:`~repro.faults.failover.FailoverController` +
  :class:`~repro.resilience.degrade.DegradeController` with no service
  code in the loop, producing the reference trajectory the service
  must match.
- :mod:`repro.service.loadgen` — sustained churn driver reporting
  events/sec and p50/p99 latencies through the obs registry.

CLI: ``repro serve`` / ``repro loadgen``. See ``docs/service.md``.
"""

from repro.service.core import (
    AssignmentService,
    Session,
    SessionConfig,
    SessionInfo,
)
from repro.service.client import ServiceClient
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.service.replay import ReplayResult, replay_events, trajectory_digest
from repro.service.server import AssignmentServer, ServerThread
from repro.service.workload import generate_events

__all__ = [
    # core
    "AssignmentService",
    "Session",
    "SessionConfig",
    "SessionInfo",
    # protocol
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "ok_reply",
    "error_reply",
    # server / client
    "AssignmentServer",
    "ServerThread",
    "ServiceClient",
    # workload / replay / loadgen
    "generate_events",
    "ReplayResult",
    "replay_events",
    "trajectory_digest",
    "LoadgenReport",
    "run_loadgen",
]
