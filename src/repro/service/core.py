"""The transport-agnostic assignment service core.

:class:`AssignmentService` multiplexes named **sessions**, each an
independent online-assignment world: a latency matrix (synthesized from
a seeded spec and shared across sessions), a server placement, and a
:class:`~repro.resilience.runtime.DurableRuntime` (volatile or
WAL-backed per the session's
:class:`~repro.resilience.runtime.DurabilityConfig`) carrying the
online manager, failover controller and degraded-mode state machine.

The single entry point is :meth:`AssignmentService.handle`: a plain
dict request in, a plain dict reply out — the asyncio server
(:mod:`repro.service.server`) adds nothing but framing, so driving
``handle`` in-process and driving the TCP socket are **output
equivalent** by construction. All library exceptions surface as
structured error replies carrying the stable codes of
:mod:`repro.errors`.

Determinism contract: every reply is a pure function of the session's
event history (no wall clocks, no RNG inside the service), so a seeded
event sequence produces byte-identical reply streams across runs,
transports, and durability modes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.algorithms.online import OnlineConfig
from repro.core import interaction_lower_bound
from repro.errors import (
    BadRequestError,
    CapacityError,
    InvalidAssignmentError,
    InvalidParameterError,
    ReproError,
    ResilienceError,
    SessionStateError,
    UnknownOperationError,
    UnknownSessionError,
)
from repro.net.latency import LatencyMatrix
from repro.obs import fingerprint_matrix, registry
from repro.resilience.checkpoint import encode_float, state_digest
from repro.resilience.degrade import HEALTHY, DegradePolicy
from repro.resilience.runtime import (
    DurabilityConfig,
    DurableRuntime,
    _NullWal,
)
from repro.service.protocol import OPS, error_reply, ok_reply, parse_request
from repro._version import __version__

#: Session event operations (allowed inside ``batch``).
EVENT_OPS = frozenset(
    {"join", "leave", "crash", "recover", "partition", "heal", "rebalance"}
)

#: Supported ``query`` targets.
QUERY_WHATS = frozenset(
    {"d", "health", "digest", "stats", "backlog", "interactivity", "config"}
)

_PLACEMENTS = ("k-center-b", "k-center-a", "random")


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to (re)build one session deterministically.

    The matrix is specified, not shipped: the service synthesizes it
    from ``(kind, nodes, matrix_seed)`` and caches it across sessions,
    so a remote client and an in-process replayer that agree on the
    spec operate on bit-identical latencies.

    Parameters
    ----------
    nodes, kind, matrix_seed:
        Synthetic latency matrix spec (``"meridian"`` or ``"mit"``).
    n_servers, placement, placement_seed:
        Server placement over the matrix (ignored when ``servers``
        lists explicit node indices).
    servers:
        Explicit server node indices; overrides the placement spec.
    online:
        Capacity and join policy
        (:class:`~repro.algorithms.online.OnlineConfig`).
    durability:
        Volatile (``mode="off"``) or WAL-backed (``mode="wal"``)
        runtime (:class:`~repro.resilience.runtime.DurabilityConfig`).
    max_backlog, d_budget:
        Degraded-mode policy
        (:class:`~repro.resilience.degrade.DegradePolicy`).
    readmit_moves, shed_policy:
        Failover behavior (see
        :class:`~repro.faults.failover.FailoverController`).
    """

    nodes: int = 120
    kind: str = "meridian"
    matrix_seed: int = 0
    n_servers: int = 8
    placement: str = "k-center-b"
    placement_seed: int = 0
    servers: Optional[Tuple[int, ...]] = None
    online: OnlineConfig = field(default_factory=OnlineConfig)
    durability: DurabilityConfig = field(
        default_factory=lambda: DurabilityConfig(mode="off")
    )
    max_backlog: int = 64
    d_budget: Optional[float] = None
    readmit_moves: int = 8
    shed_policy: str = "shed"

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise InvalidParameterError(f"nodes must be >= 2, got {self.nodes}")
        if self.online.shards > 1 and self.durability.durable:
            raise InvalidParameterError(
                "sharded sessions (shards > 1) are volatile-only; "
                "use durability mode 'off'"
            )
        if self.kind not in ("meridian", "mit"):
            raise InvalidParameterError(
                f"kind must be 'meridian' or 'mit', got {self.kind!r}"
            )
        if self.servers is None and self.n_servers < 1:
            raise InvalidParameterError(
                f"n_servers must be >= 1, got {self.n_servers}"
            )
        if self.placement not in _PLACEMENTS:
            raise InvalidParameterError(
                f"placement must be one of {_PLACEMENTS}, "
                f"got {self.placement!r}"
            )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the wire shape of ``open_session``)."""
        return {
            "nodes": int(self.nodes),
            "kind": self.kind,
            "matrix_seed": int(self.matrix_seed),
            "n_servers": int(self.n_servers),
            "placement": self.placement,
            "placement_seed": int(self.placement_seed),
            "servers": (
                None if self.servers is None else [int(s) for s in self.servers]
            ),
            "capacity": self.online.capacity,
            "join_policy": self.online.join_policy,
            "shards": int(self.online.shards),
            "durability": self.durability.mode,
            "checkpoint_every": self.durability.checkpoint_every,
            "fsync_every": self.durability.fsync_every,
            "max_backlog": int(self.max_backlog),
            "d_budget": self.d_budget,
            "readmit_moves": int(self.readmit_moves),
            "shed_policy": self.shed_policy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SessionConfig":
        """Rebuild a config from wire parameters (unknown keys rejected)."""
        known = {
            "nodes", "kind", "matrix_seed", "n_servers", "placement",
            "placement_seed", "servers", "capacity", "join_policy",
            "shards", "durability", "checkpoint_every", "fsync_every",
            "max_backlog",
            "d_budget", "readmit_moves", "shed_policy",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise BadRequestError(f"unknown session parameters: {unknown}")
        servers = data.get("servers")
        capacity = data.get("capacity")
        d_budget = data.get("d_budget")
        checkpoint_every = data.get("checkpoint_every", 25)
        try:
            return cls(
                nodes=int(data.get("nodes", 120)),
                kind=str(data.get("kind", "meridian")),
                matrix_seed=int(data.get("matrix_seed", 0)),
                n_servers=int(data.get("n_servers", 8)),
                placement=str(data.get("placement", "k-center-b")),
                placement_seed=int(data.get("placement_seed", 0)),
                servers=(
                    None
                    if servers is None
                    else tuple(int(s) for s in servers)
                ),
                online=OnlineConfig(
                    capacity=None if capacity is None else int(capacity),
                    join_policy=str(data.get("join_policy", "greedy")),
                    shards=int(data.get("shards", 1)),
                ),
                durability=DurabilityConfig(
                    mode=str(data.get("durability", "off")),
                    checkpoint_every=(
                        None
                        if checkpoint_every is None
                        else int(checkpoint_every)
                    ),
                    fsync_every=int(data.get("fsync_every", 8)),
                ),
                max_backlog=int(data.get("max_backlog", 64)),
                d_budget=None if d_budget is None else float(d_budget),
                readmit_moves=int(data.get("readmit_moves", 8)),
                shed_policy=str(data.get("shed_policy", "shed")),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ReproError):
                raise
            raise BadRequestError(f"invalid session parameters: {exc}") from None

    # -- resolution ----------------------------------------------------
    def build_matrix(self) -> LatencyMatrix:
        """Synthesize the session's latency matrix from its spec."""
        from repro.datasets import synthesize_meridian_like, synthesize_mit_like

        if self.kind == "mit":
            return synthesize_mit_like(self.nodes, seed=self.matrix_seed)
        return synthesize_meridian_like(self.nodes, seed=self.matrix_seed)

    def resolve_servers(self, matrix: LatencyMatrix) -> Tuple[int, ...]:
        """The session's server node indices (explicit or placed)."""
        if self.servers is not None:
            return tuple(int(s) for s in self.servers)
        from repro.placement import kcenter_a, kcenter_b, random_placement

        place = {
            "k-center-b": kcenter_b,
            "k-center-a": kcenter_a,
            "random": random_placement,
        }[self.placement]
        placed = place(matrix, self.n_servers, seed=self.placement_seed)
        return tuple(int(s) for s in placed)

    def degrade_policy(self) -> DegradePolicy:
        """The session's degraded-mode policy object."""
        return DegradePolicy(max_backlog=self.max_backlog, d_budget=self.d_budget)


@dataclass(frozen=True)
class SessionInfo:
    """Summary row for ``list_sessions``."""

    session: str
    n_clients: int
    n_servers: int
    health: str
    events: int
    durability: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "session": self.session,
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "health": self.health,
            "events": self.events,
            "durability": self.durability,
        }


class ShardedSessionRuntime:
    """Volatile runtime for region-sharded sessions (``shards > 1``).

    Presents the slice of the :class:`~repro.resilience.runtime.
    DurableRuntime` surface that :class:`Session` drives — join/leave/
    rebalance with the same outcome vocabulary, the degraded-mode state
    machine, queries, digests — over a
    :class:`~repro.scale.sharded.ShardedOnlineManager` instead of a
    single full-universe manager. Sharded sessions are **volatile
    only** (enforced by :class:`SessionConfig`): there is no WAL, no
    checkpoints, and server fault events (crash/recover/partition/heal)
    raise :class:`~repro.errors.SessionStateError` — the sharded
    manager does not model per-server fault state.

    ``applied_seq`` counts applied events (monotone from 1), playing
    the role the WAL sequence number plays in durable sessions.
    """

    def __init__(
        self,
        matrix: LatencyMatrix,
        servers: Tuple[int, ...],
        *,
        online: OnlineConfig,
        policy: "DegradePolicy",
    ) -> None:
        import numpy as np

        from repro.resilience.degrade import DegradeController
        from repro.scale.sharded import ShardedOnlineManager

        self._matrix = matrix
        # Universe = every node, matching the unsharded manager's
        # default (a server node may host a client too).
        self._manager = ShardedOnlineManager(
            matrix,
            servers,
            online,
            client_nodes=np.arange(matrix.n_nodes, dtype=np.int64),
        )
        self._degrade = DegradeController(self._manager, policy)
        self._config: Dict[str, Any] = {
            "servers": [int(s) for s in servers],
            "capacity": online.capacity,
            "join_policy": online.join_policy,
            "shards": int(self._manager.n_shards),
            "max_backlog": policy.max_backlog,
            "d_budget": (
                None
                if policy.d_budget is None
                else encode_float(policy.d_budget)
            ),
            "matrix_fingerprint": fingerprint_matrix(matrix),
        }
        self._applied_seq = 0
        self._closed = False

    # -- introspection -------------------------------------------------
    @property
    def manager(self) -> Any:
        """The wrapped :class:`ShardedOnlineManager`."""
        return self._manager

    @property
    def degrade(self) -> Any:
        """The degraded-mode state machine."""
        return self._degrade

    @property
    def health(self) -> str:
        return self._degrade.state

    @property
    def n_clients(self) -> int:
        return self._manager.n_clients

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def wal(self) -> _NullWal:
        """No log exists for volatile sharded sessions (``path`` None)."""
        return _NullWal(next_seq=self._applied_seq + 1)

    def current_d(self) -> float:
        """The current global maximum interaction path length."""
        return self._manager.current_d()

    def state_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serializable state (the digest basis)."""
        manager = self._manager
        return {
            "schema": "sharded-volatile-v1",
            "config": dict(self._config),
            "applied_seq": self._applied_seq,
            "manager": {
                "assigned": [
                    [int(node), int(manager.server_of(node))]
                    for node in manager.clients
                ],
                "d": encode_float(manager.current_d()),
            },
            "degrade": self._degrade.to_dict(),
        }

    def digest(self) -> str:
        """SHA-256 digest of :meth:`state_dict`."""
        return state_digest(self.state_dict())

    # -- events --------------------------------------------------------
    def join(self, node: int) -> str:
        """Admit a client; returns ``"assigned"``/``"queued"``/``"rejected"``."""
        self._require_open()
        node = int(node)
        if not 0 <= node < self._matrix.n_nodes:
            raise InvalidAssignmentError(f"client node {node} out of range")
        if self._manager.is_connected(node):
            raise InvalidAssignmentError(f"client {node} already connected")
        if self._degrade.in_backlog(node):
            raise InvalidAssignmentError(f"client {node} already queued")
        self._applied_seq += 1
        if self._degrade.state != HEALTHY:
            outcome = self._degrade.admission_blocked(node, "degraded")
        else:
            try:
                self._manager.join(node)
                outcome = "assigned"
            except CapacityError:
                outcome = self._degrade.admission_blocked(
                    node, "capacity-exhausted"
                )
        self._degrade.tick()
        return outcome

    def leave(self, node: int) -> str:
        """Remove a client; returns ``"left"``/``"dequeued"``/``"absent"``."""
        self._require_open()
        node = int(node)
        self._applied_seq += 1
        if self._manager.is_connected(node):
            self._manager.leave(node)
            outcome = "left"
        elif self._degrade.discard_queued(node):
            outcome = "dequeued"
        else:
            registry().counter("resilience.absent_leaves").inc()
            outcome = "absent"
        self._degrade.tick()
        return outcome

    def rebalance(self, *, max_moves: int = 16) -> int:
        """Bounded repair across shards; returns moves made."""
        self._require_open()
        if max_moves < 0:
            raise InvalidParameterError(
                f"max_moves must be >= 0, got {max_moves}"
            )
        self._applied_seq += 1
        moves = self._manager.rebalance(max_moves=int(max_moves))
        self._degrade.tick()
        return moves

    # -- unsupported fault events --------------------------------------
    def _no_faults(self, op: str) -> "Any":
        raise SessionStateError(
            f"sharded sessions do not support server fault events "
            f"({op}); open the session with shards=1 for fault testing"
        )

    def crash(self, server: int) -> Any:
        return self._no_faults("crash")

    def recover_server(self, server: int) -> Any:
        return self._no_faults("recover")

    def partition(self, servers: Any) -> Any:
        return self._no_faults("partition")

    def heal(self, servers: Any) -> Any:
        return self._no_faults("heal")

    # -- lifecycle -----------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ResilienceError("runtime is closed")

    def close(self) -> None:
        """Release the runtime (idempotent; nothing to sync)."""
        self._closed = True


class Session:
    """One live assignment world inside the service."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        matrix: LatencyMatrix,
        runtime: Union[DurableRuntime, ShardedSessionRuntime],
    ) -> None:
        self.id = session_id
        self.config = config
        self.matrix = matrix
        self.runtime = runtime
        self.events = 0
        self.closed = False

    # ------------------------------------------------------------------
    def info(self) -> SessionInfo:
        return SessionInfo(
            session=self.id,
            n_clients=self.runtime.n_clients,
            n_servers=self.runtime.manager.n_servers,
            health=self.runtime.health,
            events=self.events,
            durability=self.config.durability.mode,
        )

    def _event_envelope(self, op: str, outcome: str, **extra: Any) -> Dict[str, Any]:
        """The canonical per-event reply.

        ``d`` is the hex-encoded current D (byte-stable across paths);
        the same five keys — op, outcome, d, clients, health — form
        the trajectory entries of the output-equivalence contract.
        """
        self.events += 1
        runtime = self.runtime
        result = {
            "op": op,
            "outcome": outcome,
            "d": encode_float(runtime.current_d()),
            "clients": runtime.n_clients,
            "health": runtime.health,
            "seq": runtime.applied_seq,
        }
        result.update(extra)
        return result

    def apply_event(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one session event and build its reply envelope."""
        runtime = self.runtime
        if op == "join":
            node = _require_int(params, "node")
            outcome = runtime.join(node)
            server = (
                runtime.manager.server_of(node)
                if outcome == "assigned"
                else None
            )
            return self._event_envelope(op, outcome, server=server)
        if op == "leave":
            node = _require_int(params, "node")
            return self._event_envelope(op, runtime.leave(node))
        if op == "crash":
            server = _require_int(params, "server")
            record = runtime.crash(server)
            return self._event_envelope(
                op,
                "crashed",
                server=server,
                evacuated=record.n_evacuated,
                shed=[int(c) for c in record.shed],
            )
        if op == "recover":
            server = _require_int(params, "server")
            record = runtime.recover_server(server)
            return self._event_envelope(
                op,
                "recovered",
                server=server,
                rebalance_moves=record.rebalance_moves,
            )
        if op == "partition":
            servers = _require_int_list(params, "servers")
            stale = runtime.partition(servers)
            return self._event_envelope(
                op, "partitioned", servers=servers, stale=[int(c) for c in stale]
            )
        if op == "heal":
            servers = _require_int_list(params, "servers")
            runtime.heal(servers)
            return self._event_envelope(op, "healed", servers=servers)
        if op == "rebalance":
            max_moves = params.get("max_moves", 16)
            if not isinstance(max_moves, int) or isinstance(max_moves, bool):
                raise BadRequestError("'max_moves' must be an integer")
            moves = runtime.rebalance(max_moves=max_moves)
            return self._event_envelope(op, "rebalanced", moves=moves)
        raise UnknownOperationError(f"unknown session event op {op!r}")

    def query(self, what: str) -> Dict[str, Any]:
        """Read-only session introspection."""
        runtime = self.runtime
        manager = runtime.manager
        if what == "d":
            return {
                "d": encode_float(runtime.current_d()),
                "d_ms": runtime.current_d(),
            }
        if what == "health":
            degrade = runtime.degrade
            return {
                "health": runtime.health,
                "backlog": len(degrade.backlog),
                "violation": degrade.violation(),
            }
        if what == "digest":
            return {"digest": runtime.digest(), "seq": runtime.applied_seq}
        if what == "backlog":
            return {"backlog": [int(n) for n in runtime.degrade.backlog]}
        if what == "config":
            return {"config": self.config.to_dict()}
        if what == "stats":
            degrade = runtime.degrade
            return {
                "session": self.id,
                "events": self.events,
                "seq": runtime.applied_seq,
                "n_clients": manager.n_clients,
                "n_servers": manager.n_servers,
                "n_active": manager.n_active_servers,
                "n_reachable": manager.n_reachable_servers,
                "n_usable": manager.n_usable_servers,
                "loads": [int(x) for x in manager.loads()],
                "health": runtime.health,
                "backlog": len(degrade.backlog),
                "queued": degrade.n_queued,
                "rejected": degrade.n_rejected,
                "drained": degrade.n_drained,
                "durability": self.config.durability.mode,
                "d": encode_float(runtime.current_d()),
            }
        if what == "interactivity":
            d = runtime.current_d()
            if manager.n_clients == 0:
                return {"d_ms": d, "lower_bound_ms": None, "normalized": None}
            problem, _assignment, _nodes = manager.snapshot()
            lb = interaction_lower_bound(problem.uncapacitated())
            return {
                "d_ms": d,
                "lower_bound_ms": lb,
                "normalized": (d / lb) if lb > 0 else None,
            }
        raise BadRequestError(
            f"unknown query {what!r}; expected one of {sorted(QUERY_WHATS)}"
        )

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.runtime.close()


def _require_int(params: Dict[str, Any], key: str) -> int:
    value = params.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise BadRequestError(f"'{key}' must be an integer")
    return value


def _require_int_list(params: Dict[str, Any], key: str) -> List[int]:
    value = params.get(key)
    if not isinstance(value, list) or not value or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in value
    ):
        raise BadRequestError(f"'{key}' must be a non-empty list of integers")
    return [int(v) for v in value]


class AssignmentService:
    """Transport-agnostic session multiplexer over the assignment stack.

    Parameters
    ----------
    base_dir:
        Home for WAL-backed session directories
        (``<base_dir>/<session-id>/``). When omitted, a temporary
        directory is created on first durable session and removed by
        :meth:`close`.
    default_config:
        Template applied when ``open_session`` omits parameters
        (wire parameters override field by field).

    Notes
    -----
    The service is synchronous and single-threaded by design: the
    asyncio server calls :meth:`handle` inline on its event loop, so
    requests are applied in arrival order and every session's history
    is a total order — the property the output-equivalence suite
    relies on. Matrices are cached by spec across sessions.
    """

    def __init__(
        self,
        *,
        base_dir: Optional[str] = None,
        default_config: Optional[SessionConfig] = None,
    ) -> None:
        self._base_dir = None if base_dir is None else os.fspath(base_dir)
        self._owns_base_dir = False
        self._default_config = default_config or SessionConfig()
        self._sessions: Dict[str, Session] = {}
        self._next_session = 1
        self._matrices: Dict[Tuple[str, int, int], LatencyMatrix] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def sessions(self) -> Tuple[str, ...]:
        """Live session ids, in open order."""
        return tuple(self._sessions)

    def matrix_for(self, config: SessionConfig) -> LatencyMatrix:
        """The (cached) latency matrix for a session spec."""
        key = (config.kind, int(config.nodes), int(config.matrix_seed))
        matrix = self._matrices.get(key)
        if matrix is None:
            matrix = config.build_matrix()
            self._matrices[key] = matrix
        return matrix

    def _session_dir(self, session_id: str) -> str:
        if self._base_dir is None:
            self._base_dir = tempfile.mkdtemp(prefix="repro-service-")
            self._owns_base_dir = True
        return os.path.join(self._base_dir, session_id)

    # ------------------------------------------------------------------
    def open_session(
        self,
        config: Optional[SessionConfig] = None,
        *,
        name: Optional[str] = None,
    ) -> Session:
        """Create a session; returns the live :class:`Session`."""
        self._require_open()
        config = config or self._default_config
        if name is not None:
            if not isinstance(name, str) or not name or "/" in name:
                raise BadRequestError(
                    "session name must be a non-empty string without '/'"
                )
            session_id = name
        else:
            session_id = f"s{self._next_session}"
        if session_id in self._sessions:
            raise SessionStateError(f"session {session_id!r} is already open")
        matrix = self.matrix_for(config)
        servers = config.resolve_servers(matrix)
        directory = (
            self._session_dir(session_id) if config.durability.durable else None
        )
        if config.online.shards > 1:
            runtime: Any = ShardedSessionRuntime(
                matrix,
                servers,
                online=config.online,
                policy=config.degrade_policy(),
            )
        else:
            runtime = DurableRuntime(
                directory,
                matrix,
                servers,
                online=config.online,
                durability=config.durability,
                readmit_moves=config.readmit_moves,
                shed_policy=config.shed_policy,
                policy=config.degrade_policy(),
            )
        session = Session(session_id, config, matrix, runtime)
        self._sessions[session_id] = session
        self._next_session += 1
        metrics = registry()
        metrics.counter("service.sessions_opened").inc()
        metrics.gauge("service.sessions").set(len(self._sessions))
        return session

    def session(self, session_id: Any) -> Session:
        """Look up a live session by id."""
        self._require_open()
        if not isinstance(session_id, str):
            raise BadRequestError("'session' must be a string id")
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"no such session: {session_id!r}")
        return session

    def close_session(self, session_id: Any) -> Dict[str, Any]:
        """Close a session and drop it from the table."""
        session = self.session(session_id)
        stats = session.query("stats")
        session.close()
        del self._sessions[session_id]
        metrics = registry()
        metrics.counter("service.sessions_closed").inc()
        metrics.gauge("service.sessions").set(len(self._sessions))
        return {"closed": session_id, "final": stats}

    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; always returns a reply dict.

        Library and service exceptions become structured error replies
        (stable ``error.code``); they never propagate to the caller —
        a misbehaving client cannot take the server down.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        metrics = registry()
        metrics.counter("service.requests").inc()
        try:
            if not isinstance(request, dict):
                raise BadRequestError("request must be a JSON object")
            parse_request(request)
            op = request["op"]
            if op not in OPS:
                raise UnknownOperationError(
                    f"unknown op {op!r}; expected one of {sorted(OPS)}"
                )
            return ok_reply(request_id, self._dispatch(op, request))
        except ReproError as exc:
            metrics.counter("service.errors").inc()
            metrics.counter(f"service.errors.{type(exc).code}").inc()
            return error_reply(request_id, exc)
        except Exception as exc:  # pragma: no cover - defensive boundary
            metrics.counter("service.internal_errors").inc()
            return error_reply(request_id, exc)

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return {
                "pong": True,
                "version": __version__,
                "sessions": len(self._sessions),
            }
        if op == "open_session":
            params = {
                key: value
                for key, value in request.items()
                if key not in ("id", "op", "session")
            }
            merged = dict(self._default_config.to_dict())
            merged.update(params)
            config = SessionConfig.from_dict(merged)
            session = self.open_session(
                config, name=request.get("session")
            )
            return {
                "session": session.id,
                "servers": [int(s) for s in session.runtime.manager.server_nodes],
                "matrix_fingerprint": fingerprint_matrix(session.matrix),
                "durability": config.durability.mode,
                "wal": session.runtime.wal.path,
            }
        if op == "close_session":
            return self.close_session(request.get("session"))
        if op == "list_sessions":
            return {
                "sessions": [
                    self._sessions[sid].info().to_dict()
                    for sid in self._sessions
                ]
            }
        if op == "query":
            session = self.session(request.get("session"))
            what = request.get("what", "stats")
            if not isinstance(what, str):
                raise BadRequestError("'what' must be a string")
            return session.query(what)
        if op == "batch":
            return self._batch(request)
        if op in EVENT_OPS:
            session = self.session(request.get("session"))
            result = session.apply_event(op, request)
            registry().counter(f"service.events.{op}").inc()
            return result
        raise UnknownOperationError(f"unknown op {op!r}")

    def _batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply a list of session events in order (throughput path).

        Individual event failures become inline ``error`` entries and
        the batch continues — matching the tolerance of the library
        replay path, and keeping one bad event from poisoning a
        pipelined stream.
        """
        session = self.session(request.get("session"))
        events = request.get("events")
        if not isinstance(events, list):
            raise BadRequestError("'events' must be a list")
        results: List[Dict[str, Any]] = []
        metrics = registry()
        for event in events:
            if not isinstance(event, dict):
                raise BadRequestError("each batch event must be an object")
            op = event.get("op")
            if op not in EVENT_OPS:
                raise BadRequestError(
                    f"batch events must be one of {sorted(EVENT_OPS)}, "
                    f"got {op!r}"
                )
            try:
                results.append(session.apply_event(op, event))
                metrics.counter(f"service.events.{op}").inc()
            except ReproError as exc:
                metrics.counter("service.errors").inc()
                metrics.counter(f"service.errors.{type(exc).code}").inc()
                results.append(
                    {
                        "op": op,
                        "error": {
                            "code": type(exc).code,
                            "message": str(exc),
                        },
                    }
                )
        return {"results": results, "count": len(results)}

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise SessionStateError("service is closed")

    def close(self) -> None:
        """Close every session and release service resources."""
        if self._closed:
            return
        self._closed = True
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        if self._owns_base_dir and self._base_dir is not None:
            shutil.rmtree(self._base_dir, ignore_errors=True)

    def __enter__(self) -> "AssignmentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "EVENT_OPS",
    "QUERY_WHATS",
    "AssignmentService",
    "Session",
    "SessionConfig",
    "SessionInfo",
]
