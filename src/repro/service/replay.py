"""The library-path replayer for the output-equivalence contract.

:func:`replay_events` drives an event sequence straight through
:class:`~repro.algorithms.online.OnlineAssignmentManager` +
:class:`~repro.faults.failover.FailoverController` +
:class:`~repro.resilience.degrade.DegradeController` — no
:class:`~repro.service.core.AssignmentService`, no
:class:`~repro.resilience.runtime.DurableRuntime`, no wire protocol —
and emits the exact per-event envelopes and final state digest the
service is required to produce for the same events.

This duplication is the point: the replayer is an *independent*
implementation of the event semantics, so the equivalence suite
(``tests/service/test_equivalence.py``) comparing it byte-for-byte
against the service catches a divergence introduced on either side.
The envelopes carry the same canonical keys as
:meth:`repro.service.core.Session._event_envelope` (``op``,
``outcome``, ``d`` hex-encoded, ``clients``, ``health``, ``seq``), and
the digest is computed over a state dict laid out exactly like
:meth:`repro.resilience.runtime.DurableRuntime.state_dict`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import (
    CapacityError,
    InvalidAssignmentError,
    InvalidParameterError,
    ReproError,
    UnknownOperationError,
    error_code,
)
from repro.faults.failover import FailoverController
from repro.net.latency import LatencyMatrix
from repro.obs import fingerprint_matrix
from repro.resilience.checkpoint import encode_float, state_digest
from repro.resilience.degrade import HEALTHY, DegradeController
from repro.resilience.runtime import STATE_SCHEMA
from repro.service.core import EVENT_OPS, SessionConfig


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one library-path replay.

    ``trajectory`` holds one reply envelope per event (inline
    ``error`` entries for events the runtime would reject, matching
    the service's ``batch`` tolerance); ``digest`` is the final state
    digest; ``outcomes`` counts envelopes per outcome string.
    """

    trajectory: Tuple[Dict[str, Any], ...]
    digest: str
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        return len(self.trajectory)


def trajectory_digest(trajectory: Iterable[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical JSON of a trajectory.

    Canonicalization matches the wire encoder (sorted keys, compact
    separators), so two trajectories digest equal iff their wire bytes
    would be identical.
    """
    blob = json.dumps(
        list(trajectory), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class _Replayer:
    """Manager + failover + degrade, evented by hand."""

    def __init__(self, matrix: LatencyMatrix, config: SessionConfig) -> None:
        from repro.algorithms.online import OnlineAssignmentManager

        self.matrix = matrix
        self.config = config
        self.servers = config.resolve_servers(matrix)
        self.manager = OnlineAssignmentManager(
            matrix, self.servers, config.online
        )
        self.controller = FailoverController(
            self.manager,
            readmit_moves=config.readmit_moves,
            shed_policy=config.shed_policy,
        )
        self.degrade = DegradeController(self.manager, config.degrade_policy())
        # Seq 1 is the runtime's "open" genesis record; events follow.
        self.seq = 1

    # -- event semantics (mirrors DurableRuntime._apply_*) -------------
    def apply(self, event: Dict[str, Any]) -> Dict[str, Any]:
        op = event.get("op")
        if op not in EVENT_OPS:
            raise UnknownOperationError(f"unknown session event op {op!r}")
        handler = getattr(self, f"_apply_{op}")
        self.seq += 1
        try:
            return handler(event)
        except ReproError:
            self.seq -= 1
            raise

    def _envelope(self, op: str, outcome: str, **extra: Any) -> Dict[str, Any]:
        self.degrade.tick()
        result = {
            "op": op,
            "outcome": outcome,
            "d": encode_float(self.manager.current_d()),
            "clients": self.manager.n_clients,
            "health": self.degrade.state,
            "seq": self.seq,
        }
        result.update(extra)
        return result

    def _apply_join(self, event: Dict[str, Any]) -> Dict[str, Any]:
        node = int(event["node"])
        if not 0 <= node < self.matrix.n_nodes:
            raise InvalidAssignmentError(f"client node {node} out of range")
        if self.manager.is_connected(node):
            raise InvalidAssignmentError(f"client {node} already connected")
        if self.degrade.in_backlog(node):
            raise InvalidAssignmentError(f"client {node} already queued")
        if self.degrade.state != HEALTHY:
            outcome = self.degrade.admission_blocked(node, "degraded")
        else:
            try:
                self.manager.join(node)
                outcome = "assigned"
            except CapacityError:
                outcome = self.degrade.admission_blocked(
                    node, "capacity-exhausted"
                )
        server = (
            self.manager.server_of(node) if outcome == "assigned" else None
        )
        return self._envelope("join", outcome, server=server)

    def _apply_leave(self, event: Dict[str, Any]) -> Dict[str, Any]:
        node = int(event["node"])
        if self.manager.is_connected(node):
            self.manager.leave(node)
            outcome = "left"
        elif self.degrade.discard_queued(node):
            outcome = "dequeued"
        else:
            outcome = "absent"
        return self._envelope("leave", outcome)

    def _apply_crash(self, event: Dict[str, Any]) -> Dict[str, Any]:
        server = int(event["server"])
        if not self.manager.is_active(server):
            raise InvalidParameterError(f"server {server} is already down")
        record = self.controller.on_crash(server, time=float(self.seq))
        return self._envelope(
            "crash",
            "crashed",
            server=server,
            evacuated=record.n_evacuated,
            shed=[int(c) for c in record.shed],
        )

    def _apply_recover(self, event: Dict[str, Any]) -> Dict[str, Any]:
        server = int(event["server"])
        if self.manager.is_active(server):
            raise InvalidParameterError(f"server {server} is already up")
        record = self.controller.on_recover(server, time=float(self.seq))
        return self._envelope(
            "recover",
            "recovered",
            server=server,
            rebalance_moves=record.rebalance_moves,
        )

    def _apply_partition(self, event: Dict[str, Any]) -> Dict[str, Any]:
        servers = sorted(int(s) for s in event["servers"])
        if not servers:
            raise InvalidParameterError("partition needs at least one server")
        for server in servers:
            if not self.manager.is_reachable(server):
                raise InvalidParameterError(
                    f"server {server} is already unreachable"
                )
        stale: List[int] = []
        for server in servers:
            stale.extend(self.manager.partition_server(server))
        return self._envelope(
            "partition",
            "partitioned",
            servers=servers,
            stale=[int(c) for c in sorted(stale)],
        )

    def _apply_heal(self, event: Dict[str, Any]) -> Dict[str, Any]:
        servers = sorted(int(s) for s in event["servers"])
        if not servers:
            raise InvalidParameterError("heal needs at least one server")
        for server in servers:
            if self.manager.is_reachable(server):
                raise InvalidParameterError(f"server {server} is reachable")
        for server in servers:
            self.manager.heal_server(server)
        return self._envelope("heal", "healed", servers=servers)

    def _apply_rebalance(self, event: Dict[str, Any]) -> Dict[str, Any]:
        max_moves = int(event.get("max_moves", 16))
        moves = self.manager.rebalance(max_moves=max_moves)
        return self._envelope("rebalance", "rebalanced", moves=moves)

    # -- state capture (mirrors DurableRuntime.state_dict) --------------
    def state_dict(self) -> Dict[str, Any]:
        manager = self.manager
        policy = self.degrade.policy
        return {
            "schema": STATE_SCHEMA,
            "config": {
                "servers": [int(s) for s in self.servers],
                "capacity": self.config.online.capacity,
                "join_policy": self.config.online.join_policy,
                "backend": self.config.online.backend,
                "top_k": int(self.config.online.top_k),
                "readmit_moves": int(self.config.readmit_moves),
                "shed_policy": self.config.shed_policy,
                "max_backlog": policy.max_backlog,
                "d_budget": (
                    None
                    if policy.d_budget is None
                    else encode_float(policy.d_budget)
                ),
                "matrix_fingerprint": fingerprint_matrix(self.matrix),
            },
            "applied_seq": self.seq,
            "manager": {
                "assigned": [
                    [int(node), int(manager.server_of(node))]
                    for node in manager.clients
                ],
                "inactive": [
                    s
                    for s in range(manager.n_servers)
                    if not manager.is_active(s)
                ],
                "unreachable": [
                    s
                    for s in range(manager.n_servers)
                    if not manager.is_reachable(s)
                ],
                "d": encode_float(manager.current_d()),
            },
            "failover": {
                "crashes": [r.to_dict() for r in self.controller.crash_records],
                "recoveries": [
                    r.to_dict() for r in self.controller.recovery_records
                ],
            },
            "degrade": self.degrade.to_dict(),
        }


def replay_events(
    matrix: LatencyMatrix,
    config: SessionConfig,
    events: Iterable[Dict[str, Any]],
) -> ReplayResult:
    """Replay ``events`` through the raw library stack.

    Events the runtime would reject (e.g. crashing an already-down
    server) become inline ``{"op": ..., "error": {...}}`` entries and
    the replay continues — the same tolerance as the service's
    ``batch`` op, so both paths stay comparable even on adversarial
    sequences.
    """
    replayer = _Replayer(matrix, config)
    trajectory: List[Dict[str, Any]] = []
    outcomes: Dict[str, int] = {}
    for event in events:
        try:
            envelope = replayer.apply(dict(event))
        except ReproError as exc:
            trajectory.append(
                {
                    "op": event.get("op"),
                    "error": {
                        "code": error_code(exc),
                        "message": str(exc),
                    },
                }
            )
            continue
        outcome = envelope["outcome"]
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        trajectory.append(envelope)
    return ReplayResult(
        trajectory=tuple(trajectory),
        digest=state_digest(replayer.state_dict()),
        outcomes=outcomes,
    )


__all__ = ["ReplayResult", "replay_events", "trajectory_digest"]
