"""Sustained churn load generation against a live assignment server.

:func:`run_loadgen` opens a session over TCP, streams a seeded event
sequence (:mod:`repro.service.workload`) through pipelined ``batch``
requests, and reports throughput (events/sec) and batch round-trip
latency percentiles. Latencies also land in the obs registry
(``service.loadgen.batch_seconds`` histogram), so a run folds into the
same metrics surface as everything else in the repo.

With ``verify=True`` the driver closes the loop on the equivalence
contract: it replays the identical events in-process
(:mod:`repro.service.replay`) and asserts the server's final state
digest and the full reply trajectory match byte for byte — the CI
smoke job runs exactly this against a just-started server.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.obs import SECONDS_BUCKETS, registry, span
from repro.service.client import ServiceClient
from repro.service.core import SessionConfig
from repro.service.replay import replay_events, trajectory_digest
from repro.service.workload import generate_events


@dataclass(frozen=True)
class LoadgenReport:
    """Result of one load-generation run."""

    n_events: int
    n_batches: int
    elapsed_seconds: float
    events_per_second: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    outcomes: Dict[str, int] = field(default_factory=dict)
    digest: Optional[str] = None
    verified: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_events": self.n_events,
            "n_batches": self.n_batches,
            "elapsed_seconds": self.elapsed_seconds,
            "events_per_second": self.events_per_second,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "outcomes": dict(self.outcomes),
            "digest": self.digest,
            "verified": self.verified,
        }

    def render(self) -> str:
        lines = [
            f"events          {self.n_events}",
            f"batches         {self.n_batches}",
            f"elapsed         {self.elapsed_seconds:.3f} s",
            f"throughput      {self.events_per_second:,.0f} events/s",
            f"batch p50       {self.p50_ms:.3f} ms",
            f"batch p99       {self.p99_ms:.3f} ms",
            f"batch max       {self.max_ms:.3f} ms",
        ]
        for outcome in sorted(self.outcomes):
            lines.append(f"  {outcome:<14}{self.outcomes[outcome]}")
        if self.digest is not None:
            lines.append(f"digest          {self.digest}")
        if self.verified is not None:
            lines.append(
                "equivalence     "
                + ("VERIFIED (wire == library)" if self.verified else "FAILED")
            )
        return "\n".join(lines)


def _percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(q * len(sorted_samples))))
    return sorted_samples[rank]


def run_loadgen(
    host: str,
    port: int,
    *,
    n_events: int = 10_000,
    batch_size: int = 200,
    pipeline_depth: int = 8,
    seed: int = 0,
    session_params: Optional[Dict[str, Any]] = None,
    fault_every: int = 0,
    partition_every: int = 0,
    rebalance_every: int = 0,
    join_probability: float = 0.7,
    verify: bool = False,
    keep_session: bool = False,
) -> LoadgenReport:
    """Drive a seeded churn burst through a live server.

    Parameters
    ----------
    n_events, batch_size, pipeline_depth:
        Total events, events per ``batch`` request, and how many batch
        requests to keep in flight at once.
    seed, fault_every, partition_every, rebalance_every, join_probability:
        Forwarded to :func:`repro.service.workload.generate_events`.
    session_params:
        ``open_session`` wire parameters (matrix spec, capacity,
        durability mode, ...).
    verify:
        Replay the same events in-process and compare the final state
        digest *and* the per-event reply trajectory byte for byte.
        Raises :class:`~repro.errors.ServiceError` on divergence.
    keep_session:
        Leave the session open on the server after the run.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if pipeline_depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
    params = dict(session_params or {})
    metrics = registry()
    with ServiceClient(host, port) as client:
        opened = client.open_session(**params)
        session = opened["session"]
        servers = [int(s) for s in opened["servers"]]
        config = SessionConfig.from_dict(
            client.query(session, "config")["config"]
        )
        events = generate_events(
            config.nodes,
            servers,
            n_events=n_events,
            seed=seed,
            join_probability=join_probability,
            fault_every=fault_every,
            partition_every=partition_every,
            rebalance_every=rebalance_every,
        )
        batches = [
            events[i : i + batch_size]
            for i in range(0, len(events), batch_size)
        ]
        latencies: List[float] = []
        trajectory: List[Dict[str, Any]] = []
        outcomes: Dict[str, int] = {}
        histogram = metrics.histogram(
            "service.loadgen.batch_seconds", SECONDS_BUCKETS
        )
        # Pipelined request/reply: keep `pipeline_depth` batches on the
        # wire; each recv() is matched FIFO to its send time.
        sent_at: List[float] = []
        next_batch = 0
        with span("service.loadgen", n_events=n_events, seed=seed):
            started = time.perf_counter()
            while next_batch < len(batches) or sent_at:
                while (
                    next_batch < len(batches)
                    and len(sent_at) < pipeline_depth
                ):
                    client.send(
                        "batch", session=session, events=batches[next_batch]
                    )
                    sent_at.append(time.perf_counter())
                    next_batch += 1
                reply = client.recv()
                elapsed = time.perf_counter() - sent_at.pop(0)
                latencies.append(elapsed)
                histogram.observe(elapsed)
                results = ServiceClient.unwrap(reply)["results"]
                trajectory.extend(results)
                for entry in results:
                    outcome = entry.get("outcome")
                    if outcome is not None:
                        outcomes[outcome] = outcomes.get(outcome, 0) + 1
            total = time.perf_counter() - started
        digest = client.query(session, "digest")["digest"]
        verified: Optional[bool] = None
        if verify:
            verified = _verify(client, session, config, events, trajectory, digest)
        if not keep_session:
            client.close_session(session)
    metrics.counter("service.loadgen.events").inc(len(events))
    latencies.sort()
    return LoadgenReport(
        n_events=len(events),
        n_batches=len(batches),
        elapsed_seconds=total,
        events_per_second=(len(events) / total) if total > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        max_ms=(latencies[-1] * 1e3) if latencies else 0.0,
        outcomes=outcomes,
        digest=digest,
        verified=verified,
    )


def _verify(
    client: ServiceClient,
    session: str,
    config: SessionConfig,
    events: List[Dict[str, Any]],
    wire_trajectory: List[Dict[str, Any]],
    wire_digest: str,
) -> bool:
    """In-process replay + byte-for-byte comparison; raises on mismatch."""
    result = replay_events(config.build_matrix(), config, events)
    lib_digest = result.digest
    lib_traj = trajectory_digest(result.trajectory)
    wire_traj = trajectory_digest(wire_trajectory)
    if lib_digest != wire_digest or lib_traj != wire_traj:
        detail = {
            "state_digest": {"wire": wire_digest, "library": lib_digest},
            "trajectory_digest": {"wire": wire_traj, "library": lib_traj},
        }
        raise ServiceError(
            "wire and library paths diverged: "
            + json.dumps(detail, sort_keys=True)
        )
    return True


__all__ = ["LoadgenReport", "run_loadgen"]
