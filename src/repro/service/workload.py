"""Deterministic churn event sequences for the service layer.

:func:`generate_events` produces a seeded join/leave/crash/recover/
partition/heal/rebalance sequence as plain event dicts — the same
shape the wire protocol's ``batch`` op and the library replayer
consume — so the load generator, the output-equivalence suite, and the
CI smoke job all drive **bit-identical** workloads from a seed.

The generator is deliberately *outcome-blind*: it tracks its own view
of which nodes it has joined and which servers it has crashed or
partitioned, never the runtime's admission decisions. That keeps the
sequence a pure function of its arguments — the property that lets two
independent execution paths replay it and be compared byte for byte.
(The runtime's ``leave`` is tolerant of nodes that were queued or
rejected, so generator-side bookkeeping never desynchronizes.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.errors import InvalidParameterError
from repro.types import IndexArrayLike, as_index_array
from repro.utils.rng import SeedLike, ensure_rng


def generate_events(
    n_nodes: int,
    servers: IndexArrayLike,
    *,
    n_events: int = 1000,
    seed: SeedLike = 0,
    join_probability: float = 0.7,
    fault_every: int = 0,
    partition_every: int = 0,
    rebalance_every: int = 0,
) -> List[Dict[str, Any]]:
    """A seeded event sequence over an ``n_nodes`` universe.

    Parameters
    ----------
    n_nodes, servers:
        The node universe and the server placement (server nodes are
        never joined as clients).
    n_events:
        Sequence length.
    join_probability:
        Probability an ordinary event is a join rather than a leave
        (leaves fall back to joins while nothing is connected).
    fault_every:
        Every that-many events, crash a random up server — or recover
        a random down one when more than half are down (0 disables).
        At least one server is always left up.
    partition_every:
        Every that-many events (offset from crashes), partition a
        random reachable server — or heal one when more than half are
        unreachable (0 disables). At least one server is always left
        reachable.
    rebalance_every:
        Every that-many events, append a bounded rebalance (0
        disables).
    """
    if n_events < 1:
        raise InvalidParameterError(f"n_events must be >= 1, got {n_events}")
    if not 0.0 < join_probability < 1.0:
        raise InvalidParameterError("join_probability must be in (0, 1)")
    for name, value in (
        ("fault_every", fault_every),
        ("partition_every", partition_every),
        ("rebalance_every", rebalance_every),
    ):
        if value < 0:
            raise InvalidParameterError(f"{name} must be >= 0, got {value}")
    server_nodes = as_index_array(servers, "servers")
    n_servers = int(server_nodes.size)
    if n_servers < 1:
        raise InvalidParameterError("need at least one server")
    server_set = set(int(s) for s in server_nodes)
    pool = [u for u in range(n_nodes) if u not in server_set]
    if not pool:
        raise InvalidParameterError("no client nodes left after placement")

    rng = ensure_rng(seed)
    connected: Set[int] = set()
    down: Set[int] = set()
    unreachable: Set[int] = set()
    events: List[Dict[str, Any]] = []

    def fault_event() -> Optional[Dict[str, Any]]:
        recover_bias = len(down) > n_servers // 2
        if down and (recover_bias or rng.uniform() < 0.5):
            server = sorted(down)[rng.integers(0, len(down))]
            down.discard(server)
            return {"op": "recover", "server": int(server)}
        if len(down) < n_servers - 1:
            up = [s for s in range(n_servers) if s not in down]
            server = int(up[rng.integers(0, len(up))])
            down.add(server)
            return {"op": "crash", "server": server}
        return None

    def partition_event() -> Optional[Dict[str, Any]]:
        heal_bias = len(unreachable) > n_servers // 2
        if unreachable and (heal_bias or rng.uniform() < 0.5):
            server = sorted(unreachable)[rng.integers(0, len(unreachable))]
            unreachable.discard(server)
            return {"op": "heal", "servers": [int(server)]}
        if len(unreachable) < n_servers - 1:
            reachable = [s for s in range(n_servers) if s not in unreachable]
            server = int(reachable[rng.integers(0, len(reachable))])
            unreachable.add(server)
            return {"op": "partition", "servers": [server]}
        return None

    # Exactly one event is emitted per index, so the sequence length —
    # and every RNG draw — is a pure function of the arguments. A
    # scheduled fault/partition slot that has no legal action (e.g. a
    # single-server placement) falls through to ordinary churn.
    for index in range(n_events):
        event: Optional[Dict[str, Any]] = None
        if fault_every and index > 0 and index % fault_every == 0:
            event = fault_event()
        if (
            event is None
            and partition_every
            and index > 0
            and index % partition_every == 0
        ):
            event = partition_event()
        if (
            event is None
            and rebalance_every
            and index > 0
            and index % rebalance_every == 0
        ):
            event = {"op": "rebalance", "max_moves": 8}
        if event is None:
            free = len(pool) - len(connected)
            do_join = (not connected) or (
                free > 0 and rng.uniform() < join_probability
            )
            if do_join:
                free_nodes = [u for u in pool if u not in connected]
                node = int(free_nodes[rng.integers(0, len(free_nodes))])
                connected.add(node)
                event = {"op": "join", "node": node}
            else:
                members = sorted(connected)
                node = int(members[rng.integers(0, len(members))])
                connected.discard(node)
                event = {"op": "leave", "node": node}
        events.append(event)
    return events


__all__ = ["generate_events"]
