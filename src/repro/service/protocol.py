"""Wire protocol: JSON-lines frames with structured error replies.

One request or reply per line of UTF-8 JSON, newline-terminated::

    → {"id": 3, "op": "join", "session": "s1", "node": 17}
    ← {"id": 3, "ok": true, "result": {"outcome": "assigned", ...}}
    ← {"id": 4, "ok": false, "error": {"code": "unknown-session",
                                       "message": "..."}}

Contract:

- Every request is a JSON object with a string ``op``; ``id`` is an
  optional opaque value echoed verbatim in the reply so clients can
  pipeline.
- Every reply carries ``ok``. Failures carry ``error.code`` — one of
  the stable machine-readable codes from :mod:`repro.errors` — so
  clients dispatch on the code, never on the message text.
- Frames larger than the negotiated cap (default
  :data:`MAX_FRAME_BYTES`) are rejected with ``frame-too-large``;
  malformed JSON or non-object payloads with ``bad-frame``. Neither
  closes the connection: the peer can recover and continue.

The encoder is canonical (sorted keys, compact separators), so a reply
byte sequence is a pure function of its dict content — the basis of
the wire-vs-library output-equivalence tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import (
    BadRequestError,
    FrameTooLargeError,
    ProtocolError,
    error_code,
)

#: Default cap on a single frame (request or reply), in bytes.
MAX_FRAME_BYTES = 256 * 1024

#: Operations the service implements (kept in sync with
#: :meth:`repro.service.core.AssignmentService.handle`).
OPS = frozenset(
    {
        "ping",
        "open_session",
        "close_session",
        "list_sessions",
        "join",
        "leave",
        "crash",
        "recover",
        "partition",
        "heal",
        "rebalance",
        "query",
        "batch",
    }
)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Canonical newline-terminated wire bytes for one frame."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        + b"\n"
    )


def decode_frame(line: bytes, *, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`~repro.errors.FrameTooLargeError` past the size cap
    and :class:`~repro.errors.ProtocolError` for malformed JSON or a
    non-object payload.
    """
    if len(line) > max_bytes:
        raise FrameTooLargeError(
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Validate the request envelope (``op`` present and a string).

    Unknown operations are rejected by the service dispatcher, not
    here, so the service layer stays the single source of truth for
    the op table.
    """
    op = frame.get("op")
    if not isinstance(op, str) or not op:
        raise BadRequestError("request must carry a non-empty string 'op'")
    return frame


def ok_reply(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """Success envelope echoing the request id."""
    return {"id": request_id, "ok": True, "result": result}


def error_reply(
    request_id: Any,
    exc: Optional[BaseException] = None,
    *,
    code: Optional[str] = None,
    message: Optional[str] = None,
) -> Dict[str, Any]:
    """Failure envelope with a stable machine-readable code.

    Pass an exception (its :func:`repro.errors.error_code` is used) or
    an explicit ``code``/``message`` pair.
    """
    if exc is not None:
        code = code or error_code(exc)
        message = message or str(exc)
    if code is None:
        raise ValueError("error_reply needs an exception or a code")
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message or ""},
    }


__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "ok_reply",
    "error_reply",
]
