"""The asyncio TCP front end for :class:`AssignmentService`.

:class:`AssignmentServer` accepts JSON-lines connections and funnels
every decoded request — from any number of concurrent connections —
into a single synchronous
:meth:`~repro.service.core.AssignmentService.handle` call on the event
loop. That is deliberate: requests are applied in arrival order, each
session's history is a total order, and the server adds *nothing* to
the service semantics beyond framing — which is what makes the wire
path and the in-process path output-equivalent.

Framing errors are survivable: an oversized or malformed line draws a
structured error reply (``frame-too-large`` / ``bad-frame``) and the
connection stays open, with the oversized line drained so the stream
re-synchronizes at the next newline.

:class:`ServerThread` hosts a server (with its own event loop) in a
daemon thread on an ephemeral port — the embedding used by the tests,
the load generator's ``--spawn`` mode, and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.errors import FrameTooLargeError, ProtocolError, ReproError
from repro.obs import registry
from repro.service.core import AssignmentService
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_reply,
)


class AssignmentServer:
    """Serve an :class:`AssignmentService` over TCP JSON-lines.

    Parameters
    ----------
    service:
        The service core to expose; a fresh one is created (and owned,
        i.e. closed with the server) when omitted.
    host, port:
        Bind address; port ``0`` picks an ephemeral port, readable
        from :attr:`address` after :meth:`start`.
    max_frame_bytes:
        Per-line size cap (default :data:`MAX_FRAME_BYTES`).
    """

    def __init__(
        self,
        service: Optional[AssignmentService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.service = service or AssignmentService()
        self._owns_service = service is None
        self._host = host
        self._port = port
        self._max_frame_bytes = int(max_frame_bytes)
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        # The reader limit must exceed the frame cap so an oversized
        # line surfaces as a LimitOverrunError we can answer, instead
        # of being silently legal.
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._host,
            self._port,
            limit=self._max_frame_bytes + 1,
        )
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_service:
            self.service.close()

    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        metrics = registry()
        metrics.counter("service.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    # EOF. A non-empty partial line without a trailing
                    # newline still deserves an answer-less close: the
                    # peer hung up mid-frame.
                    if exc.partial:
                        metrics.counter("service.torn_frames").inc()
                    break
                except asyncio.LimitOverrunError:
                    await self._drain_oversized(reader)
                    metrics.counter("service.oversized_frames").inc()
                    writer.write(
                        encode_frame(
                            error_reply(
                                None,
                                FrameTooLargeError(
                                    f"frame exceeds the "
                                    f"{self._max_frame_bytes}-byte limit"
                                ),
                            )
                        )
                    )
                    await writer.drain()
                    continue
                reply = self._reply_for(line)
                writer.write(encode_frame(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _reply_for(self, line: bytes) -> dict:
        """Decode one line and serve it; never raises."""
        try:
            frame = decode_frame(line, max_bytes=self._max_frame_bytes)
        except (ProtocolError, FrameTooLargeError) as exc:
            registry().counter("service.bad_frames").inc()
            return error_reply(None, exc)
        except ReproError as exc:  # pragma: no cover - defensive
            return error_reply(None, exc)
        # The service guarantees handle() never raises.
        return self.service.handle(frame)

    async def _drain_oversized(self, reader: asyncio.StreamReader) -> None:
        """Discard buffered bytes up to and including the next newline."""
        while True:
            chunk = await reader.read(self._max_frame_bytes)
            if not chunk or chunk.endswith(b"\n") or b"\n" in chunk:
                return


class ServerThread:
    """A live :class:`AssignmentServer` on a daemon thread.

    Runs its own event loop; :meth:`start` blocks until the ephemeral
    port is bound and returns the address. Usable as a context
    manager::

        with ServerThread() as (host, port):
            client = ServiceClient(host, port)
    """

    def __init__(
        self,
        service: Optional[AssignmentService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.server = AssignmentServer(
            service, host=host, port=port, max_frame_bytes=max_frame_bytes
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server thread is not started")
        return self._address

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start the loop thread; block until the server is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self._address is not None
        return self._address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                self._address = await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            assert self.server._server is not None
            try:
                await self.server._server.serve_forever()
            except asyncio.CancelledError:
                pass
            # Let cancelled connection handlers unwind before the loop
            # closes, so shutdown is silent.
            current = asyncio.current_task()
            pending = [t for t in asyncio.all_tasks() if t is not current]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            await self.server.stop()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join the thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():

            def _cancel() -> None:
                server = self.server._server
                if server is not None:
                    server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(_cancel)
            thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["AssignmentServer", "ServerThread"]
