"""Empirical competitive-ratio harness for online policies.

Replays a compiled :class:`~repro.scenarios.dsl.ScenarioTrace` through
an online policy and measures, at checkpoints, how far the online
decision stream strays from what the instance allows:

- ``ratio`` — D_online divided by the §V super-optimal lower bound of
  the *revealed* instance (all servers, the currently connected client
  set, uncapacitated). Because LB ≤ OPT ≤ D_online for any assignment
  over these servers, this empirical competitive ratio is **≥ 1.0 by
  construction** — a value below 1 means a bug, and the harness's own
  tests enforce that invariant on every bundled scenario.
- ``ratio_offline`` / ``regret`` — D_online against an actual offline
  solve (:func:`~repro.algorithms.base.run_algorithm` on the revealed
  instance with the same capacity). Informational: the offline
  algorithm is itself a heuristic, so regret may be negative.

Lower bounds are served by the process-global
:class:`~repro.parallel.cache.LowerBoundCache` — comparing P policies
on one scenario recomputes each checkpoint bound once, not P times
(hit/miss counters land in the ``repro obs`` report).

Three execution paths: ``library`` (a plain
:class:`~repro.algorithms.online.OnlineAssignmentManager`), ``sharded``
(:class:`~repro.scale.sharded.ShardedOnlineManager`; fault events are
rejected, mirroring the service's sharded sessions), and ``wire`` (a
live :mod:`repro.service` TCP session; meridian/mit instances without
fault events). :func:`compare_policies` fans replays out through
:class:`~repro.parallel.pool.TrialPool` — ``workers=0`` is the
bit-identical serial twin.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import run_algorithm
from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.algorithms.policies import validate_policy_name
from repro.core import ClientAssignmentProblem
from repro.errors import (
    CapacityError,
    FailoverError,
    ReproError,
    ScenarioError,
)
from repro.obs.metrics import registry
from repro.parallel.cache import cached_lower_bound
from repro.parallel.pool import TrialPool, run_trials, successful_values
from repro.scenarios.dsl import BuiltInstance, Scenario, ScenarioTrace

_PATHS = ("library", "sharded", "wire")

#: Guard band for the ratio >= 1 invariant (float roundoff only).
RATIO_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ReplayOptions:
    """Knobs of one scenario replay."""

    path: str = "library"
    shards: int = 4
    checkpoint_every: int = 32
    #: Budget for ``policy.maintain`` after each event (0 disables;
    #: ignored on the wire path, which has no maintenance op).
    maintain_moves: int = 1
    #: Offline reference solver at checkpoints (None disables the
    #: informational offline ratio/regret columns).
    offline_algorithm: Optional[str] = "nearest-server"
    block_size: int = 256

    def __post_init__(self) -> None:
        if self.path not in _PATHS:
            raise ScenarioError(
                f"path must be one of {_PATHS}, got {self.path!r}"
            )
        if self.shards < 1:
            raise ScenarioError(f"shards must be >= 1, got {self.shards}")
        if self.checkpoint_every < 1:
            raise ScenarioError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.maintain_moves < 0:
            raise ScenarioError(
                f"maintain_moves must be >= 0, got {self.maintain_moves}"
            )
        if self.block_size < 1:
            raise ScenarioError(
                f"block_size must be >= 1, got {self.block_size}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "shards": self.shards,
            "checkpoint_every": self.checkpoint_every,
            "maintain_moves": self.maintain_moves,
            "offline_algorithm": self.offline_algorithm,
            "block_size": self.block_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayOptions":
        return cls(**data)


@dataclass(frozen=True)
class Checkpoint:
    """Measurements after one checkpointed prefix of the trace."""

    event_index: int
    time: float
    n_connected: int
    d_online: float
    lower_bound: float
    ratio: float
    d_offline: Optional[float] = None
    ratio_offline: Optional[float] = None
    regret: Optional[float] = None
    rejected: int = 0
    max_load: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event_index": self.event_index,
            "time": self.time,
            "n_connected": self.n_connected,
            "d_online": self.d_online,
            "lower_bound": self.lower_bound,
            "ratio": self.ratio,
            "d_offline": self.d_offline,
            "ratio_offline": self.ratio_offline,
            "regret": self.regret,
            "rejected": self.rejected,
            "max_load": self.max_load,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Checkpoint":
        return cls(**data)


@dataclass(frozen=True)
class ReplayResult:
    """One policy's replay of one scenario."""

    scenario: str
    policy: str
    path: str
    n_events: int
    checkpoints: Tuple[Checkpoint, ...]
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def final(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    @property
    def max_ratio(self) -> float:
        if not self.checkpoints:
            return 1.0
        return max(c.ratio for c in self.checkpoints)

    @property
    def mean_ratio(self) -> float:
        if not self.checkpoints:
            return 1.0
        return sum(c.ratio for c in self.checkpoints) / len(self.checkpoints)

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_events / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "path": self.path,
            "n_events": self.n_events,
            "checkpoints": [c.to_dict() for c in self.checkpoints],
            "counters": dict(self.counters),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayResult":
        payload = dict(data)
        checkpoints = tuple(
            Checkpoint.from_dict(c) for c in payload.pop("checkpoints", [])
        )
        return cls(checkpoints=checkpoints, **payload)


# ----------------------------------------------------------------------
# Checkpoint measurement
# ----------------------------------------------------------------------
def _measure(
    built: BuiltInstance,
    connected: Sequence[int],
    d_online: float,
    *,
    event_index: int,
    time: float,
    rejected: int,
    loads: Optional[np.ndarray],
    options: ReplayOptions,
) -> Optional[Checkpoint]:
    """Build one checkpoint; None when nothing is connected yet."""
    if not connected:
        return None
    clients = np.asarray(sorted(connected), dtype=np.int64)
    revealed = ClientAssignmentProblem(
        built.provider, built.servers, clients=clients
    )
    lb = cached_lower_bound(revealed, block_size=options.block_size)
    ratio = d_online / lb if lb > 0 else 1.0
    d_offline = ratio_offline = regret = None
    if options.offline_algorithm is not None:
        problem = revealed
        if built.capacity is not None:
            # Same capacity as the online run; over all servers this is
            # always feasible for a client set the manager admitted.
            problem = revealed.with_capacity(built.capacity)
        try:
            result = run_algorithm(
                options.offline_algorithm, problem, seed=0
            )
            d_offline = float(result.d)
            ratio_offline = d_online / d_offline if d_offline > 0 else 1.0
            regret = d_online - d_offline
        except ReproError:
            # Offline reference is informational; a failed solve (e.g.
            # capacity infeasible mid-outage) just leaves the columns
            # empty.
            pass
    return Checkpoint(
        event_index=event_index,
        time=time,
        n_connected=len(connected),
        d_online=float(d_online),
        lower_bound=float(lb),
        ratio=float(ratio),
        d_offline=d_offline,
        ratio_offline=ratio_offline,
        regret=regret,
        rejected=rejected,
        max_load=int(loads.max()) if loads is not None and loads.size else 0,
    )


def _checkpoint_indices(n_events: int, every: int) -> set:
    marks = set(range(every - 1, n_events, every))
    if n_events:
        marks.add(n_events - 1)
    return marks


# ----------------------------------------------------------------------
# Library / sharded replay
# ----------------------------------------------------------------------
def _build_manager(
    built: BuiltInstance, policy: str, options: ReplayOptions
) -> Any:
    config = OnlineConfig(
        capacity=built.capacity,
        join_policy=policy,
        shards=options.shards,
    )
    if options.path == "sharded":
        from repro.scale.sharded import ShardedOnlineManager

        return ShardedOnlineManager(
            built.provider,
            built.servers,
            config,
            client_nodes=built.clients,
        )
    return OnlineAssignmentManager(
        built.provider,
        built.servers,
        config,
        client_nodes=built.clients,
    )


def _replay_managed(
    scenario: Scenario,
    trace: ScenarioTrace,
    built: BuiltInstance,
    policy: str,
    options: ReplayOptions,
) -> ReplayResult:
    if options.path == "sharded" and trace.has_faults:
        raise ScenarioError(
            f"scenario {scenario.name!r} contains fault events; the "
            f"sharded path (like sharded service sessions) supports "
            f"join/leave/rebalance only"
        )
    manager = _build_manager(built, policy, options)
    counters = {
        "rejected": 0,
        "skipped_leaves": 0,
        "evacuated": 0,
        "shed": 0,
        "rebalance_moves": 0,
        "maintain_moves": 0,
    }
    metrics = registry()
    events_metric = metrics.counter("scenarios.events")
    marks = _checkpoint_indices(trace.n_events, options.checkpoint_every)
    checkpoints: List[Checkpoint] = []
    started = _time.perf_counter()
    for i, event in enumerate(trace.events):
        events_metric.inc()
        if event.op == "join":
            try:
                manager.join(event.node)
            except CapacityError:
                counters["rejected"] += 1
        elif event.op == "leave":
            if manager.is_connected(event.node):
                manager.leave(event.node)
            else:
                counters["skipped_leaves"] += 1
        elif event.op == "crash":
            stranded = manager.deactivate_server(event.server)
            try:
                moves = manager.evacuate(event.server)
                counters["evacuated"] += len(moves)
            except FailoverError:
                # Survivors cannot host the stranded clients: shed them
                # (they disconnect), like the service's degraded mode.
                for node in sorted(stranded):
                    manager.leave(node)
                counters["shed"] += len(stranded)
        elif event.op == "recover":
            manager.reactivate_server(event.server)
            counters["rebalance_moves"] += manager.rebalance(max_moves=8)
        elif event.op == "partition":
            manager.partition_server(event.server)
        elif event.op == "heal":
            manager.heal_server(event.server)
        elif event.op == "rebalance":
            counters["rebalance_moves"] += manager.rebalance(
                max_moves=event.max_moves or 8
            )
        else:
            raise ScenarioError(f"unknown scenario op {event.op!r}")
        if options.maintain_moves:
            counters["maintain_moves"] += manager.policy.maintain(
                manager, max_moves=options.maintain_moves
            )
        if i in marks:
            checkpoint = _measure(
                built,
                manager.clients,
                manager.current_d(),
                event_index=i,
                time=event.time,
                rejected=counters["rejected"],
                loads=manager.loads(),
                options=options,
            )
            if checkpoint is not None:
                checkpoints.append(checkpoint)
    elapsed = _time.perf_counter() - started
    return ReplayResult(
        scenario=scenario.name,
        policy=policy,
        path=options.path,
        n_events=trace.n_events,
        checkpoints=tuple(checkpoints),
        counters=counters,
        elapsed_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Wire replay
# ----------------------------------------------------------------------
def _replay_wire(
    scenario: Scenario,
    trace: ScenarioTrace,
    built: BuiltInstance,
    policy: str,
    options: ReplayOptions,
) -> ReplayResult:
    if trace.has_faults:
        raise ScenarioError(
            f"scenario {scenario.name!r} contains fault events; the wire "
            f"path replays join/leave/rebalance scenarios only (fault "
            f"outcomes depend on the service's degraded-mode queue, "
            f"which the harness does not model)"
        )
    from repro.resilience.checkpoint import decode_float
    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread

    online = OnlineConfig(capacity=built.capacity, join_policy=policy)
    config = scenario.instance.session_config(online)
    counters = {"rejected": 0, "skipped_leaves": 0, "rebalance_moves": 0}
    marks = sorted(
        _checkpoint_indices(trace.n_events, options.checkpoint_every)
    )
    connected: set = set()
    checkpoints: List[Checkpoint] = []
    started = _time.perf_counter()
    with ServerThread() as (host, port):
        with ServiceClient(host, port) as client:
            opened = client.open_session(**config.to_dict())
            session = opened["session"]
            start = 0
            for mark in marks:
                chunk = trace.events[start : mark + 1]
                start = mark + 1
                replies = client.batch(
                    session, [e.to_event_dict() for e in chunk]
                )
                for event, reply in zip(chunk, replies):
                    outcome = reply.get("outcome")
                    if event.op == "join":
                        if outcome == "assigned":
                            connected.add(event.node)
                        else:
                            counters["rejected"] += 1
                    elif event.op == "leave":
                        if event.node in connected:
                            connected.discard(event.node)
                        else:
                            counters["skipped_leaves"] += 1
                    elif event.op == "rebalance":
                        counters["rebalance_moves"] += int(
                            reply.get("moves", 0)
                        )
                stats = client.query(session, "stats")
                d_value = stats["d"]
                d_online = (
                    decode_float(d_value)
                    if isinstance(d_value, str)
                    else float(d_value)
                )
                loads = np.asarray(stats.get("loads", []), dtype=np.int64)
                checkpoint = _measure(
                    built,
                    sorted(connected),
                    d_online,
                    event_index=mark,
                    time=trace.events[mark].time,
                    rejected=counters["rejected"],
                    loads=loads,
                    options=options,
                )
                if checkpoint is not None:
                    checkpoints.append(checkpoint)
            client.close_session(session)
    elapsed = _time.perf_counter() - started
    return ReplayResult(
        scenario=scenario.name,
        policy=policy,
        path="wire",
        n_events=trace.n_events,
        checkpoints=tuple(checkpoints),
        counters=counters,
        elapsed_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def replay_scenario(
    scenario: Scenario,
    policy: str,
    *,
    options: Optional[ReplayOptions] = None,
    built: Optional[BuiltInstance] = None,
    trace: Optional[ScenarioTrace] = None,
) -> ReplayResult:
    """Replay one scenario through one policy; measure at checkpoints.

    ``built``/``trace`` let callers amortize instance construction and
    compilation across replays (both are pure functions of the
    scenario, so passing them cannot change results).
    """
    options = options or ReplayOptions()
    validate_policy_name(policy)
    if built is None:
        built = scenario.instance.build()
    if trace is None:
        trace = scenario.compile(built)
    metrics = registry()
    metrics.counter("scenarios.replays").inc()
    if options.path == "wire":
        result = _replay_wire(scenario, trace, built, policy, options)
    else:
        result = _replay_managed(scenario, trace, built, policy, options)
    prefix = f"scenarios.replay.{policy}"
    metrics.counter(f"{prefix}.checkpoints").inc(len(result.checkpoints))
    metrics.counter(f"{prefix}.ratio_sum").inc(
        sum(c.ratio for c in result.checkpoints)
    )
    metrics.gauge(f"{prefix}.max_ratio").set(result.max_ratio)
    metrics.counter("scenarios.seconds").inc(result.elapsed_seconds)
    return result


def check_ratios(result: ReplayResult) -> None:
    """Raise :class:`~repro.errors.ScenarioError` if any checkpoint
    ratio violates the ≥ 1 invariant (modulo float roundoff)."""
    for checkpoint in result.checkpoints:
        if checkpoint.ratio < 1.0 - RATIO_TOLERANCE:
            raise ScenarioError(
                f"competitive ratio {checkpoint.ratio} < 1 at event "
                f"{checkpoint.event_index} of {result.scenario!r} "
                f"({result.policy}): the lower bound is violated, "
                f"which indicates a harness or engine bug"
            )


def _compare_trial(matrix: Any, task: Any) -> Dict[str, Any]:
    """Module-level trial fn (pool workers rebuild everything from the
    scenario document, so serial and parallel runs are bit-identical)."""
    scenario_doc, policy, options_doc = task
    scenario = Scenario.from_dict(scenario_doc)
    options = ReplayOptions.from_dict(options_doc)
    result = replay_scenario(scenario, policy, options=options)
    return result.to_dict()


def compare_policies(
    scenario: Scenario,
    policies: Sequence[str],
    *,
    options: Optional[ReplayOptions] = None,
    pool: Optional[TrialPool] = None,
) -> List[ReplayResult]:
    """Replay one scenario through several policies, in trace order.

    Fan-out goes through :class:`~repro.parallel.pool.TrialPool` when
    ``pool`` is given (``workers=0`` is the serial twin — and shares
    the process lower-bound cache across policies, so only the first
    replay pays for each checkpoint's LB).
    """
    if not policies:
        raise ScenarioError("need at least one policy to compare")
    options = options or ReplayOptions()
    for policy in policies:
        validate_policy_name(policy)
    scenario_doc = scenario.to_dict()
    options_doc = options.to_dict()
    tasks = [(scenario_doc, policy, options_doc) for policy in policies]
    outcomes = run_trials(_compare_trial, tasks, pool=pool)
    values = successful_values(
        outcomes, context=f"scenario {scenario.name!r} comparison"
    )
    return [ReplayResult.from_dict(v) for v in values]
