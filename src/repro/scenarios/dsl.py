"""Declarative DSL for adversarial online-assignment workloads.

A :class:`Scenario` is a seeded, declarative description of an
arrival/departure sequence against one problem instance: a list of
:class:`Segment` building blocks (flash crowds, regional outages,
diurnal waves, correlated join/leave bursts, capacity-exhaustion
adversaries, a load-following "nemesis") over an :class:`InstanceSpec`.
Scenarios round-trip through JSON (:meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`) so adversarial workloads are shareable
artifacts, not code.

Compilation (:meth:`Scenario.compile`) resolves the declarative
segments into a concrete :class:`ScenarioTrace` — a flat, canonically
ordered list of :class:`ScenarioEvent` records. The trace is
**oblivious**: it is a pure function of the scenario (same seed ⇒
byte-identical trace, via the shared :mod:`repro.sim.sequencing`
ordering rule), fixed before any policy sees it, so every policy in a
comparison faces exactly the same adversary. Targeted segments
(capacity crunch, nemesis) aim using a *model* of nearest-server loads
maintained during compilation — adversarial pressure without breaking
obliviousness.

Fault segments compose with :class:`repro.faults.FaultSchedule`: a
:class:`RegionalOutage` becomes a
:class:`~repro.faults.models.DownInterval` (or
:class:`~repro.faults.models.Partition`), and the schedule's
``all_events()`` merge — availability-restoring edges before
availability-removing ones at shared instants — is what lands in the
trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ScenarioError
from repro.faults import FaultSchedule
from repro.faults.models import DownInterval, Partition
from repro.sim.sequencing import ordered_timed

#: Tie order of event classes at a shared instant. Fault edges keep the
#: :meth:`FaultSchedule.all_events` contract (restore before remove);
#: churn follows faults, explicit rebalances come last.
_CLASS_ORDER = {
    "recover": 0,
    "heal": 1,
    "crash": 2,
    "partition": 3,
    "join": 4,
    "leave": 4,
    "rebalance": 5,
}

_INSTANCE_KINDS = ("planet", "meridian", "mit")


# ----------------------------------------------------------------------
# Instance specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstanceSpec:
    """The problem instance a scenario runs against.

    ``kind`` selects the generator: ``"planet"`` (coordinate provider,
    library/sharded paths only) or ``"meridian"``/``"mit"`` (dense
    synthetic matrices, placement-resolved servers — the kinds the wire
    service can synthesize, so these replay over TCP too).
    """

    kind: str = "planet"
    n_clients: int = 200
    n_servers: int = 8
    n_clusters: int = 16
    seed: int = 0
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _INSTANCE_KINDS:
            raise ScenarioError(
                f"instance kind must be one of {_INSTANCE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.n_clients < 1:
            raise ScenarioError(
                f"n_clients must be >= 1, got {self.n_clients}"
            )
        if self.n_servers < 1:
            raise ScenarioError(
                f"n_servers must be >= 1, got {self.n_servers}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ScenarioError(
                f"capacity must be >= 1 when given, got {self.capacity}"
            )

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> int:
        """Size of the node universe (servers + clients)."""
        return self.n_clients + self.n_servers

    def build(self) -> "BuiltInstance":
        """Materialize the provider, server nodes and client universe."""
        if self.kind == "planet":
            from repro.datasets import planet_instance

            inst = planet_instance(
                self.n_clients,
                self.n_servers,
                n_clusters=self.n_clusters,
                seed=self.seed,
            )
            return BuiltInstance(
                spec=self,
                provider=inst.provider,
                servers=np.asarray(inst.servers, dtype=np.int64),
                clients=np.asarray(inst.clients, dtype=np.int64),
            )
        config = self.session_config()
        matrix = config.build_matrix()
        servers = np.asarray(config.resolve_servers(matrix), dtype=np.int64)
        mask = np.ones(self.nodes, dtype=bool)
        mask[servers] = False
        clients = np.flatnonzero(mask).astype(np.int64)
        return BuiltInstance(
            spec=self, provider=matrix, servers=servers, clients=clients
        )

    def session_config(self, online: Any = None) -> Any:
        """The :class:`~repro.service.core.SessionConfig` twin of this
        spec (wire-path replay opens its session with exactly this, so
        the service synthesizes the same matrix and placement)."""
        if self.kind == "planet":
            raise ScenarioError(
                "planet instances cannot run over the wire: the service "
                "synthesizes only meridian/mit matrices"
            )
        from repro.service.core import SessionConfig

        kwargs: Dict[str, Any] = dict(
            nodes=self.nodes,
            kind=self.kind,
            matrix_seed=self.seed,
            n_servers=self.n_servers,
            placement="k-center-b",
            placement_seed=0,
        )
        if online is not None:
            kwargs["online"] = online
        return SessionConfig(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "n_clusters": self.n_clusters,
            "seed": self.seed,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InstanceSpec":
        return cls(**data)


@dataclass(frozen=True)
class BuiltInstance:
    """A materialized instance: provider + server and client node sets."""

    spec: InstanceSpec
    provider: Any
    servers: np.ndarray
    clients: np.ndarray

    @property
    def capacity(self) -> Optional[int]:
        return self.spec.capacity


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
#: A churn intent: ``(time, op, target_server)`` where ``op`` is one of
#: join / join-near / join-nemesis / leave / leave-near and
#: ``target_server`` is a local server index (or None).
Intent = Tuple[float, str, Optional[int]]


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ScenarioError(f"{name} must be positive, got {value}")


def _require_nonnegative(name: str, value: float) -> None:
    if value < 0:
        raise ScenarioError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class Segment:
    """Base class for scenario building blocks.

    Subclasses declare a stable ``kind`` (the JSON discriminator),
    emit churn :data:`Intent` records from :meth:`intents`, and/or
    contribute fault windows from :meth:`down_intervals` /
    :meth:`partitions`.
    """

    kind = "?"

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        return []

    def down_intervals(self) -> List[DownInterval]:
        return []

    def partitions(self) -> List[Partition]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": self.kind}
        data.update(self.__dict__)
        return data


@dataclass(frozen=True)
class FlashCrowd(Segment):
    """``joins`` arrivals packed uniformly into a short window.

    With ``server`` set, arrivals are the unconnected clients nearest
    to that server (a *regional* flash crowd) instead of uniformly
    random ones.
    """

    kind = "flash-crowd"

    start: float = 0.0
    duration: float = 10.0
    joins: int = 100
    server: Optional[int] = None

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)
        _require_nonnegative("joins", self.joins)

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        op = "join" if self.server is None else "join-near"
        times = self.start + self.duration * rng.random(self.joins)
        return [(float(t), op, self.server) for t in times]


@dataclass(frozen=True)
class DiurnalWave(Segment):
    """Sinusoidally modulated arrivals (day/night cycle), by thinning.

    Candidate arrivals are uniform over the window at the peak density;
    each survives with probability proportional to the instantaneous
    sinusoidal rate (trough fraction ``trough``), mirroring
    :func:`repro.sim.workload.diurnal_workload`.
    """

    kind = "diurnal"

    start: float = 0.0
    duration: float = 100.0
    period: float = 50.0
    joins: int = 120
    trough: float = 0.1

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)
        _require_positive("period", self.period)
        _require_nonnegative("joins", self.joins)
        if not 0.0 < self.trough <= 1.0:
            raise ScenarioError(
                f"trough must be in (0, 1], got {self.trough}"
            )

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        out: List[Intent] = []
        times = self.start + self.duration * rng.random(self.joins)
        accept = rng.random(self.joins)
        mid = (1.0 + self.trough) / 2.0
        amplitude = (1.0 - self.trough) / 2.0
        for t, u in zip(times, accept):
            rate = mid + amplitude * np.sin(
                2.0 * np.pi * (t - self.start) / self.period
            )
            if u < rate:
                out.append((float(t), "join", None))
        return out


@dataclass(frozen=True)
class CorrelatedBursts(Segment):
    """Repeated synchronized join bursts, each echoed by a leave burst.

    Every ``period``, ``joins`` clients arrive within a ``width``-wide
    spike and ``leaves`` clients depart half a period later — the
    session-storm pattern (match start / match end) that stresses both
    admission and the D recovery after mass departures.
    """

    kind = "correlated-bursts"

    start: float = 0.0
    period: float = 20.0
    bursts: int = 4
    joins: int = 30
    leaves: int = 25
    width: float = 0.5

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("period", self.period)
        _require_positive("bursts", self.bursts)
        _require_nonnegative("joins", self.joins)
        _require_nonnegative("leaves", self.leaves)
        _require_positive("width", self.width)

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        out: List[Intent] = []
        for b in range(self.bursts):
            base = self.start + b * self.period
            for t in base + self.width * rng.random(self.joins):
                out.append((float(t), "join", None))
            leave_base = base + self.period / 2.0
            for t in leave_base + self.width * rng.random(self.leaves):
                out.append((float(t), "leave", None))
        return out


@dataclass(frozen=True)
class CapacityCrunch(Segment):
    """Arrivals aimed at one server's neighborhood to exhaust its slots.

    The adversary of the capacitated online problem: every join is the
    unconnected client nearest to ``server``, so a policy that always
    takes the locally best server saturates it and starts rejecting,
    while a capacity-aware policy spreads the crowd.
    """

    kind = "capacity-crunch"

    start: float = 0.0
    duration: float = 20.0
    joins: int = 80
    server: int = 0

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)
        _require_nonnegative("joins", self.joins)
        _require_nonnegative("server", self.server)

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        times = self.start + self.duration * rng.random(self.joins)
        return [(float(t), "join-near", self.server) for t in times]


@dataclass(frozen=True)
class NemesisChurn(Segment):
    """A load-following adversary: each join targets the hottest server.

    At compile time the DSL maintains a nearest-server load model;
    every nemesis join picks the unconnected client nearest to the
    *currently most loaded* server (by that model), and every nemesis
    leave removes a client of the *least* loaded one — continuously
    pushing the system toward imbalance. The resolved trace stays
    oblivious: targets are fixed by the model, not by the policy under
    test.
    """

    kind = "nemesis"

    start: float = 0.0
    duration: float = 30.0
    events: int = 60
    leave_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)
        _require_nonnegative("events", self.events)
        if not 0.0 <= self.leave_fraction < 1.0:
            raise ScenarioError(
                f"leave_fraction must be in [0, 1), got {self.leave_fraction}"
            )

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        out: List[Intent] = []
        times = self.start + self.duration * rng.random(self.events)
        rolls = rng.random(self.events)
        for t, roll in zip(times, rolls):
            if roll < self.leave_fraction:
                out.append((float(t), "leave-nemesis", None))
            else:
                out.append((float(t), "join-nemesis", None))
        return out


@dataclass(frozen=True)
class Drain(Segment):
    """``leaves`` random departures spread uniformly over a window."""

    kind = "drain"

    start: float = 0.0
    duration: float = 10.0
    leaves: int = 50

    def __post_init__(self) -> None:
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)
        _require_nonnegative("leaves", self.leaves)

    def intents(self, rng: np.random.Generator) -> List[Intent]:
        times = self.start + self.duration * rng.random(self.leaves)
        return [(float(t), "leave", None) for t in times]


@dataclass(frozen=True)
class RegionalOutage(Segment):
    """One server lost for a window: a crash or (with ``partition``) a
    network partition.

    Composes with :class:`repro.faults.FaultSchedule`: the segment
    contributes a :class:`~repro.faults.models.DownInterval` or
    :class:`~repro.faults.models.Partition` and the schedule's merged
    edge ordering decides same-instant ties.
    """

    kind = "regional-outage"

    server: int = 0
    start: float = 10.0
    duration: float = 10.0
    partition: bool = False

    def __post_init__(self) -> None:
        _require_nonnegative("server", self.server)
        _require_nonnegative("start", self.start)
        _require_positive("duration", self.duration)

    def down_intervals(self) -> List[DownInterval]:
        if self.partition:
            return []
        return [
            DownInterval(
                server=self.server,
                start=self.start,
                end=self.start + self.duration,
            )
        ]

    def partitions(self) -> List[Partition]:
        if not self.partition:
            return []
        return [
            Partition(
                servers=(self.server,),
                start=self.start,
                end=self.start + self.duration,
            )
        ]


#: JSON discriminator → segment class.
SEGMENT_KINDS: Dict[str, Callable[..., Segment]] = {
    cls.kind: cls
    for cls in (
        FlashCrowd,
        DiurnalWave,
        CorrelatedBursts,
        CapacityCrunch,
        NemesisChurn,
        Drain,
        RegionalOutage,
    )
}


def segment_from_dict(data: Dict[str, Any]) -> Segment:
    """Rebuild a segment from its ``kind``-discriminated dict."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = SEGMENT_KINDS.get(kind)
    if cls is None:
        raise ScenarioError(
            f"unknown segment kind {kind!r}; known: "
            f"{sorted(SEGMENT_KINDS)}"
        )
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ScenarioError(f"bad {kind!r} segment: {exc}") from None


# ----------------------------------------------------------------------
# Compiled trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioEvent:
    """One resolved event of a compiled scenario.

    ``op`` matches the service wire vocabulary (``join``/``leave``/
    ``crash``/``recover``/``partition``/``heal``/``rebalance``);
    ``server`` holds local server indices, ``node`` global node ids.
    """

    time: float
    seq: int
    op: str
    node: Optional[int] = None
    server: Optional[int] = None
    max_moves: Optional[int] = None

    def to_event_dict(self) -> Dict[str, Any]:
        """The wire-protocol ``batch`` event for this record."""
        if self.op in ("join", "leave"):
            return {"op": self.op, "node": self.node}
        if self.op in ("crash", "recover"):
            return {"op": self.op, "server": self.server}
        if self.op in ("partition", "heal"):
            return {"op": self.op, "servers": [self.server]}
        if self.op == "rebalance":
            return {"op": self.op, "max_moves": self.max_moves or 8}
        raise ScenarioError(f"unknown scenario op {self.op!r}")


_FAULT_OPS = frozenset({"crash", "recover", "partition", "heal"})


@dataclass(frozen=True)
class ScenarioTrace:
    """A compiled scenario: a fixed, canonically ordered event list."""

    name: str
    events: Tuple[ScenarioEvent, ...]

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def n_joins(self) -> int:
        return sum(1 for e in self.events if e.op == "join")

    @property
    def n_leaves(self) -> int:
        return sum(1 for e in self.events if e.op == "leave")

    @property
    def has_faults(self) -> bool:
        return any(e.op in _FAULT_OPS for e in self.events)


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, seeded adversarial workload over one instance."""

    name: str
    instance: InstanceSpec = field(default_factory=InstanceSpec)
    segments: Tuple[Segment, ...] = ()
    seed: int = 0
    #: Insert an explicit bounded rebalance every N churn events
    #: (0 disables).
    rebalance_every: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        object.__setattr__(self, "segments", tuple(self.segments))
        for segment in self.segments:
            if not isinstance(segment, Segment):
                raise ScenarioError(
                    f"segments must be Segment instances, got "
                    f"{type(segment).__name__}"
                )
        if self.rebalance_every < 0:
            raise ScenarioError(
                f"rebalance_every must be >= 0, got {self.rebalance_every}"
            )

    # ------------------------------------------------------------------
    def fault_schedule(self) -> FaultSchedule:
        """The composed fault timeline of every fault-bearing segment."""
        downs: List[DownInterval] = []
        parts: List[Partition] = []
        for segment in self.segments:
            downs.extend(segment.down_intervals())
            parts.extend(segment.partitions())
        for interval in downs:
            if interval.server >= self.instance.n_servers:
                raise ScenarioError(
                    f"outage server {interval.server} out of range for "
                    f"{self.instance.n_servers} servers"
                )
        for part in parts:
            for server in part.servers:
                if server >= self.instance.n_servers:
                    raise ScenarioError(
                        f"partition server {server} out of range for "
                        f"{self.instance.n_servers} servers"
                    )
        return FaultSchedule(downs, partitions=parts)

    # ------------------------------------------------------------------
    def compile(
        self, built: Optional[BuiltInstance] = None
    ) -> ScenarioTrace:
        """Resolve the declarative segments into a fixed event trace.

        A pure function of the scenario (and its seed): segment intents
        are gathered, merged with the fault timeline under the shared
        :mod:`repro.sim.sequencing` ordering, then resolved against a
        compile-time population model (who is connected, model loads
        for nemesis targeting). ``built`` skips rebuilding the instance
        when the caller already has it.
        """
        if built is None:
            built = self.instance.build()
        rng = np.random.default_rng(self.seed)
        intents: List[Intent] = []
        for segment in self.segments:
            intents.extend(segment.intents(rng))

        # One keyed record per intent/fault edge; the composite key
        # (class priority, emission index) makes ordering total and
        # deterministic under the shared (time, key) rule.
        keyed: List[Tuple[float, Tuple[int, int, str, Optional[int]]]] = []
        for i, (t, op, server) in enumerate(intents):
            keyed.append((t, (_CLASS_ORDER["join"], i, op, server)))
        for i, edge in enumerate(self.fault_schedule().all_events()):
            keyed.append(
                (edge.time, (_CLASS_ORDER[edge.kind], i, edge.kind, edge.server))
            )

        resolver = _Resolver(built, rng)
        events: List[ScenarioEvent] = []
        churn = 0
        for time, (_, _, op, server) in ordered_timed(keyed):
            record = resolver.resolve(time, op, server, len(events))
            if record is None:
                continue
            events.append(record)
            if record.op in ("join", "leave"):
                churn += 1
                if self.rebalance_every and churn % self.rebalance_every == 0:
                    events.append(
                        ScenarioEvent(
                            time=time,
                            seq=len(events),
                            op="rebalance",
                            max_moves=8,
                        )
                    )
        return ScenarioTrace(name=self.name, events=tuple(events))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "instance": self.instance.to_dict(),
            "segments": [s.to_dict() for s in self.segments],
            "seed": self.seed,
            "rebalance_every": self.rebalance_every,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        try:
            payload = dict(data)
            instance = InstanceSpec.from_dict(payload.pop("instance", {}))
            segments = tuple(
                segment_from_dict(s) for s in payload.pop("segments", [])
            )
            return cls(instance=instance, segments=segments, **payload)
        except ScenarioError:
            raise
        except (TypeError, KeyError, AttributeError) as exc:
            raise ScenarioError(f"bad scenario document: {exc}") from None

    def dumps(self, *, indent: Optional[int] = 2) -> str:
        """The scenario as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "Scenario":
        """Parse a scenario from its JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ScenarioError("scenario JSON must be an object")
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Compile-time resolver
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves churn intents against the compile-time population model.

    Tracks who is connected, keeps a nearest-server load model (for
    nemesis and targeted segments) and turns abstract intents into
    concrete node-level events. Joins with an empty unconnected pool
    and leaves with an empty connected pool are dropped (the scenario
    over-asked; the trace stays feasible by construction).
    """

    def __init__(self, built: BuiltInstance, rng: np.random.Generator) -> None:
        self._rng = rng
        clients = built.clients
        self._nodes = [int(n) for n in clients]
        # d(c, s) for targeting; one block call at compile time.
        self._cs = np.asarray(
            built.provider.client_server_distances(clients, built.servers),
            dtype=np.float64,
        )
        self._nearest = np.argmin(self._cs, axis=1)
        self._index_of = {node: i for i, node in enumerate(self._nodes)}
        # Per-server client orderings by proximity, built lazily.
        self._near_order: Dict[int, np.ndarray] = {}
        self._n_servers = int(built.servers.size)
        self._connected: set = set()
        self._pool = list(self._nodes)  # sorted (clients are sorted)
        self._loads = np.zeros(self._n_servers, dtype=np.int64)

    # -- model maintenance ---------------------------------------------
    def _model_join(self, node: int) -> None:
        self._connected.add(node)
        self._pool.remove(node)
        self._loads[self._nearest[self._index_of[node]]] += 1

    def _model_leave(self, node: int) -> None:
        self._connected.discard(node)
        # Keep the pool sorted so rng-indexed picks stay deterministic.
        import bisect

        bisect.insort(self._pool, node)
        self._loads[self._nearest[self._index_of[node]]] -= 1

    def _order_near(self, server: int) -> np.ndarray:
        order = self._near_order.get(server)
        if order is None:
            order = np.argsort(self._cs[:, server], kind="stable")
            self._near_order[server] = order
        return order

    # -- picks ---------------------------------------------------------
    def _pick_join(self, server: Optional[int]) -> Optional[int]:
        if not self._pool:
            return None
        if server is None:
            return self._pool[int(self._rng.integers(len(self._pool)))]
        server = server % self._n_servers
        for idx in self._order_near(server):
            node = self._nodes[int(idx)]
            if node not in self._connected:
                return node
        return None

    def _pick_leave(self, server: Optional[int]) -> Optional[int]:
        if not self._connected:
            return None
        if server is None:
            ordered = sorted(self._connected)
            return ordered[int(self._rng.integers(len(ordered)))]
        server = server % self._n_servers
        for idx in self._order_near(server):
            node = self._nodes[int(idx)]
            if node in self._connected:
                return node
        return None

    # -- entry point ---------------------------------------------------
    def resolve(
        self, time: float, op: str, server: Optional[int], seq: int
    ) -> Optional[ScenarioEvent]:
        if op in _FAULT_OPS:
            return ScenarioEvent(time=time, seq=seq, op=op, server=server)
        if op == "join-nemesis":
            op, server = "join-near", int(np.argmax(self._loads))
        elif op == "leave-nemesis":
            op, server = "leave-near", int(np.argmin(self._loads))
        if op in ("join", "join-near"):
            node = self._pick_join(server if op == "join-near" else None)
            if node is None:
                return None
            self._model_join(node)
            return ScenarioEvent(time=time, seq=seq, op="join", node=node)
        if op in ("leave", "leave-near"):
            node = self._pick_leave(server if op == "leave-near" else None)
            if node is None:
                return None
            self._model_leave(node)
            return ScenarioEvent(time=time, seq=seq, op="leave", node=node)
        raise ScenarioError(f"unknown intent op {op!r}")
