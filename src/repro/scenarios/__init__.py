"""Adversarial workload DSL + empirical competitive-ratio harness.

Declarative, seeded scenario documents (:mod:`repro.scenarios.dsl`)
compile to fixed event traces that replay through any registered
:class:`~repro.algorithms.policies.OnlinePolicy` — via the plain
manager, the region-sharded manager, or a live wire session — while
the harness (:mod:`repro.scenarios.harness`) measures the empirical
competitive ratio against the paper's §V super-optimal lower bound at
checkpoints. See ``docs/scenarios.md`` for the authoring guide.
"""

from repro.scenarios.catalog import bundled_scenario, scenario_names
from repro.scenarios.dsl import (
    SEGMENT_KINDS,
    BuiltInstance,
    CapacityCrunch,
    CorrelatedBursts,
    DiurnalWave,
    Drain,
    FlashCrowd,
    InstanceSpec,
    NemesisChurn,
    RegionalOutage,
    Scenario,
    ScenarioEvent,
    ScenarioTrace,
    Segment,
    segment_from_dict,
)
from repro.scenarios.harness import (
    Checkpoint,
    ReplayOptions,
    ReplayResult,
    check_ratios,
    compare_policies,
    replay_scenario,
)
from repro.scenarios.report import (
    compare_to_dict,
    render_compare_report,
    render_run_report,
)

__all__ = [
    "Scenario",
    "InstanceSpec",
    "BuiltInstance",
    "Segment",
    "FlashCrowd",
    "DiurnalWave",
    "CorrelatedBursts",
    "CapacityCrunch",
    "NemesisChurn",
    "Drain",
    "RegionalOutage",
    "SEGMENT_KINDS",
    "segment_from_dict",
    "ScenarioEvent",
    "ScenarioTrace",
    "bundled_scenario",
    "scenario_names",
    "ReplayOptions",
    "ReplayResult",
    "Checkpoint",
    "replay_scenario",
    "compare_policies",
    "check_ratios",
    "render_run_report",
    "render_compare_report",
    "compare_to_dict",
]
