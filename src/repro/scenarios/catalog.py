"""Bundled adversarial scenarios.

Six canonical adversaries, one per DSL segment family, sized so the
full catalog replays in seconds (benchmarks scale the same shapes up
via :mod:`benchmarks.bench_scenarios`). Each is a plain
:class:`~repro.scenarios.dsl.Scenario` — ``repro scenarios run
--scenario <name> --json`` prints the JSON document, which is also the
template for authoring custom ones (``--file``).

``flash-crowd`` and ``regional-outage`` run on a meridian-like matrix
(so they replay over the wire path too); the rest use the planet
generator's clustered geography, where regional targeting bites.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ScenarioError
from repro.scenarios.dsl import (
    CapacityCrunch,
    CorrelatedBursts,
    DiurnalWave,
    Drain,
    FlashCrowd,
    InstanceSpec,
    NemesisChurn,
    RegionalOutage,
    Scenario,
)


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash-crowd",
        description=(
            "Quiet trickle, then 120 arrivals inside 5 time units — "
            "the match-start stampede."
        ),
        instance=InstanceSpec(
            kind="meridian", n_clients=192, n_servers=8, seed=11, capacity=40
        ),
        segments=(
            FlashCrowd(start=0.0, duration=20.0, joins=30),
            FlashCrowd(start=25.0, duration=5.0, joins=120),
            Drain(start=35.0, duration=10.0, leaves=40),
        ),
        seed=101,
    )


def _regional_outage() -> Scenario:
    return Scenario(
        name="regional-outage",
        description=(
            "A populated system loses its busiest region's server for a "
            "window, then a second server is partitioned."
        ),
        instance=InstanceSpec(
            kind="meridian", n_clients=152, n_servers=8, seed=7, capacity=40
        ),
        segments=(
            FlashCrowd(start=0.0, duration=10.0, joins=110),
            RegionalOutage(server=0, start=15.0, duration=10.0),
            RegionalOutage(server=3, start=20.0, duration=8.0, partition=True),
            FlashCrowd(start=16.0, duration=10.0, joins=30),
        ),
        seed=202,
    )


def _diurnal() -> Scenario:
    return Scenario(
        name="diurnal",
        description=(
            "Two day/night cycles of sinusoidal arrivals with a "
            "night-time drain."
        ),
        instance=InstanceSpec(
            kind="planet", n_clients=240, n_servers=8, n_clusters=12, seed=5
        ),
        segments=(
            DiurnalWave(start=0.0, duration=80.0, period=40.0, joins=200),
            Drain(start=40.0, duration=20.0, leaves=50),
        ),
        seed=303,
        rebalance_every=48,
    )


def _correlated_bursts() -> Scenario:
    return Scenario(
        name="correlated-bursts",
        description=(
            "Synchronized join storms each echoed by a leave storm half "
            "a period later."
        ),
        instance=InstanceSpec(
            kind="planet", n_clients=220, n_servers=8, n_clusters=10, seed=9
        ),
        segments=(
            CorrelatedBursts(
                start=0.0, period=20.0, bursts=5, joins=40, leaves=30
            ),
        ),
        seed=404,
    )


def _capacity_crunch() -> Scenario:
    return Scenario(
        name="capacity-crunch",
        description=(
            "Every arrival lands next to one server until its slots are "
            "gone — the adversary capacity-aware spread exists for."
        ),
        instance=InstanceSpec(
            kind="planet",
            n_clients=200,
            n_servers=8,
            n_clusters=8,
            seed=13,
            capacity=14,
        ),
        segments=(
            FlashCrowd(start=0.0, duration=10.0, joins=40),
            CapacityCrunch(start=12.0, duration=20.0, joins=90, server=0),
        ),
        seed=505,
    )


def _nemesis() -> Scenario:
    return Scenario(
        name="nemesis",
        description=(
            "A load-following adversary: joins chase the hottest server, "
            "leaves bleed the coolest."
        ),
        instance=InstanceSpec(
            kind="planet",
            n_clients=240,
            n_servers=8,
            n_clusters=12,
            seed=21,
            capacity=45,
        ),
        segments=(
            FlashCrowd(start=0.0, duration=8.0, joins=60),
            NemesisChurn(start=10.0, duration=40.0, events=140),
        ),
        seed=606,
    )


_BUNDLED: Dict[str, Callable[[], Scenario]] = {
    "flash-crowd": _flash_crowd,
    "regional-outage": _regional_outage,
    "diurnal": _diurnal,
    "correlated-bursts": _correlated_bursts,
    "capacity-crunch": _capacity_crunch,
    "nemesis": _nemesis,
}


def scenario_names() -> List[str]:
    """Names of the bundled scenarios, sorted."""
    return sorted(_BUNDLED)


def bundled_scenario(name: str) -> Scenario:
    """A fresh instance of the named bundled scenario."""
    factory = _BUNDLED.get(name)
    if factory is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; bundled: {scenario_names()}"
        )
    return factory()
