"""Rendering of scenario replay and comparison results.

Plain-text reports (ASCII tables + unicode charts from
:mod:`repro.experiments.ascii_charts`) and the JSON document behind
``repro scenarios run/compare --json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.ascii_charts import bar_chart, multi_series_chart
from repro.scenarios.harness import ReplayResult


def _fmt(value: Optional[float], precision: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}f}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def summarize_result(result: ReplayResult) -> List[str]:
    """Per-replay summary lines (the ``run`` subcommand body)."""
    final = result.final
    lines = [
        f"scenario {result.scenario!r} via {result.policy} "
        f"({result.path} path): {result.n_events} events, "
        f"{len(result.checkpoints)} checkpoints, "
        f"{result.elapsed_seconds:.2f}s "
        f"({result.events_per_second:.0f} ev/s)",
        f"  ratio vs lower bound: mean {_fmt(result.mean_ratio)}, "
        f"max {_fmt(result.max_ratio)}",
    ]
    if final is not None:
        lines.append(
            f"  final: D={_fmt(final.d_online)} LB={_fmt(final.lower_bound)} "
            f"connected={final.n_connected} rejected={final.rejected}"
        )
        if final.d_offline is not None:
            lines.append(
                f"  offline reference: D={_fmt(final.d_offline)} "
                f"ratio={_fmt(final.ratio_offline)} "
                f"regret={_fmt(final.regret)}"
            )
    counters = ", ".join(
        f"{k}={v}" for k, v in sorted(result.counters.items()) if v
    )
    if counters:
        lines.append(f"  counters: {counters}")
    if len(result.checkpoints) >= 2:
        x = [c.event_index for c in result.checkpoints]
        lines.append("")
        lines.append("ratio curve (D_online / LB per checkpoint):")
        lines.append(
            multi_series_chart(x, {result.policy: [c.ratio for c in result.checkpoints]})
        )
    return lines


def render_run_report(result: ReplayResult) -> str:
    """The full text report of one replay."""
    return "\n".join(summarize_result(result))


def render_compare_report(results: Sequence[ReplayResult]) -> str:
    """The full text report of a multi-policy comparison."""
    if not results:
        return "no results"
    head = results[0]
    lines = [
        f"scenario {head.scenario!r} — {len(results)} policies, "
        f"{head.n_events} events each ({head.path} path)",
        "",
    ]
    rows = []
    for r in results:
        final = r.final
        rows.append(
            [
                r.policy,
                _fmt(r.mean_ratio),
                _fmt(r.max_ratio),
                _fmt(final.d_online) if final else "-",
                str(final.rejected) if final else "0",
                str(r.counters.get("maintain_moves", 0)),
                f"{r.events_per_second:.0f}",
            ]
        )
    lines.append(
        _table(
            ["policy", "mean ratio", "max ratio", "final D",
             "rejected", "moves", "ev/s"],
            rows,
        )
    )
    curves = {
        r.policy: [c.ratio for c in r.checkpoints]
        for r in results
        if len(r.checkpoints) >= 2
    }
    shortest = min((len(v) for v in curves.values()), default=0)
    if shortest >= 2 and curves:
        # Align on the shortest curve (paths may drop empty checkpoints).
        x_source = next(
            r for r in results if len(r.checkpoints) >= shortest
        )
        x = [c.event_index for c in x_source.checkpoints[:shortest]]
        lines.append("")
        lines.append("ratio curves (D_online / LB per checkpoint):")
        lines.append(
            multi_series_chart(
                x, {k: v[:shortest] for k, v in curves.items()}
            )
        )
    lines.append("")
    lines.append("mean competitive ratio:")
    lines.append(
        bar_chart(
            [r.policy for r in results],
            [r.mean_ratio for r in results],
            unit="x",
        )
    )
    return "\n".join(lines)


def compare_to_dict(results: Sequence[ReplayResult]) -> Dict[str, Any]:
    """The JSON document of a comparison."""
    return {
        "scenario": results[0].scenario if results else None,
        "path": results[0].path if results else None,
        "policies": [r.policy for r in results],
        "results": [r.to_dict() for r in results],
    }
