"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError``, ``KeyError`` from internal bugs, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class InvalidLatencyMatrixError(ReproError):
    """A latency matrix failed structural validation.

    Raised when a matrix is not square, contains NaN/inf where not
    permitted, has nonpositive off-diagonal entries, or has a nonzero
    diagonal.
    """


class InvalidProblemError(ReproError):
    """A :class:`~repro.core.problem.ClientAssignmentProblem` is malformed.

    Examples: empty server or client set, indices out of range, duplicate
    servers, or capacities that cannot accommodate all clients.
    """


class InvalidAssignmentError(ReproError):
    """An assignment violates the problem definition.

    Examples: a client mapped to a node that is not a server, an
    unassigned client, or a capacitated assignment exceeding a server's
    capacity.
    """


class InvalidParameterError(ReproError, ValueError):
    """A function or constructor argument is out of its valid domain.

    Also derives from :class:`ValueError` so callers that predate the
    package hierarchy (``except ValueError``) keep working.
    """


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name is not present in the registry.

    Also derives from :class:`KeyError` so callers that predate the
    package hierarchy (``except KeyError``) keep working. The message
    lists the registered names.
    """

    def __str__(self) -> str:  # KeyError wraps its arg in repr()
        return self.args[0] if self.args else ""


class CapacityError(ReproError):
    """Total server capacity is insufficient for the client population."""


class FaultScheduleError(ReproError):
    """A fault schedule is malformed.

    Examples: overlapping crash intervals for one server, a recovery
    before its crash, or a latency spike with a nonpositive window.
    """


class FailoverError(ReproError):
    """The failover controller could not repair the system.

    Raised when a crash leaves surviving capacity insufficient for the
    evacuated clients, or when every server is down simultaneously.
    """


class ResilienceError(ReproError):
    """The durability layer could not complete an operation.

    Base class for write-ahead-log and checkpoint failures; the online
    runtime raises it when recovery from disk is impossible (no
    checkpoint and no log) or when a replayed log disagrees with the
    matrix it is being recovered against.
    """


class WalCorruptionError(ResilienceError):
    """A write-ahead log failed integrity checks beyond its tail.

    A torn or checksum-invalid *final* record is expected (crash
    mid-write) and handled by truncation; this error means valid
    records were found *after* an invalid one — mid-file damage that
    truncation would silently discard acknowledged writes to "repair".
    """


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, read, or used for recovery.

    Examples: no checkpoint and no WAL in a recovery directory, or a
    checkpoint whose matrix fingerprint does not match the matrix the
    caller supplied.
    """


class TrialExecutionError(ReproError):
    """A parallel trial sweep could not produce a usable result.

    Raised when every trial behind one aggregate (a sweep point, a
    figure panel, an ablation row) failed — individual trial failures
    are tolerated and reported, but an aggregate of zero successes
    would silently fabricate data.
    """


class InfeasibleScheduleError(ReproError):
    """A requested lag ``delta`` is below the minimum achievable value D."""


class DatasetError(ReproError):
    """A dataset file could not be parsed or failed integrity checks."""


class GraphError(ReproError):
    """A network graph is malformed or disconnected where connectivity
    is required (e.g. routing between nodes with no path)."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""


class ConsistencyViolation(SimulationError):
    """The simulated DIA violated the consistency criterion.

    Two clients observed different application states at the same
    simulation time.
    """


class FairnessViolation(SimulationError):
    """The simulated DIA violated the fairness criterion.

    Operations were executed out of issuance order, or the
    issuance-to-execution lag was not constant across operations.
    """
