"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError``, ``KeyError`` from internal bugs, ...) propagate.

Every class carries a **stable machine-readable code** in its ``code``
class attribute (kebab-case, never reused for a different meaning).
The service layer (:mod:`repro.service`) maps exceptions onto
structured protocol error replies through these codes, so remote
clients dispatch on ``error["code"]`` instead of parsing message
strings. :func:`error_code` resolves the code for any exception and
:data:`ERROR_CODES` maps each code back to its class.
"""

from __future__ import annotations

from typing import Dict, Type

#: Code reported for exceptions outside the :class:`ReproError` tree.
INTERNAL_ERROR_CODE = "internal-error"


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""

    code = "repro-error"


class InvalidLatencyMatrixError(ReproError):
    """A latency matrix failed structural validation.

    Raised when a matrix is not square, contains NaN/inf where not
    permitted, has nonpositive off-diagonal entries, or has a nonzero
    diagonal.
    """

    code = "invalid-latency-matrix"


class InvalidProblemError(ReproError):
    """A :class:`~repro.core.problem.ClientAssignmentProblem` is malformed.

    Examples: empty server or client set, indices out of range, duplicate
    servers, or capacities that cannot accommodate all clients.
    """

    code = "invalid-problem"


class InvalidAssignmentError(ReproError):
    """An assignment violates the problem definition.

    Examples: a client mapped to a node that is not a server, an
    unassigned client, or a capacitated assignment exceeding a server's
    capacity.
    """

    code = "invalid-assignment"


class InvalidParameterError(ReproError, ValueError):
    """A function or constructor argument is out of its valid domain.

    Also derives from :class:`ValueError` so callers that predate the
    package hierarchy (``except ValueError``) keep working.
    """

    code = "invalid-parameter"


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name is not present in the registry.

    Also derives from :class:`KeyError` so callers that predate the
    package hierarchy (``except KeyError``) keep working. The message
    lists the registered names.
    """

    code = "unknown-algorithm"

    def __str__(self) -> str:  # KeyError wraps its arg in repr()
        return self.args[0] if self.args else ""


class CapacityError(ReproError):
    """Total server capacity is insufficient for the client population."""

    code = "capacity-exhausted"


class FaultScheduleError(ReproError):
    """A fault schedule is malformed.

    Examples: overlapping crash intervals for one server, a recovery
    before its crash, or a latency spike with a nonpositive window.
    """

    code = "invalid-fault-schedule"


class FailoverError(ReproError):
    """The failover controller could not repair the system.

    Raised when a crash leaves surviving capacity insufficient for the
    evacuated clients, or when every server is down simultaneously.
    """

    code = "failover-failed"


class ResilienceError(ReproError):
    """The durability layer could not complete an operation.

    Base class for write-ahead-log and checkpoint failures; the online
    runtime raises it when recovery from disk is impossible (no
    checkpoint and no log) or when a replayed log disagrees with the
    matrix it is being recovered against.
    """

    code = "resilience-failed"


class WalCorruptionError(ResilienceError):
    """A write-ahead log failed integrity checks beyond its tail.

    A torn or checksum-invalid *final* record is expected (crash
    mid-write) and handled by truncation; this error means valid
    records were found *after* an invalid one — mid-file damage that
    truncation would silently discard acknowledged writes to "repair".
    """

    code = "wal-corrupt"


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, read, or used for recovery.

    Examples: no checkpoint and no WAL in a recovery directory, or a
    checkpoint whose matrix fingerprint does not match the matrix the
    caller supplied.
    """

    code = "checkpoint-failed"


class TrialExecutionError(ReproError):
    """A parallel trial sweep could not produce a usable result.

    Raised when every trial behind one aggregate (a sweep point, a
    figure panel, an ablation row) failed — individual trial failures
    are tolerated and reported, but an aggregate of zero successes
    would silently fabricate data.
    """

    code = "trial-execution-failed"


class InfeasibleScheduleError(ReproError):
    """A requested lag ``delta`` is below the minimum achievable value D."""

    code = "infeasible-schedule"


class KernelBackendError(ReproError):
    """A requested compute-kernel backend cannot be used.

    Raised when ``backend="numba"`` is requested explicitly but numba is
    not importable in this environment (``backend="auto"`` silently
    falls back to the pure-numpy twin instead).
    """

    code = "kernel-backend-unavailable"


class DatasetError(ReproError):
    """A dataset file could not be parsed or failed integrity checks."""

    code = "dataset-error"


class GraphError(ReproError):
    """A network graph is malformed or disconnected where connectivity
    is required (e.g. routing between nodes with no path)."""

    code = "graph-error"


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""

    code = "convergence-failed"


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""

    code = "simulation-error"


class ConsistencyViolation(SimulationError):
    """The simulated DIA violated the consistency criterion.

    Two clients observed different application states at the same
    simulation time.
    """

    code = "consistency-violation"


class FairnessViolation(SimulationError):
    """The simulated DIA violated the fairness criterion.

    Operations were executed out of issuance order, or the
    issuance-to-execution lag was not constant across operations.
    """

    code = "fairness-violation"


class ServiceError(ReproError):
    """The assignment service could not satisfy a request.

    Base class for session- and protocol-level failures in
    :mod:`repro.service`; every subclass keeps a distinct stable code
    so remote clients can dispatch without string matching.
    """

    code = "service-error"


class UnknownSessionError(ServiceError):
    """A request referenced a session id the service does not hold."""

    code = "unknown-session"


class SessionStateError(ServiceError):
    """A request is invalid for the session's current state.

    Examples: an operation on a closed session, or opening a session
    under a name that is already live.
    """

    code = "session-state"


class ProtocolError(ServiceError):
    """A wire frame could not be decoded into a valid request.

    Examples: invalid JSON, a frame exceeding the size limit, a
    non-object payload, or a missing/unknown ``op``.
    """

    code = "bad-frame"


class FrameTooLargeError(ProtocolError):
    """A wire frame exceeded the configured maximum size."""

    code = "frame-too-large"


class UnknownOperationError(ProtocolError):
    """A request named an operation the service does not implement."""

    code = "unknown-op"


class BadRequestError(ProtocolError):
    """A request was structurally valid but its parameters were not.

    Examples: a missing required field, a field of the wrong type, or
    an out-of-domain value detected before it reaches the library
    layer.
    """

    code = "bad-request"


class ScenarioError(ReproError):
    """An adversarial scenario is malformed or cannot be replayed.

    Examples: a segment with a nonpositive duration, a JSON document
    with an unknown segment kind, or a replay path that cannot host the
    scenario (fault events through a sharded manager, a planet instance
    over the wire).
    """

    code = "scenario-error"


class ScaleBoundError(ReproError):
    """The coreset expansion bound was violated.

    :func:`repro.scale.pipeline.solve_at_scale` re-checks
    ``D_expanded <= D_reduced + 2 * epsilon`` on every run; a violation
    means the coreset invariant itself is broken (an internal bug, not
    a bad solve), so it raises rather than returning a result that
    silently voids the guarantee.
    """

    code = "scale-bound-violated"


def _collect_codes() -> Dict[str, Type[ReproError]]:
    codes: Dict[str, Type[ReproError]] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        existing = codes.get(cls.code)
        # Subclasses that do not override ``code`` inherit their
        # parent's; keep the most general class for the shared code.
        if existing is None or issubclass(existing, cls):
            codes[cls.code] = cls
        stack.extend(cls.__subclasses__())
    return codes


def error_codes() -> Dict[str, Type[ReproError]]:
    """Stable code → exception class, for every registered error.

    Computed on demand so classes defined after import (e.g. in tests)
    are included.
    """
    return _collect_codes()


#: Snapshot of the mapping at import time (module-level convenience).
ERROR_CODES: Dict[str, Type[ReproError]] = _collect_codes()


def error_code(exc: BaseException) -> str:
    """The stable machine-readable code for any exception.

    :class:`ReproError` instances report their class code; everything
    else maps to :data:`INTERNAL_ERROR_CODE` — a service must never
    leak Python class names as its error contract.
    """
    if isinstance(exc, ReproError):
        return type(exc).code
    return INTERNAL_ERROR_CODE
