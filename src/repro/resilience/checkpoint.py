"""Atomic state snapshots for the durable runtime.

A checkpoint is one JSON document capturing the *canonical state dict*
of a :class:`~repro.resilience.runtime.DurableRuntime` — manager
assignment, liveness and reachability masks, failover records, degrade
machine, and the WAL sequence number it reflects. Recovery loads the
latest valid checkpoint and replays only the WAL records after its
``seq``, so recovery time is bounded by checkpoint cadence rather than
run length.

Integrity: every checkpoint embeds a SHA-256 digest of its state dict
(the same digest :meth:`~repro.resilience.runtime.DurableRuntime.
digest` reports, which is what the chaos harness compares). Floats in
state dicts are hex-encoded (``float.hex()``) so the digest is
bit-exact across serialization. Files are written via
:func:`~repro.experiments.persistence.atomic_write_json` (fsync'd temp
+ rename), so a crash mid-checkpoint leaves the previous checkpoint
intact; a checkpoint that fails validation on load is skipped with a
warning and recovery falls back to the previous one (or to full WAL
replay).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.experiments.persistence import atomic_write_json
from repro.obs import registry

PathLike = Union[str, os.PathLike]

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_SCHEMA = 1

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{10})\.json$")


def state_digest(state: Dict[str, Any]) -> str:
    """SHA-256 over the compact, key-sorted JSON of a state dict.

    This is the byte-identity criterion of the resilience layer: two
    runtimes agree iff their digests agree. State dicts hex-encode
    floats, so the digest is exact — no tolerance, no rounding.
    """
    body = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One loaded, validated checkpoint."""

    seq: int
    state: Dict[str, Any]
    path: str


def checkpoint_path(directory: PathLike, seq: int) -> str:
    """Canonical file name for the checkpoint at WAL position ``seq``."""
    return os.path.join(os.fspath(directory), f"checkpoint-{seq:010d}.json")


def write_checkpoint(
    directory: PathLike,
    seq: int,
    state: Dict[str, Any],
    *,
    keep: int = 2,
) -> str:
    """Atomically persist ``state`` as the checkpoint at ``seq``.

    Keeps the ``keep`` most recent checkpoints (older ones are pruned
    after the new one is durably in place — never before, so there is
    no window without a valid checkpoint). Returns the path written.
    """
    if seq < 0:
        raise CheckpointError(f"checkpoint seq must be >= 0, got {seq}")
    if keep < 1:
        raise CheckpointError(f"keep must be >= 1, got {keep}")
    path = checkpoint_path(directory, seq)
    payload = {
        "schema_version": CHECKPOINT_SCHEMA,
        "seq": int(seq),
        "digest": state_digest(state),
        "state": state,
    }
    atomic_write_json(path, payload, indent=None)
    registry().counter("resilience.checkpoints").inc()
    for _old_seq, old_path in list_checkpoints(directory)[:-keep]:
        try:
            os.unlink(old_path)
        except OSError:
            pass
    return path


def list_checkpoints(directory: PathLike) -> List[Tuple[int, str]]:
    """All checkpoint files in ``directory`` as ``(seq, path)``, ascending."""
    directory = os.fspath(directory)
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Load and validate one checkpoint file.

    Raises :class:`~repro.errors.CheckpointError` on unreadable JSON,
    an unknown schema version, or a digest mismatch.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: expected a JSON object")
    version = payload.get("schema_version")
    if version != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema {version!r} "
            f"(this build reads {CHECKPOINT_SCHEMA})"
        )
    state = payload.get("state")
    seq = payload.get("seq")
    if not isinstance(state, dict) or not isinstance(seq, int):
        raise CheckpointError(f"{path}: malformed checkpoint payload")
    digest = state_digest(state)
    if digest != payload.get("digest"):
        raise CheckpointError(
            f"{path}: state digest mismatch (file damaged?)"
        )
    return Checkpoint(seq=seq, state=state, path=path)


def load_latest_checkpoint(directory: PathLike) -> Optional[Checkpoint]:
    """The newest checkpoint that validates, or ``None``.

    Invalid checkpoints (truncated, bit-flipped, wrong schema) are
    skipped with a warning — recovery falls back to an older snapshot
    plus a longer WAL replay rather than failing.
    """
    for seq, path in reversed(list_checkpoints(directory)):
        try:
            return load_checkpoint(path)
        except CheckpointError as exc:
            warnings.warn(
                f"skipping invalid checkpoint {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            registry().counter("resilience.checkpoints_skipped").inc()
    return None


def encode_float(value: float) -> str:
    """Bit-exact JSON-safe encoding for a float (``float.hex``)."""
    return float(value).hex()


def decode_float(value: str) -> float:
    """Inverse of :func:`encode_float`."""
    return float.fromhex(value)
