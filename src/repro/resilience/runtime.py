"""The durable online runtime: log-then-apply over the assignment stack.

:class:`DurableRuntime` wraps an
:class:`~repro.algorithms.online.OnlineAssignmentManager`, a
:class:`~repro.faults.failover.FailoverController` and a
:class:`~repro.resilience.degrade.DegradeController` behind one event
API (join / leave / crash / recover_server / partition / heal /
rebalance). Every operation is appended to the write-ahead log
(:mod:`repro.resilience.wal`) *before* it is applied, and a checkpoint
(:mod:`repro.resilience.checkpoint`) is written every
``checkpoint_every`` events, so

    ``DurableRuntime.recover(directory, matrix)``

always rebuilds the exact state of the interrupted run: latest valid
checkpoint, then deterministic re-execution of the WAL tail. The
recovery contract is **byte identity** — :meth:`digest` of the
recovered runtime equals the digest the uninterrupted run had at the
same WAL position. Re-execution is deterministic because every
placement decision is a function of the assignment state alone (exact
maxima from the incremental engine; no wall clocks, no RNG inside the
runtime), which is the property ``repro chaos`` verifies end to end.

Degraded-mode semantics (see :mod:`repro.resilience.degrade`): an
arrival that cannot be admitted — capacity exhausted, no usable server,
or the runtime already degraded — is queued or rejected instead of
raising, and :meth:`join` reports which (``"assigned"`` / ``"queued"``
/ ``"rejected"``).
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.algorithms.online import (
    _UNSET,
    OnlineAssignmentManager,
    OnlineConfig,
)
from repro.core.incremental import DEFAULT_TOP_K
from repro.errors import (
    CapacityError,
    CheckpointError,
    InvalidAssignmentError,
    InvalidParameterError,
    ResilienceError,
)
from repro.faults.failover import CrashRecord, FailoverController, RecoveryRecord
from repro.net.latency import LatencyMatrix
from repro.obs import SECONDS_BUCKETS, fingerprint_matrix, registry, span
from repro.resilience.checkpoint import (
    decode_float,
    encode_float,
    load_latest_checkpoint,
    state_digest,
    write_checkpoint,
)
from repro.resilience.degrade import HEALTHY, DegradeController, DegradePolicy
from repro.resilience.wal import (
    WalRecord,
    WriteAheadLog,
    read_wal,
    truncate_torn_tail,
)
from repro.types import IndexArrayLike, as_index_array

PathLike = Union[str, os.PathLike]

#: WAL file name inside a runtime directory.
WAL_NAME = "events.wal"

#: State-dict layout version (independent of the checkpoint envelope).
STATE_SCHEMA = 1


@dataclass(frozen=True)
class DurabilityConfig:
    """Typed durability configuration for :class:`DurableRuntime`.

    Parameters
    ----------
    mode:
        ``"wal"`` (default) — log-then-apply with on-disk WAL and
        checkpoints, recoverable via :meth:`DurableRuntime.recover`.
        ``"off"`` — volatile mode: identical event semantics and state
        digests, but nothing touches disk (the WAL is an in-memory
        sequence counter and checkpoints are disabled). The service
        layer uses this for ``durability=off`` sessions so both modes
        share one runtime implementation.
    checkpoint_every:
        Events between snapshot checkpoints (``None``/``0`` disables;
        recovery then replays the whole WAL). Ignored in ``"off"``
        mode.
    fsync_every:
        WAL group-commit interval (see
        :class:`~repro.resilience.wal.WriteAheadLog`); the default of 8
        keeps append overhead low while bounding crash loss to 7
        acknowledged events.
    keep_checkpoints:
        Checkpoints retained on disk (older pruned after each write).
    """

    mode: str = "wal"
    checkpoint_every: Optional[int] = 25
    fsync_every: int = 8
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ("wal", "off"):
            raise InvalidParameterError(
                f"durability mode must be 'wal' or 'off', got {self.mode!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 0:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.fsync_every < 0:
            raise InvalidParameterError(
                f"fsync_every must be >= 0, got {self.fsync_every}"
            )
        if self.keep_checkpoints < 1:
            raise InvalidParameterError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )

    @property
    def durable(self) -> bool:
        """Whether this configuration persists anything to disk."""
        return self.mode == "wal"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (stable keys, scalars only)."""
        return {
            "mode": self.mode,
            "checkpoint_every": (
                None
                if self.checkpoint_every is None
                else int(self.checkpoint_every)
            ),
            "fsync_every": int(self.fsync_every),
            "keep_checkpoints": int(self.keep_checkpoints),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DurabilityConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        checkpoint_every = data.get("checkpoint_every", 25)
        return cls(
            mode=str(data.get("mode", "wal")),
            checkpoint_every=(
                None if checkpoint_every is None else int(checkpoint_every)
            ),
            fsync_every=int(data.get("fsync_every", 8)),
            keep_checkpoints=int(data.get("keep_checkpoints", 2)),
        )

    def merge_legacy_kwargs(
        self,
        where: str,
        *,
        checkpoint_every: Any = _UNSET,
        fsync_every: Any = _UNSET,
        keep_checkpoints: Any = _UNSET,
    ) -> "DurabilityConfig":
        """Fold deprecated constructor keywords into a config.

        Emits a :class:`DeprecationWarning` and refuses silently
        conflicting double specification.
        """
        updates: Dict[str, Any] = {}
        if checkpoint_every is not _UNSET:
            updates["checkpoint_every"] = checkpoint_every
        if fsync_every is not _UNSET:
            updates["fsync_every"] = fsync_every
        if keep_checkpoints is not _UNSET:
            updates["keep_checkpoints"] = keep_checkpoints
        if not updates:
            return self
        warnings.warn(
            f"passing {sorted(updates)} directly to {where} is deprecated; "
            f"pass durability=DurabilityConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        fields = DurabilityConfig.__dataclass_fields__
        for key in updates:
            if getattr(self, key) != fields[key].default:
                raise InvalidParameterError(
                    f"{key} specified both in durability config and as a "
                    f"keyword"
                )
        return DurabilityConfig(**{**self.to_dict(), **updates})


class _NullWal:
    """In-memory stand-in for :class:`~repro.resilience.wal.WriteAheadLog`.

    Volatile mode (:class:`DurabilityConfig` ``mode="off"``) keeps the
    runtime's log-then-apply shape — every event still receives a
    contiguous sequence number so ``applied_seq`` and therefore the
    state digest match a WAL-backed twin byte for byte — without
    touching the filesystem.
    """

    __slots__ = ("_next_seq", "_closed")

    path = None

    def __init__(self, *, next_seq: int = 1) -> None:
        self._next_seq = int(next_seq)
        self._closed = False

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, kind: str, data: Optional[Dict[str, Any]] = None) -> WalRecord:
        if self._closed:
            raise ResilienceError("write-ahead log is closed")
        record = WalRecord(seq=self._next_seq, kind=kind, data=dict(data or {}))
        self._next_seq += 1
        return record

    def sync(self) -> None:
        pass

    def close(self) -> None:
        self._closed = True

    def abandon(self) -> None:
        self._closed = True


class DurableRuntime:
    """A crash-recoverable online assignment runtime.

    Parameters
    ----------
    directory:
        Home of the WAL and checkpoints; created if missing. A
        directory that already holds a non-empty WAL or checkpoints
        refuses a fresh start — use :meth:`recover`. May be ``None``
        in volatile mode (``durability.mode == "off"``).
    matrix, servers:
        Forwarded to :class:`~repro.algorithms.online.
        OnlineAssignmentManager`.
    online:
        An :class:`~repro.algorithms.online.OnlineConfig` (capacity,
        join policy); the legacy ``capacity=`` / ``join_policy=``
        keywords remain accepted but deprecated.
    durability:
        A :class:`DurabilityConfig` (mode, checkpoint cadence, fsync
        interval, retention); the legacy ``checkpoint_every=`` /
        ``fsync_every=`` / ``keep_checkpoints=`` keywords remain
        accepted but deprecated.
    readmit_moves, shed_policy:
        Forwarded to :class:`~repro.faults.failover.FailoverController`
        (default ``"shed"``: a crash degrades rather than raises).
    policy:
        Degraded-mode policy (backlog watermark, latency budget).
    """

    def __init__(
        self,
        directory: Optional[PathLike],
        matrix: LatencyMatrix,
        servers: IndexArrayLike,
        *,
        online: Optional[OnlineConfig] = None,
        durability: Optional[DurabilityConfig] = None,
        readmit_moves: int = 8,
        shed_policy: str = "shed",
        policy: Optional[DegradePolicy] = None,
        capacity: Any = _UNSET,
        join_policy: Any = _UNSET,
        checkpoint_every: Any = _UNSET,
        fsync_every: Any = _UNSET,
        keep_checkpoints: Any = _UNSET,
    ) -> None:
        online = (online or OnlineConfig()).merge_legacy_kwargs(
            "DurableRuntime", capacity=capacity, join_policy=join_policy
        )
        durability = (durability or DurabilityConfig()).merge_legacy_kwargs(
            "DurableRuntime",
            checkpoint_every=checkpoint_every,
            fsync_every=fsync_every,
            keep_checkpoints=keep_checkpoints,
        )
        if durability.durable:
            if directory is None:
                raise InvalidParameterError(
                    "durability mode 'wal' requires a directory"
                )
            directory = os.fspath(directory)
            os.makedirs(directory, exist_ok=True)
            wal_path = os.path.join(directory, WAL_NAME)
            if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
                raise ResilienceError(
                    f"{directory}: write-ahead log already exists; use "
                    f"DurableRuntime.recover() to resume it"
                )
            from repro.resilience.checkpoint import list_checkpoints

            if list_checkpoints(directory):
                raise ResilienceError(
                    f"{directory}: checkpoints already exist; use "
                    f"DurableRuntime.recover() to resume"
                )
        else:
            directory = None if directory is None else os.fspath(directory)
        policy = policy or DegradePolicy()
        config = {
            "servers": [int(s) for s in as_index_array(servers, "servers")],
            "capacity": online.capacity,
            "join_policy": online.join_policy,
            "backend": online.backend,
            "top_k": int(online.top_k),
            "readmit_moves": int(readmit_moves),
            "shed_policy": shed_policy,
            "max_backlog": policy.max_backlog,
            "d_budget": (
                None
                if policy.d_budget is None
                else encode_float(policy.d_budget)
            ),
            "matrix_fingerprint": fingerprint_matrix(matrix),
        }
        self._init_core(directory, matrix, config, durability=durability)
        if durability.durable:
            self._wal = WriteAheadLog(
                os.path.join(directory, WAL_NAME),
                fsync_every=durability.fsync_every,
            )
        else:
            self._wal = _NullWal()
        # Genesis record: recovery can rebuild from a bare WAL (no
        # checkpoint yet) knowing nothing but the directory + matrix.
        record = self._wal.append("open", config)
        self._applied_seq = record.seq

    # ------------------------------------------------------------------
    def _init_core(
        self,
        directory: Optional[str],
        matrix: LatencyMatrix,
        config: Dict[str, Any],
        *,
        durability: DurabilityConfig,
    ) -> None:
        """Build the in-memory stack from a config dict (shared by the
        fresh-start and recovery paths)."""
        expected = config["matrix_fingerprint"]
        actual = fingerprint_matrix(matrix)
        if expected != actual:
            raise CheckpointError(
                f"{directory}: matrix fingerprint mismatch (state was "
                f"recorded against {expected}, supplied matrix is {actual})"
            )
        self._directory = directory
        self._matrix = matrix
        self._config = dict(config)
        self._durability = durability
        self._checkpoint_every = (
            int(durability.checkpoint_every or 0) if durability.durable else 0
        )
        d_budget = config["d_budget"]
        degrade_policy = DegradePolicy(
            max_backlog=int(config["max_backlog"]),
            d_budget=None if d_budget is None else decode_float(d_budget),
        )
        self._manager = OnlineAssignmentManager(
            matrix,
            config["servers"],
            # .get defaults keep checkpoints/WALs written before the
            # backend/top_k knobs existed recoverable.
            OnlineConfig(
                capacity=config["capacity"],
                join_policy=config["join_policy"],
                backend=config.get("backend", "auto"),
                top_k=int(config.get("top_k", DEFAULT_TOP_K)),
            ),
        )
        self._controller = FailoverController(
            self._manager,
            readmit_moves=int(config["readmit_moves"]),
            shed_policy=config["shed_policy"],
        )
        self._degrade = DegradeController(self._manager, degrade_policy)
        self._applied_seq = 0
        self._last_checkpoint_seq = 0
        self._replaying = False
        self._closed = False
        self._wal: Optional[Union[WriteAheadLog, _NullWal]] = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: PathLike,
        matrix: LatencyMatrix,
        *,
        durability: Optional[DurabilityConfig] = None,
        checkpoint_every: Any = _UNSET,
        fsync_every: Any = _UNSET,
        keep_checkpoints: Any = _UNSET,
    ) -> "DurableRuntime":
        """Rebuild a runtime from its directory.

        Loads the newest valid checkpoint (invalid ones are skipped
        with a warning), replays the WAL records after it by
        re-execution, truncates a torn WAL tail if one is found, and
        reopens the WAL for appending. Raises
        :class:`~repro.errors.ResilienceError` when the directory holds
        neither a checkpoint nor a WAL, and
        :class:`~repro.errors.CheckpointError` when the recorded matrix
        fingerprint does not match ``matrix``.
        """
        durability = (durability or DurabilityConfig()).merge_legacy_kwargs(
            "DurableRuntime.recover",
            checkpoint_every=checkpoint_every,
            fsync_every=fsync_every,
            keep_checkpoints=keep_checkpoints,
        )
        if not durability.durable:
            raise InvalidParameterError(
                "cannot recover with durability mode 'off' — there is "
                "nothing on disk to recover from"
            )
        directory = os.fspath(directory)
        wal_path = os.path.join(directory, WAL_NAME)
        start = time.perf_counter()
        with span("resilience.recover", directory=directory):
            checkpoint = load_latest_checkpoint(directory)
            result = read_wal(wal_path)
            truncate_torn_tail(wal_path, result)
            records = result.records
            if checkpoint is None and not records:
                raise ResilienceError(
                    f"{directory}: nothing to recover (no checkpoint, "
                    f"no write-ahead log)"
                )
            if checkpoint is not None:
                config = dict(checkpoint.state["config"])
            else:
                genesis = records[0]
                if genesis.kind != "open":
                    raise ResilienceError(
                        f"{directory}: write-ahead log does not start "
                        f"with an 'open' record and no checkpoint exists"
                    )
                config = dict(genesis.data)
            runtime = cls.__new__(cls)
            runtime._init_core(directory, matrix, config, durability=durability)
            if checkpoint is not None:
                runtime._restore_state(checkpoint.state)
                runtime._last_checkpoint_seq = checkpoint.seq
            tail = [r for r in records if r.seq > runtime._applied_seq]
            runtime._replaying = True
            try:
                for record in tail:
                    runtime._apply_record(record)
            finally:
                runtime._replaying = False
            last_seq = max(
                runtime._applied_seq,
                records[-1].seq if records else 0,
            )
            runtime._wal = WriteAheadLog(
                wal_path,
                fsync_every=durability.fsync_every,
                next_seq=last_seq + 1,
            )
        metrics = registry()
        metrics.counter("resilience.recoveries").inc()
        metrics.counter("resilience.replayed_records").inc(len(tail))
        metrics.histogram("resilience.recovery_seconds", SECONDS_BUCKETS).observe(
            time.perf_counter() - start
        )
        return runtime

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a checkpointed state dict, then verify byte identity."""
        if state.get("schema") != STATE_SCHEMA:
            raise CheckpointError(
                f"unsupported state schema {state.get('schema')!r} "
                f"(this build reads {STATE_SCHEMA})"
            )
        manager_state = state["manager"]
        # Sorted order; the engine's observable values are exact maxima,
        # independent of application order, so any order reproduces the
        # recorded D bit-for-bit — the digest check below enforces it.
        for node, server in manager_state["assigned"]:
            self._manager.restore_client(int(node), int(server))
        for server in manager_state["inactive"]:
            self._manager.deactivate_server(int(server))
        for server in manager_state["unreachable"]:
            self._manager.partition_server(int(server))
        failover_state = state["failover"]
        self._controller.restore_records(
            [CrashRecord.from_dict(r) for r in failover_state["crashes"]],
            [RecoveryRecord.from_dict(r) for r in failover_state["recoveries"]],
        )
        self._degrade.restore(state["degrade"])
        self._applied_seq = int(state["applied_seq"])
        restored = self.state_dict()
        if state_digest(restored) != state_digest(state):
            raise CheckpointError(
                "restored state does not reproduce the checkpoint digest"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Optional[str]:
        return self._directory

    @property
    def durability(self) -> DurabilityConfig:
        """The runtime's resolved durability configuration."""
        return self._durability

    @property
    def online_config(self) -> OnlineConfig:
        """The wrapped manager's resolved online configuration."""
        return self._manager.config

    @property
    def manager(self) -> OnlineAssignmentManager:
        """The wrapped assignment manager."""
        return self._manager

    @property
    def controller(self) -> FailoverController:
        """The wrapped failover controller."""
        return self._controller

    @property
    def degrade(self) -> DegradeController:
        """The degraded-mode state machine."""
        return self._degrade

    @property
    def wal(self) -> Union[WriteAheadLog, _NullWal]:
        return self._wal

    @property
    def applied_seq(self) -> int:
        """WAL sequence number of the last applied event."""
        return self._applied_seq

    @property
    def health(self) -> str:
        """Current degrade state (``healthy``/``degraded``/``recovering``)."""
        return self._degrade.state

    @property
    def n_clients(self) -> int:
        return self._manager.n_clients

    def current_d(self) -> float:
        """The current maximum interaction path length."""
        return self._manager.current_d()

    # ------------------------------------------------------------------
    # State capture
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serializable state (the byte-identity basis).

        Floats are hex-encoded, collections sorted; two runtimes are
        considered identical iff their state dicts (equivalently their
        :meth:`digest`\\ s) are equal.
        """
        manager = self._manager
        return {
            "schema": STATE_SCHEMA,
            "config": dict(self._config),
            "applied_seq": self._applied_seq,
            "manager": {
                "assigned": [
                    [int(node), int(manager.server_of(node))]
                    for node in manager.clients
                ],
                "inactive": [
                    s for s in range(manager.n_servers) if not manager.is_active(s)
                ],
                "unreachable": [
                    s
                    for s in range(manager.n_servers)
                    if not manager.is_reachable(s)
                ],
                "d": encode_float(manager.current_d()),
            },
            "failover": {
                "crashes": [r.to_dict() for r in self._controller.crash_records],
                "recoveries": [
                    r.to_dict() for r in self._controller.recovery_records
                ],
            },
            "degrade": self._degrade.to_dict(),
        }

    def digest(self) -> str:
        """SHA-256 digest of :meth:`state_dict`."""
        return state_digest(self.state_dict())

    def checkpoint(self) -> str:
        """Force a snapshot checkpoint now; returns the path written.

        The WAL is synced first so a checkpoint never describes state
        more durable than the log that produced it.
        """
        self._require_open()
        self._wal.sync()
        path = write_checkpoint(
            self._directory,
            self._applied_seq,
            self.state_dict(),
            keep=self._durability.keep_checkpoints,
        )
        self._last_checkpoint_seq = self._applied_seq
        return path

    # ------------------------------------------------------------------
    # Event API (log-then-apply)
    # ------------------------------------------------------------------
    def join(self, node: int) -> str:
        """Admit a client; returns ``"assigned"``/``"queued"``/``"rejected"``."""
        self._require_open()
        node = int(node)
        if not 0 <= node < self._matrix.n_nodes:
            raise InvalidAssignmentError(f"client node {node} out of range")
        if self._manager.is_connected(node):
            raise InvalidAssignmentError(f"client {node} already connected")
        if self._degrade.in_backlog(node):
            raise InvalidAssignmentError(f"client {node} already queued")
        record = self._wal.append("join", {"node": node})
        return self._apply_join(record)

    def leave(self, node: int) -> str:
        """Remove a client; returns ``"left"``/``"dequeued"``/``"absent"``.

        Tolerant by design: a leave for a node that was queued (still
        waiting) dequeues it, and one for a node that was rejected or
        shed is a counted no-op — churn sources need not know the
        admission outcome of every join they issued.
        """
        self._require_open()
        record = self._wal.append("leave", {"node": int(node)})
        return self._apply_leave(record)

    def crash(self, server: int) -> CrashRecord:
        """Fail-stop crash of a (currently up) local server."""
        self._require_open()
        server = int(server)
        if not self._manager.is_active(server):
            raise InvalidParameterError(f"server {server} is already down")
        record = self._wal.append("crash", {"server": server})
        return self._apply_crash(record)

    def recover_server(self, server: int) -> RecoveryRecord:
        """Recover a (currently down) local server."""
        self._require_open()
        server = int(server)
        if self._manager.is_active(server):
            raise InvalidParameterError(f"server {server} is already up")
        record = self._wal.append("recover", {"server": server})
        return self._apply_recover(record)

    def partition(self, servers: Iterable[int]) -> Tuple[int, ...]:
        """Make a server subset unreachable; returns stale-served nodes."""
        self._require_open()
        subset = sorted(int(s) for s in servers)
        if not subset:
            raise InvalidParameterError("partition needs at least one server")
        for server in subset:
            if not self._manager.is_reachable(server):
                raise InvalidParameterError(
                    f"server {server} is already unreachable"
                )
        record = self._wal.append("partition", {"servers": subset})
        return self._apply_partition(record)

    def heal(self, servers: Iterable[int]) -> None:
        """Restore reachability of a partitioned server subset."""
        self._require_open()
        subset = sorted(int(s) for s in servers)
        if not subset:
            raise InvalidParameterError("heal needs at least one server")
        for server in subset:
            if self._manager.is_reachable(server):
                raise InvalidParameterError(f"server {server} is reachable")
        record = self._wal.append("heal", {"servers": subset})
        self._apply_heal(record)

    def rebalance(self, *, max_moves: int = 16) -> int:
        """Bounded Distributed-Greedy repair; returns moves made."""
        self._require_open()
        if max_moves < 0:
            raise InvalidParameterError(
                f"max_moves must be >= 0, got {max_moves}"
            )
        record = self._wal.append("rebalance", {"max_moves": int(max_moves)})
        return self._apply_rebalance(record)

    # ------------------------------------------------------------------
    # Appliers (shared verbatim by the replay path)
    # ------------------------------------------------------------------
    def _apply_record(self, record: WalRecord) -> None:
        """Re-execute one WAL record during recovery."""
        try:
            if record.kind == "open":
                self._applied_seq = record.seq
            elif record.kind == "join":
                self._apply_join(record)
            elif record.kind == "leave":
                self._apply_leave(record)
            elif record.kind == "crash":
                self._apply_crash(record)
            elif record.kind == "recover":
                self._apply_recover(record)
            elif record.kind == "partition":
                self._apply_partition(record)
            elif record.kind == "heal":
                self._apply_heal(record)
            elif record.kind == "rebalance":
                self._apply_rebalance(record)
            else:
                raise ResilienceError(
                    f"unknown WAL record kind {record.kind!r}"
                )
        except ResilienceError:
            raise
        except Exception as exc:
            raise ResilienceError(
                f"replay of WAL record seq={record.seq} "
                f"kind={record.kind!r} failed: {exc}"
            ) from exc

    def _apply_join(self, record: WalRecord) -> str:
        node = int(record.data["node"])
        if self._degrade.state != HEALTHY:
            outcome = self._degrade.admission_blocked(node, "degraded")
        else:
            try:
                self._manager.join(node)
                outcome = "assigned"
            except CapacityError:
                outcome = self._degrade.admission_blocked(
                    node, "capacity-exhausted"
                )
        self._finish_event(record)
        return outcome

    def _apply_leave(self, record: WalRecord) -> str:
        node = int(record.data["node"])
        if self._manager.is_connected(node):
            self._manager.leave(node)
            outcome = "left"
        elif self._degrade.discard_queued(node):
            outcome = "dequeued"
        else:
            registry().counter("resilience.absent_leaves").inc()
            outcome = "absent"
        self._finish_event(record)
        return outcome

    def _apply_crash(self, record: WalRecord) -> CrashRecord:
        server = int(record.data["server"])
        crash = self._controller.on_crash(server, time=float(record.seq))
        self._finish_event(record)
        return crash

    def _apply_recover(self, record: WalRecord) -> RecoveryRecord:
        server = int(record.data["server"])
        recovery = self._controller.on_recover(server, time=float(record.seq))
        self._finish_event(record)
        return recovery

    def _apply_partition(self, record: WalRecord) -> Tuple[int, ...]:
        stale: List[int] = []
        for server in record.data["servers"]:
            stale.extend(self._manager.partition_server(int(server)))
        registry().counter("resilience.partitions").inc()
        self._finish_event(record)
        return tuple(sorted(stale))

    def _apply_heal(self, record: WalRecord) -> None:
        for server in record.data["servers"]:
            self._manager.heal_server(int(server))
        registry().counter("resilience.heals").inc()
        self._finish_event(record)

    def _apply_rebalance(self, record: WalRecord) -> int:
        moves = self._manager.rebalance(max_moves=int(record.data["max_moves"]))
        self._finish_event(record)
        return moves

    def _finish_event(self, record: WalRecord) -> None:
        self._applied_seq = record.seq
        self._degrade.tick()
        if (
            not self._replaying
            and self._checkpoint_every
            and self._applied_seq - self._last_checkpoint_seq
            >= self._checkpoint_every
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed or self._wal is None or self._wal.closed:
            raise ResilienceError("runtime is closed")

    def close(self) -> None:
        """Sync the WAL and release resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()

    def abandon(self) -> None:
        """Drop the runtime without syncing — simulate a process kill.

        Used by the chaos harness; everything appended so far is
        already flushed to the OS, matching a SIGKILL between events.
        """
        self._closed = True
        if self._wal is not None:
            self._wal.abandon()

    def __enter__(self) -> "DurableRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
