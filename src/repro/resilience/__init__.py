"""Durability and recovery for the online assignment runtime.

The online layer (:class:`~repro.algorithms.online.OnlineAssignmentManager`
plus :class:`~repro.faults.failover.FailoverController`) keeps its state
in process memory, so a crash loses the session. This package makes that
state durable and the runtime survivable:

- :mod:`repro.resilience.wal` — a write-ahead event log: every
  join/leave/crash/recover/partition/rebalance is recorded as a
  checksummed JSONL record *before* it is applied, with group-commit
  fsync. A torn or corrupt tail (crash mid-write) is detected by
  checksum and truncated, never fatal.
- :mod:`repro.resilience.checkpoint` — periodic atomic snapshots of
  manager + failover + degrade state, so recovery replays a bounded WAL
  tail instead of the full history.
- :mod:`repro.resilience.runtime` — :class:`DurableRuntime`, the
  log-then-apply wrapper: ``DurableRuntime.recover(directory, matrix)``
  rebuilds **byte-identical** state (canonical digest over manager,
  failover records and degrade machine) versus an uninterrupted run.
- :mod:`repro.resilience.degrade` — degraded-mode operation: when no
  usable server remains, capacity is exhausted, or a latency budget is
  violated, the runtime serves stale assignments, queues joins up to a
  bounded backlog and rejects beyond it, with explicit
  ``HEALTHY → DEGRADED → RECOVERING → HEALTHY`` transitions exported
  through the obs registry.
- :mod:`repro.resilience.chaos` — the property harness (``repro
  chaos``): seeded kill schedules interrupt a churn workload at
  arbitrary event indices, recover from disk and diff state digests and
  the D trajectory against the fault-free baseline.

See ``docs/resilience.md`` for the on-disk formats and guarantees.
"""

from repro.resilience.chaos import (
    ChaosEvent,
    ChaosReport,
    KillPointResult,
    chaos_workload,
    run_chaos,
)
from repro.resilience.checkpoint import (
    Checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_latest_checkpoint,
    state_digest,
    write_checkpoint,
)
from repro.resilience.degrade import (
    DEGRADED,
    HEALTHY,
    RECOVERING,
    STATE_CODES,
    DegradeController,
    DegradePolicy,
)
from repro.resilience.runtime import DurabilityConfig, DurableRuntime
from repro.resilience.wal import (
    WalReadResult,
    WalRecord,
    WriteAheadLog,
    read_wal,
    truncate_torn_tail,
)

__all__ = [
    # wal
    "WalRecord",
    "WalReadResult",
    "WriteAheadLog",
    "read_wal",
    "truncate_torn_tail",
    # checkpoint
    "Checkpoint",
    "write_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "list_checkpoints",
    "state_digest",
    # degrade
    "HEALTHY",
    "DEGRADED",
    "RECOVERING",
    "STATE_CODES",
    "DegradePolicy",
    "DegradeController",
    # runtime
    "DurabilityConfig",
    "DurableRuntime",
    # chaos
    "ChaosEvent",
    "chaos_workload",
    "KillPointResult",
    "ChaosReport",
    "run_chaos",
]
