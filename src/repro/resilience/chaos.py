"""Chaos harness: kill the runtime mid-workload, recover, diff.

The property the whole resilience layer is gated on:

    for every kill point ``k`` in a seeded churn-under-faults workload,
    abandoning the runtime after event ``k`` (optionally with a torn
    WAL tail) and recovering from disk yields (1) a **byte-identical**
    state digest to the uninterrupted baseline at event ``k``, and
    (2) an **identical D/interactivity trajectory and final digest**
    when the remaining events are replayed on the recovered runtime.

:func:`chaos_workload` draws the workload: joins/leaves from a seeded
churn process interleaved with crash/recover edges from an
MTTF/MTTR :class:`~repro.faults.schedule.FaultSchedule` and
partition/heal edges from
:func:`~repro.faults.models.random_partition_schedule`. The generator
tracks its own believed-connected set, so the event list is fixed
up-front — the runtime's admission outcomes (queued, rejected) never
feed back into the workload, which is what makes baseline and replay
see the same events.

:func:`run_chaos` runs the baseline and every kill point and returns a
:class:`ChaosReport`; ``repro chaos`` is the CLI wrapper and the
``chaos-smoke`` CI job asserts ``report.ok`` at a fixed seed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.faults.models import random_partition_schedule
from repro.faults.schedule import FaultSchedule
from repro.net.latency import LatencyMatrix
from repro.obs import registry, span
from repro.resilience.degrade import DegradePolicy
from repro.resilience.runtime import WAL_NAME, DurableRuntime
from repro.types import IndexArrayLike, as_index_array
from repro.utils.rng import SeedLike, derive_seed, ensure_rng


@dataclass(frozen=True)
class ChaosEvent:
    """One workload event; exactly one target field is meaningful."""

    kind: str  # "join" | "leave" | "crash" | "recover" | "partition" | "heal"
    node: int = -1
    server: int = -1


def chaos_workload(
    matrix: LatencyMatrix,
    servers: IndexArrayLike,
    *,
    n_events: int = 120,
    join_probability: float = 0.6,
    mttf: Optional[float] = None,
    mttr: Optional[float] = None,
    partition_mtbp: Optional[float] = None,
    partition_mttr: Optional[float] = None,
    seed: SeedLike = 0,
) -> Tuple[ChaosEvent, ...]:
    """Draw a deterministic churn-under-faults event list.

    One churn event (join or leave) per integer tick; crash/recover and
    partition/heal edges fire at the tick their schedule time rounds
    into. Defaults scale the fault rates to ``n_events`` so a typical
    workload sees a handful of crashes and at least one partition
    window. ``mttf=float('inf')``-style suppression: pass huge values
    to disable a fault class.
    """
    if n_events < 1:
        raise InvalidParameterError(f"n_events must be >= 1, got {n_events}")
    if not 0.0 < join_probability < 1.0:
        raise InvalidParameterError("join_probability must be in (0, 1)")
    server_array = as_index_array(servers, "servers")
    n_servers = int(server_array.size)
    horizon = float(n_events)
    mttf = float(mttf) if mttf is not None else max(8.0, horizon / 2)
    mttr = float(mttr) if mttr is not None else max(4.0, horizon / 10)
    partition_mtbp = (
        float(partition_mtbp) if partition_mtbp is not None else horizon / 2
    )
    partition_mttr = (
        float(partition_mttr) if partition_mttr is not None else horizon / 8
    )
    base_seed = seed if isinstance(seed, int) else None
    crash_seed = derive_seed(base_seed, 1)
    partition_seed = derive_seed(base_seed, 2)
    schedule = FaultSchedule.generate(
        n_servers,
        horizon,
        mttf=mttf,
        mttr=mttr,
        seed=crash_seed if crash_seed is not None else 1,
        max_concurrent_down=max(1, n_servers - 1),
        partitions=random_partition_schedule(
            n_servers,
            horizon,
            mtbp=partition_mtbp,
            mttr=partition_mttr,
            seed=partition_seed if partition_seed is not None else 2,
        ),
    )
    fault_edges = schedule.all_events()
    rng = ensure_rng(seed)
    server_set = set(int(s) for s in server_array)
    candidates = [u for u in range(matrix.n_nodes) if u not in server_set]
    believed: Set[int] = set()
    # Mirror of the availability masks, so the generator never emits a
    # crash for a down server or a heal for a reachable one even after
    # the concurrency-capped schedule skipped edges.
    down: Set[int] = set()
    unreachable: Set[int] = set()
    events: List[ChaosEvent] = []
    edge_index = 0
    for tick in range(n_events):
        while edge_index < len(fault_edges) and fault_edges[edge_index].time <= tick:
            edge = fault_edges[edge_index]
            edge_index += 1
            if edge.kind == "crash" and edge.server not in down:
                down.add(edge.server)
                events.append(ChaosEvent("crash", server=edge.server))
            elif edge.kind == "recover" and edge.server in down:
                down.remove(edge.server)
                events.append(ChaosEvent("recover", server=edge.server))
            elif edge.kind == "partition" and edge.server not in unreachable:
                unreachable.add(edge.server)
                events.append(ChaosEvent("partition", server=edge.server))
            elif edge.kind == "heal" and edge.server in unreachable:
                unreachable.remove(edge.server)
                events.append(ChaosEvent("heal", server=edge.server))
        do_join = (not believed) or (
            len(believed) < len(candidates)
            and rng.uniform() < join_probability
        )
        if do_join:
            free = [u for u in candidates if u not in believed]
            node = int(free[rng.integers(0, len(free))])
            believed.add(node)
            events.append(ChaosEvent("join", node=node))
        else:
            pool = sorted(believed)
            node = int(pool[rng.integers(0, len(pool))])
            believed.remove(node)
            events.append(ChaosEvent("leave", node=node))
    return tuple(events)


def apply_event(runtime: DurableRuntime, event: ChaosEvent) -> None:
    """Dispatch one workload event onto a durable runtime."""
    if event.kind == "join":
        runtime.join(event.node)
    elif event.kind == "leave":
        runtime.leave(event.node)
    elif event.kind == "crash":
        runtime.crash(event.server)
    elif event.kind == "recover":
        runtime.recover_server(event.server)
    elif event.kind == "partition":
        runtime.partition([event.server])
    elif event.kind == "heal":
        runtime.heal([event.server])
    else:
        raise InvalidParameterError(f"unknown chaos event kind {event.kind!r}")


#: Bytes appended to simulate a writer killed mid-record: valid-looking
#: JSON prefix, no checksum, no terminating newline.
TORN_TAIL = b'{"crc":"00000000","data":{"node":'


@dataclass(frozen=True)
class KillPointResult:
    """Recovery verification at one kill point."""

    kill_point: int
    #: WAL records replayed on top of the checkpoint during recovery.
    replayed: int
    torn_tail: bool
    recovery_seconds: float
    #: Recovered digest == baseline digest at the kill point.
    state_match: bool
    #: D after every remaining event matches the baseline bit-for-bit.
    trajectory_match: bool
    #: Digest after replaying the full remainder matches the baseline's.
    final_match: bool

    @property
    def ok(self) -> bool:
        return self.state_match and self.trajectory_match and self.final_match


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of a full chaos run (baseline + all kill points)."""

    n_events: int
    kill_points: Tuple[int, ...]
    results: Tuple[KillPointResult, ...]
    baseline_final_digest: str
    baseline_final_d: float
    baseline_health: str

    @property
    def ok(self) -> bool:
        """Whether every kill point recovered byte-identically."""
        return all(r.ok for r in self.results)

    def render(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"chaos: {self.n_events} events, "
            f"{len(self.kill_points)} kill point(s), "
            f"baseline D={self.baseline_final_d:.4f} "
            f"({self.baseline_health}), "
            f"digest {self.baseline_final_digest[:12]}…",
            "kill  replayed  torn  state  trajectory  final  recovery",
        ]
        for r in self.results:
            lines.append(
                f"{r.kill_point:4d}  {r.replayed:8d}  "
                f"{'yes' if r.torn_tail else ' no'}  "
                f"{'  ok' if r.state_match else 'FAIL'}  "
                f"{'        ok' if r.trajectory_match else '      FAIL'}  "
                f"{'  ok' if r.final_match else 'FAIL'}  "
                f"{r.recovery_seconds * 1e3:7.1f}ms"
            )
        lines.append("verdict: " + ("OK" if self.ok else "MISMATCH"))
        return "\n".join(lines)


def run_chaos(
    matrix: LatencyMatrix,
    servers: IndexArrayLike,
    base_dir: os.PathLike,
    *,
    workload: Optional[Sequence[ChaosEvent]] = None,
    n_events: int = 120,
    kill_points: Sequence[int] = (),
    seed: SeedLike = 0,
    capacity: Optional[int] = None,
    policy: Optional[DegradePolicy] = None,
    checkpoint_every: int = 20,
    fsync_every: int = 8,
    tear_tail: bool = True,
) -> ChaosReport:
    """Run the kill/recover/diff property over a workload.

    For each kill point ``k``: replay events ``[0, k)`` into a fresh
    runtime under ``base_dir/kill-k``, abandon it without a final sync,
    optionally append a torn tail to its WAL, recover from disk,
    compare digests against the baseline at ``k``, then replay the
    remaining events and compare the D trajectory (exact float
    equality) and final digest. Empty ``kill_points`` defaults to three
    indices spread across the workload.
    """
    events = tuple(workload) if workload is not None else chaos_workload(
        matrix, servers, n_events=n_events, seed=seed
    )
    n_total = len(events)
    if not kill_points:
        kill_points = (
            max(1, n_total // 4),
            max(1, n_total // 2),
            max(1, (3 * n_total) // 4),
        )
    kill_points = tuple(sorted(set(int(k) for k in kill_points)))
    for k in kill_points:
        if not 1 <= k <= n_total:
            raise InvalidParameterError(
                f"kill point {k} outside [1, {n_total}]"
            )
    base_dir = os.fspath(base_dir)
    os.makedirs(base_dir, exist_ok=True)
    common = dict(
        capacity=capacity,
        policy=policy,
        checkpoint_every=checkpoint_every,
        fsync_every=fsync_every,
    )

    # ------------------------------------------------------------- baseline
    with span("chaos.baseline", events=n_total):
        baseline = DurableRuntime(
            os.path.join(base_dir, "baseline"), matrix, servers, **common
        )
        kill_set = set(kill_points)
        digest_at: Dict[int, str] = {}
        trajectory: List[float] = []
        for i, event in enumerate(events):
            apply_event(baseline, event)
            trajectory.append(baseline.current_d())
            if i + 1 in kill_set:
                digest_at[i + 1] = baseline.digest()
        baseline_final_digest = baseline.digest()
        baseline_final_d = baseline.current_d()
        baseline_health = baseline.health
        baseline.close()

    # ---------------------------------------------------------- kill points
    results: List[KillPointResult] = []
    for k in kill_points:
        directory = os.path.join(base_dir, f"kill-{k:05d}")
        with span("chaos.kill_point", kill_point=k):
            victim = DurableRuntime(directory, matrix, servers, **common)
            for event in events[:k]:
                apply_event(victim, event)
            checkpoint_seq = victim._last_checkpoint_seq
            victim.abandon()
            torn = False
            if tear_tail:
                with open(os.path.join(directory, WAL_NAME), "ab") as handle:
                    handle.write(TORN_TAIL)
                torn = True
            start = time.perf_counter()
            recovered = DurableRuntime.recover(
                directory,
                matrix,
                checkpoint_every=checkpoint_every,
                fsync_every=fsync_every,
            )
            recovery_seconds = time.perf_counter() - start
            replayed = recovered.applied_seq - checkpoint_seq
            state_match = recovered.digest() == digest_at[k]
            trajectory_match = True
            for i in range(k, n_total):
                apply_event(recovered, events[i])
                if recovered.current_d() != trajectory[i]:
                    trajectory_match = False
            final_match = recovered.digest() == baseline_final_digest
            recovered.close()
        result = KillPointResult(
            kill_point=k,
            replayed=max(0, replayed),
            torn_tail=torn,
            recovery_seconds=recovery_seconds,
            state_match=state_match,
            trajectory_match=trajectory_match,
            final_match=final_match,
        )
        results.append(result)
        registry().counter(
            "chaos.kill_points_ok" if result.ok else "chaos.kill_points_failed"
        ).inc()

    return ChaosReport(
        n_events=n_total,
        kill_points=kill_points,
        results=tuple(results),
        baseline_final_digest=baseline_final_digest,
        baseline_final_d=baseline_final_d,
        baseline_health=baseline_health,
    )
