"""Write-ahead event log with checksummed JSONL records.

Every operation applied to a :class:`~repro.resilience.runtime.
DurableRuntime` is appended here *before* it mutates in-memory state
(log-then-apply), so the effect of every acknowledged operation is
recoverable. One record per line::

    {"crc":"1a2b3c4d","data":{"node":17},"kind":"join","seq":5}

- ``seq`` — 1-based, contiguous; a gap means the file was damaged.
- ``crc`` — CRC-32 (hex) over the compact, key-sorted JSON of the
  record *without* the ``crc`` field, so any bit flip in kind, data or
  seq invalidates the line.
- ``data`` — operation payload (JSON scalars and lists only).

Durability is tunable: ``fsync_every=1`` fsyncs after every record
(strict, one write + flush + fsync per event), ``fsync_every=N``
group-commits every N records — appends stay in the process buffer
until the group boundary flushes and fsyncs them, so a crash (process
or OS) can lose up to N-1 acknowledged records, and a partial record
at the buffer edge is handled as a torn tail on recovery.
``fsync_every=0`` never fsyncs but still flushes per append
(benchmarking baseline). :meth:`~WriteAheadLog.sync` and
:meth:`~WriteAheadLog.close` always force the buffer down. The
group-commit default in :class:`~repro.resilience.runtime.
DurableRuntime` keeps WAL overhead under the benchmark budget (see
``benchmarks/bench_resilience.py``).

Reading tolerates exactly one damage mode for free: a torn or
checksum-invalid **tail** (a writer died mid-line). The reader stops at
the last valid record, reports the torn tail, and
:func:`truncate_torn_tail` physically truncates it so appends can
resume. Valid records found *after* an invalid one are mid-file damage
and raise :class:`~repro.errors.WalCorruptionError` — truncating there
would silently discard acknowledged writes.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import InvalidParameterError, ResilienceError, WalCorruptionError
from repro.obs import registry

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class WalRecord:
    """One durable event: sequence number, kind, and payload."""

    seq: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


#: Strings known to need no JSON escaping — the record kinds and
#: payload keys the runtime writes, pre-validated so the hot path is a
#: set lookup instead of three string scans.
_SAFE_STRINGS = frozenset(
    {
        "open", "join", "leave", "crash", "recover", "partition", "heal",
        "rebalance", "node", "server", "servers", "max_moves",
    }
)


def _simple_key(key: object) -> bool:
    return key in _SAFE_STRINGS or (
        isinstance(key, str) and key.replace("_", "").isalnum() and key.isascii()
    )


def _body_of(seq: int, kind: str, data: Dict[str, Any]) -> str:
    # Fast path for the payloads the runtime actually writes (flat
    # dicts of ints / int lists): hand-rolled compact JSON, identical
    # to the json.dumps output below, at a fraction of the cost. Any
    # payload outside that shape falls back to the generic encoder.
    parts: Optional[List[str]] = []
    for key in sorted(data):
        value = data[key]
        if not _simple_key(key):
            parts = None
            break
        if type(value) is int:
            parts.append(f'"{key}":{value}')
        elif type(value) is list and all(type(v) is int for v in value):
            parts.append(f'"{key}":[{",".join(map(str, value))}]')
        else:
            parts = None
            break
    if parts is not None and _simple_key(kind):
        return f'{{"data":{{{",".join(parts)}}},"kind":"{kind}","seq":{seq}}}'
    return json.dumps(
        {"data": data, "kind": kind, "seq": seq},
        sort_keys=True,
        separators=(",", ":"),
    )


def _crc_of(seq: int, kind: str, data: Dict[str, Any]) -> str:
    body = _body_of(seq, kind, data)
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_record(record: WalRecord) -> str:
    """The on-disk line for a record (no trailing newline).

    The record body is serialized exactly once: the checksum is taken
    over the compact key-sorted body, and the full line is spliced from
    it (``crc`` sorts first), so the append hot path pays one
    ``json.dumps`` instead of two.
    """
    body = _body_of(record.seq, record.kind, record.data)
    crc = format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")
    return f'{{"crc":"{crc}",{body[1:]}'


def _decode_line(line: bytes) -> Optional[WalRecord]:
    """Parse one line into a record; ``None`` when invalid in any way."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    try:
        seq = obj["seq"]
        kind = obj["kind"]
        data = obj["data"]
        crc = obj["crc"]
    except (KeyError, TypeError):
        return None
    if not isinstance(seq, int) or not isinstance(kind, str):
        return None
    if not isinstance(data, dict) or not isinstance(crc, str):
        return None
    if crc != _crc_of(seq, kind, data):
        return None
    return WalRecord(seq=seq, kind=kind, data=data)


class WriteAheadLog:
    """Appender for a WAL file.

    Parameters
    ----------
    path:
        The log file; created if absent, appended to otherwise. Resuming
        an existing log requires ``next_seq`` (use
        :meth:`WriteAheadLog.resume` which derives it from the file).
    fsync_every:
        Group-commit interval: fsync after every N appends (``1`` =
        strict, ``0`` = flush-only, never fsync).
    next_seq:
        Sequence number the next appended record receives.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync_every: int = 1,
        next_seq: int = 1,
    ) -> None:
        if fsync_every < 0:
            raise InvalidParameterError(
                f"fsync_every must be >= 0, got {fsync_every}"
            )
        if next_seq < 1:
            raise InvalidParameterError(f"next_seq must be >= 1, got {next_seq}")
        self.path = os.fspath(path)
        self.fsync_every = int(fsync_every)
        self._next_seq = int(next_seq)
        self._handle = open(self.path, "ab")
        self._unsynced = 0
        # Registry pushes are batched with the group commit: two dict
        # lookups per append are measurable on the hot path (see
        # benchmarks/bench_resilience.py), and the counters only need
        # to be correct at sync points.
        self._uncounted = 0

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls, path: PathLike, *, fsync_every: int = 1
    ) -> Tuple["WriteAheadLog", Tuple[WalRecord, ...]]:
        """Reopen an existing log for appending.

        Reads the valid prefix, truncates any torn tail, and returns
        the log (positioned after the last valid record) together with
        the records to replay.
        """
        result = read_wal(path)
        truncate_torn_tail(path, result)
        last = result.records[-1].seq if result.records else 0
        log = cls(path, fsync_every=fsync_every, next_seq=last + 1)
        return log, result.records

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next append will use."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 = none)."""
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, kind: str, data: Optional[Dict[str, Any]] = None) -> WalRecord:
        """Durably record one event; returns the stamped record.

        Under group commit the line stays in the process buffer until
        the group boundary flushes and fsyncs the whole batch — the
        acknowledged-loss window is ``fsync_every - 1`` records for
        process and OS crashes alike. ``fsync_every<=1`` flushes every
        append (and fsyncs it when ``fsync_every=1``).
        """
        if self._handle is None:
            raise ResilienceError("write-ahead log is closed")
        record = WalRecord(seq=self._next_seq, kind=kind, data=dict(data or {}))
        self._handle.write(encode_record(record).encode("utf-8") + b"\n")
        self._next_seq += 1
        self._unsynced += 1
        self._uncounted += 1
        if self.fsync_every:
            if self._unsynced >= self.fsync_every:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._unsynced = 0
                metrics = registry()
                metrics.counter("resilience.wal.fsyncs").inc()
                metrics.counter("resilience.wal.records").inc(self._uncounted)
                self._uncounted = 0
        else:
            self._handle.flush()
        return record

    def sync(self) -> None:
        """Force outstanding records to stable storage."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        metrics = registry()
        if self._unsynced:
            metrics.counter("resilience.wal.fsyncs").inc()
        if self._uncounted:
            metrics.counter("resilience.wal.records").inc(self._uncounted)
        self._unsynced = 0
        self._uncounted = 0

    def close(self) -> None:
        """Sync and release the file handle (idempotent)."""
        if self._handle is None:
            return
        self.sync()
        handle, self._handle = self._handle, None
        handle.close()

    def abandon(self) -> None:
        """Release the handle *without* a final fsync (crash simulation).

        Closing the handle flushes the buffered tail to the OS but
        skips the fsync, so this models a process killed between
        operations whose pages the OS kept — exactly what the chaos
        harness simulates (it adds torn tails separately).
        """
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalReadResult:
    """Outcome of scanning a WAL file.

    ``valid_bytes`` is the file offset just past the last valid record;
    ``torn`` reports whether invalid trailing bytes were found there
    (``tail_error`` describes them). Mid-file damage never produces a
    result — it raises :class:`~repro.errors.WalCorruptionError`.
    """

    records: Tuple[WalRecord, ...]
    valid_bytes: int
    torn: bool = False
    tail_error: Optional[str] = None


def read_wal(path: PathLike) -> WalReadResult:
    """Scan a WAL file into its valid record prefix.

    Missing file = empty log. Stops at the first invalid line (bad
    JSON, bad checksum, bad sequence number, or no terminating
    newline); if any *later* line still decodes as a valid record the
    file is damaged mid-stream and :class:`~repro.errors.
    WalCorruptionError` is raised, otherwise the invalid bytes are a
    torn tail, reported (with a warning) for truncation.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return WalReadResult(records=(), valid_bytes=0)
    records: List[WalRecord] = []
    offset = 0
    tail_error: Optional[str] = None
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            tail_error = "torn final record (no terminating newline)"
            break
        line = raw[offset:newline]
        record = None if not line.strip() else _decode_line(line)
        if record is None:
            tail_error = f"invalid record at byte {offset}"
            break
        expected = records[-1].seq + 1 if records else record.seq
        if record.seq != expected:
            tail_error = (
                f"sequence gap at byte {offset}: "
                f"expected seq {expected}, found {record.seq}"
            )
            break
        records.append(record)
        offset = newline + 1
    if tail_error is not None:
        # Distinguish a torn tail (truncatable) from mid-file damage:
        # any later line that still validates means acknowledged records
        # live beyond the damage, and truncation would discard them.
        for line in raw[offset:].split(b"\n"):
            if line.strip() and _decode_line(line) is not None:
                raise WalCorruptionError(
                    f"{path}: {tail_error}, but valid records follow it "
                    f"(mid-file damage; refusing to truncate)"
                )
        warnings.warn(
            f"{path}: {tail_error}; recovering the "
            f"{len(records)}-record valid prefix",
            RuntimeWarning,
            stacklevel=2,
        )
        registry().counter("resilience.wal.torn_tails").inc()
        return WalReadResult(
            records=tuple(records),
            valid_bytes=offset,
            torn=True,
            tail_error=tail_error,
        )
    return WalReadResult(records=tuple(records), valid_bytes=offset)


def truncate_torn_tail(path: PathLike, result: WalReadResult) -> bool:
    """Physically drop a torn tail found by :func:`read_wal`.

    Returns whether anything was truncated. After this, appending
    resumes cleanly at ``result.valid_bytes``.
    """
    if not result.torn:
        return False
    path = os.fspath(path)
    dropped = max(0, os.path.getsize(path) - result.valid_bytes)
    with open(path, "rb+") as handle:
        handle.truncate(result.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    registry().counter("resilience.wal.truncated_bytes").inc(dropped)
    return True
