"""Degraded-mode operation: serve stale, queue joins, reject beyond.

When the online runtime cannot honor its normal contract — no usable
server remains (total outage or partition), capacity is exhausted, or a
configured latency budget is violated — it does not raise out of the
event loop. It *degrades*, by policy:

- **serve with a stale assignment** — connected clients stay bound to
  their (possibly partitioned) servers; nothing is disconnected by the
  degrade machine itself;
- **queue joins with a bounded backlog** — arrivals that cannot be
  admitted wait FIFO, up to :attr:`DegradePolicy.max_backlog`;
- **reject beyond the watermark** — arrivals past the backlog bound
  are refused outright (recorded, never silently dropped).

The state machine is ``HEALTHY → DEGRADED → RECOVERING → HEALTHY``:

- ``HEALTHY`` — admissions run normally; a violation (or a blocked
  admission) moves to ``DEGRADED``.
- ``DEGRADED`` — arrivals enqueue behind the backlog; once no
  structural violation remains, the machine moves to ``RECOVERING``.
- ``RECOVERING`` — each tick drains the backlog FIFO through normal
  admission; when the backlog is empty the machine returns to
  ``HEALTHY``; a fresh violation drops back to ``DEGRADED``.

At most one transition happens per tick, so the machine cannot flap
within a single event. Transitions, the current state, and the backlog
depth are exported through the obs registry
(``resilience.state``, ``resilience.transitions.*``,
``resilience.backlog``), and the full machine state is part of the
checkpoint/digest contract of
:mod:`repro.resilience.runtime` — recovery restores the exact backlog
and counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.online import OnlineAssignmentManager
from repro.errors import CapacityError, InvalidParameterError, ResilienceError
from repro.obs import registry

HEALTHY = "healthy"
DEGRADED = "degraded"
RECOVERING = "recovering"

#: Gauge encoding for ``resilience.state``.
STATE_CODES = {HEALTHY: 0, DEGRADED: 1, RECOVERING: 2}


@dataclass(frozen=True)
class DegradePolicy:
    """Configuration of degraded-mode behavior.

    Parameters
    ----------
    max_backlog:
        Joins queued while degraded before further arrivals are
        rejected (the watermark). ``0`` rejects immediately.
    d_budget:
        Optional latency budget: when the current D exceeds it, the
        runtime degrades until repair (e.g. a recovery rebalance)
        brings D back within budget.
    """

    max_backlog: int = 64
    d_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_backlog < 0:
            raise InvalidParameterError(
                f"max_backlog must be >= 0, got {self.max_backlog}"
            )
        if self.d_budget is not None and self.d_budget <= 0:
            raise InvalidParameterError(
                f"d_budget must be positive, got {self.d_budget}"
            )


class DegradeController:
    """The degraded-mode state machine over one assignment manager."""

    def __init__(
        self,
        manager: OnlineAssignmentManager,
        policy: Optional[DegradePolicy] = None,
    ) -> None:
        self._manager = manager
        self._policy = policy or DegradePolicy()
        self._state = HEALTHY
        self._backlog: List[int] = []
        self._n_queued = 0
        self._n_rejected = 0
        self._n_drained = 0
        #: (from_state, to_state, reason) in occurrence order.
        self._transitions: List[Tuple[str, str, str]] = []
        registry().gauge("resilience.state").set(STATE_CODES[HEALTHY])

    # ------------------------------------------------------------------
    @property
    def policy(self) -> DegradePolicy:
        return self._policy

    @property
    def state(self) -> str:
        """Current machine state (one of the module constants)."""
        return self._state

    @property
    def backlog(self) -> Tuple[int, ...]:
        """Queued join nodes, FIFO order."""
        return tuple(self._backlog)

    @property
    def n_queued(self) -> int:
        """Total joins ever queued."""
        return self._n_queued

    @property
    def n_rejected(self) -> int:
        """Total joins refused past the watermark."""
        return self._n_rejected

    @property
    def n_drained(self) -> int:
        """Total queued joins later admitted."""
        return self._n_drained

    @property
    def transitions(self) -> Tuple[Tuple[str, str, str], ...]:
        """Every state transition as ``(from, to, reason)``."""
        return tuple(self._transitions)

    def in_backlog(self, node: int) -> bool:
        """Whether ``node`` is waiting in the join backlog."""
        return node in self._backlog

    # ------------------------------------------------------------------
    def violation(self) -> Optional[str]:
        """The structural violation currently in force, if any.

        Capacity exhaustion is *not* structural — it only matters when
        an admission actually hits it (see :meth:`admission_blocked`),
        and it clears through leaves rather than repairs.
        """
        if self._manager.n_usable_servers == 0:
            return "no-usable-server"
        budget = self._policy.d_budget
        if budget is not None and self._manager.current_d() > budget:
            return "latency-budget"
        return None

    def admission_blocked(self, node: int, reason: str) -> str:
        """Handle a join that could not be admitted normally.

        Queues it (FIFO) up to the watermark, rejects beyond, and — if
        the machine was still ``HEALTHY`` — enters ``DEGRADED``.
        Returns ``"queued"`` or ``"rejected"``.
        """
        if self._state == HEALTHY:
            self._transition(DEGRADED, reason)
        if len(self._backlog) < self._policy.max_backlog:
            self._backlog.append(int(node))
            self._n_queued += 1
            metrics = registry()
            metrics.counter("resilience.joins_queued").inc()
            metrics.gauge("resilience.backlog").set(len(self._backlog))
            return "queued"
        self._n_rejected += 1
        registry().counter("resilience.joins_rejected").inc()
        return "rejected"

    def discard_queued(self, node: int) -> bool:
        """Remove a node from the backlog (it left before admission)."""
        try:
            self._backlog.remove(int(node))
        except ValueError:
            return False
        registry().gauge("resilience.backlog").set(len(self._backlog))
        return True

    def tick(self) -> None:
        """Advance the machine after one applied event.

        Performs at most one transition; ``RECOVERING`` additionally
        drains the backlog through normal admission.
        """
        if self._state == HEALTHY:
            found = self.violation()
            if found is not None:
                self._transition(DEGRADED, found)
        elif self._state == DEGRADED:
            if self.violation() is None:
                self._transition(RECOVERING, "violation-cleared")
        elif self._state == RECOVERING:
            found = self.violation()
            if found is not None:
                self._transition(DEGRADED, found)
                return
            self._drain()
            if not self._backlog:
                self._transition(HEALTHY, "backlog-drained")

    def _drain(self) -> None:
        """Admit queued joins FIFO until empty or capacity blocks.

        A capacity block leaves the head queued; the next tick retries
        (capacity clears through leaves, which are events, which tick).
        """
        while self._backlog:
            node = self._backlog[0]
            try:
                self._manager.join(node)
            except CapacityError:
                break
            self._backlog.pop(0)
            self._n_drained += 1
            registry().counter("resilience.backlog_drained").inc()
        registry().gauge("resilience.backlog").set(len(self._backlog))

    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self._state
        self._state = to_state
        self._transitions.append((from_state, to_state, reason))
        metrics = registry()
        metrics.counter(
            f"resilience.transitions.{from_state}_to_{to_state}"
        ).inc()
        metrics.gauge("resilience.state").set(STATE_CODES[to_state])

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable machine state (checkpoint payload)."""
        return {
            "state": self._state,
            "backlog": [int(n) for n in self._backlog],
            "n_queued": self._n_queued,
            "n_rejected": self._n_rejected,
            "n_drained": self._n_drained,
            "transitions": [list(t) for t in self._transitions],
        }

    def restore(self, data: Dict[str, Any]) -> None:
        """Adopt a checkpointed machine state (fresh controllers only)."""
        if self._state != HEALTHY or self._backlog or self._transitions:
            raise ResilienceError(
                "cannot restore degrade state onto a controller with history"
            )
        state = data["state"]
        if state not in STATE_CODES:
            raise ResilienceError(f"unknown degrade state {state!r}")
        self._state = state
        self._backlog = [int(n) for n in data["backlog"]]
        self._n_queued = int(data["n_queued"])
        self._n_rejected = int(data["n_rejected"])
        self._n_drained = int(data["n_drained"])
        self._transitions = [
            (str(f), str(t), str(r)) for f, t, r in data["transitions"]
        ]
        metrics = registry()
        metrics.gauge("resilience.state").set(STATE_CODES[self._state])
        metrics.gauge("resilience.backlog").set(len(self._backlog))
