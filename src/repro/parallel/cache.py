"""Keyed cache of problem instances and their lower bounds.

Sweeps rebuild the same :class:`~repro.core.problem.ClientAssignmentProblem`
far more often than they need to: Fig. 10 re-places the same servers for
every capacity on its x-axis, the claims checklist re-generates figure
panels that share placements, and every consumer re-derives the
super-optimal lower bound even though it depends only on the
uncapacitated instance. This cache builds each unique instance once per
process and hoists the lower bound to the placement level (shared
across all capacities of that placement).

Keys are ``(matrix identity, matrix dtype, placement strategy,
n_servers, seed, capacity, kernel backend)``; the lower bound is cached
one level up, without the capacity component. Identity of the matrix is
its object id — entries hold a reference to the matrix, so ids cannot
be recycled while an entry lives. The dtype and backend components
close a former aliasing hole: a float32/numba trial must never be
served a problem or lower bound built for a float64/numpy twin of the
same matrix object id. The cache is LRU-bounded and exposes hit/miss
counters that :class:`~repro.parallel.pool.TrialPool` aggregates across
worker processes for reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.net.latency import LatencyMatrix
from repro.obs.metrics import registry
from repro.placement import kcenter_a, kcenter_b, random_placement

#: Canonical placement-strategy registry used by the experiment layer.
#: (:data:`repro.experiments.runner.PLACEMENTS` aliases this.)
PLACEMENT_STRATEGIES: Dict[str, Callable] = {
    "random": random_placement,
    "k-center-a": kcenter_a,
    "k-center-b": kcenter_b,
}


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of an :class:`InstanceCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


@dataclass(frozen=True)
class CachedInstance:
    """A built problem instance plus its placement-level lower bound."""

    servers: np.ndarray
    problem: ClientAssignmentProblem
    #: Super-optimal interaction lower bound of the *uncapacitated*
    #: instance (the bound ignores capacities; see paper §III).
    lower_bound: float


class InstanceCache:
    """LRU cache of :class:`CachedInstance` objects.

    One cache per process is the intended deployment (see
    :func:`instance_cache`): trials executing in the same worker share
    placements, problems and lower bounds with zero coordination.
    Caching is a pure optimization — every cached value is a
    deterministic function of its key, so hit patterns can never change
    results.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, CachedInstance]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Mirrored into the metrics registry so worker-side counters
        # flow back to the parent through the pool's snapshot deltas.
        metrics = registry()
        self._m_hits = metrics.counter("parallel.cache.hits")
        self._m_misses = metrics.counter("parallel.cache.misses")
        self._m_evictions = metrics.counter("parallel.cache.evictions")

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        return CacheStats(self._hits, self._misses, self._evictions)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def instance(
        self,
        matrix: LatencyMatrix,
        placement: str,
        n_servers: int,
        seed: Optional[int],
        *,
        capacity: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> CachedInstance:
        """The (cached) instance for one placement coordinate.

        Builds the server set with the named placement strategy, wraps
        it into a problem (optionally capacitated) and computes the
        uncapacitated lower bound — each exactly once per unique key.
        ``backend`` is the kernel backend the trial will run with; it
        participates in the key (a numba trial never shares an entry
        with a numpy one) without changing what is built.
        """
        if placement not in PLACEMENT_STRATEGIES:
            raise KeyError(
                f"unknown placement {placement!r}; available: "
                f"{tuple(PLACEMENT_STRATEGIES)}"
            )
        dtype = str(matrix.dtype)
        key = (id(matrix), dtype, placement, n_servers, seed, capacity, backend)
        hit = self._entries.get(key)
        if hit is not None:
            self._hits += 1
            self._m_hits.inc()
            self._entries.move_to_end(key)
            return hit
        base_key = (id(matrix), dtype, placement, n_servers, seed, None, backend)
        base = self._entries.get(base_key)
        if base is not None and capacity is not None:
            # Same placement, new capacity: reuse servers + lower bound.
            # Counted as a hit — the expensive work (placement
            # construction, lower bound) was served from cache; only the
            # cheap capacity wrapper is fresh.
            self._hits += 1
            self._m_hits.inc()
            self._entries.move_to_end(base_key)
            entry = CachedInstance(
                servers=base.servers,
                problem=base.problem.with_capacity(capacity),
                lower_bound=base.lower_bound,
            )
        else:
            self._misses += 1
            self._m_misses.inc()
            servers = PLACEMENT_STRATEGIES[placement](
                matrix, n_servers, seed=seed
            )
            problem = ClientAssignmentProblem(matrix, servers)
            lower_bound = float(interaction_lower_bound(problem))
            if capacity is not None:
                if base is None:
                    # Park the uncapacitated base too: the next capacity
                    # on this placement's sweep reuses it.
                    self._store(
                        base_key,
                        CachedInstance(servers, problem, lower_bound),
                    )
                problem = problem.with_capacity(capacity)
            entry = CachedInstance(servers, problem, lower_bound)
        self._store(key, entry)
        return entry

    def _store(self, key: tuple, entry: CachedInstance) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._m_evictions.inc()


class LowerBoundCache:
    """LRU cache of §V interaction lower bounds, keyed by content.

    Unlike :class:`InstanceCache` (keyed by placement *coordinates*),
    this cache keys on what the bound mathematically depends on: the
    latency data, the server set, the client set and the blocking
    parameter. The scenario harness hits it hard — a competitive-ratio
    replay recomputes LB at every checkpoint over the revealed client
    set, and comparing P policies on the same scenario repeats each of
    those P times.

    Dense matrices are fingerprinted by content
    (:func:`repro.obs.manifest.fingerprint_matrix`, memoized per matrix
    object since the bytes never change); synthetic providers fall back
    to object identity, with the provider referenced by the entry so its
    id cannot be recycled while the entry lives.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()
        # key -> matrix/provider reference (pins ids; see class docstring).
        self._pins: Dict[tuple, object] = {}
        self._fingerprints: Dict[int, str] = {}
        self._fp_pins: Dict[int, object] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        return CacheStats(self._hits, self._misses, self._evictions)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._entries.clear()
        self._pins.clear()
        self._fingerprints.clear()
        self._fp_pins.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def _matrix_token(self, matrix: object) -> str:
        token = self._fingerprints.get(id(matrix))
        if token is not None:
            return token
        if getattr(matrix, "values", None) is not None:
            from repro.obs.manifest import fingerprint_matrix

            token = f"fp:{fingerprint_matrix(matrix)}"
        else:
            content_token = getattr(matrix, "content_token", None)
            if content_token is None:
                # Opaque provider: identity, pinned below via the entry.
                return f"id:{id(matrix)}"
            token = f"ct:{content_token()}"
        self._fingerprints[id(matrix)] = token
        self._fp_pins[id(matrix)] = matrix
        return token

    def lower_bound(
        self, problem: ClientAssignmentProblem, *, block_size: int = 256
    ) -> float:
        """The (cached) interaction lower bound of ``problem``.

        A pure optimization: the bound is a deterministic function of
        the key, so hit patterns can never change results. Capacities do
        not participate — the §V bound ignores them.
        """
        matrix = problem.matrix
        key = (
            self._matrix_token(matrix),
            problem.servers.tobytes(),
            problem.clients.tobytes(),
            block_size,
        )
        hit = self._entries.get(key)
        if hit is not None:
            self._hits += 1
            # Resolved per call so increments land in whatever registry
            # is active (the process-global cache outlives use_registry
            # scopes); checkpoint-frequency traffic, not a hot loop.
            registry().counter("parallel.lb_cache.hits").inc()
            self._entries.move_to_end(key)
            return hit
        self._misses += 1
        registry().counter("parallel.lb_cache.misses").inc()
        value = float(
            interaction_lower_bound(
                problem.uncapacitated(), block_size=block_size
            )
        )
        self._entries[key] = value
        self._pins[key] = matrix
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            old_key, _ = self._entries.popitem(last=False)
            self._pins.pop(old_key, None)
            self._evictions += 1
            registry().counter("parallel.lb_cache.evictions").inc()
        return value


#: Process-global cache shared by all trial functions in this process.
_PROCESS_CACHE: Optional[InstanceCache] = None


def instance_cache() -> InstanceCache:
    """The process-global :class:`InstanceCache` (created on first use)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = InstanceCache()
    return _PROCESS_CACHE


def cache_stats_snapshot() -> CacheStats:
    """Counters of the process-global cache (zeros when untouched)."""
    if _PROCESS_CACHE is None:
        return CacheStats()
    return _PROCESS_CACHE.stats


#: Process-global lower-bound cache (lazily created twin of the above).
_PROCESS_LB_CACHE: Optional[LowerBoundCache] = None


def lower_bound_cache() -> LowerBoundCache:
    """The process-global :class:`LowerBoundCache` (created on first use)."""
    global _PROCESS_LB_CACHE
    if _PROCESS_LB_CACHE is None:
        _PROCESS_LB_CACHE = LowerBoundCache()
    return _PROCESS_LB_CACHE


def cached_lower_bound(
    problem: ClientAssignmentProblem, *, block_size: int = 256
) -> float:
    """Process-cached :func:`~repro.core.interaction_lower_bound`."""
    return lower_bound_cache().lower_bound(problem, block_size=block_size)


def lb_cache_stats_snapshot() -> CacheStats:
    """Counters of the process-global LB cache (zeros when untouched)."""
    if _PROCESS_LB_CACHE is None:
        return CacheStats()
    return _PROCESS_LB_CACHE.stats
