"""Zero-copy array sharing for worker processes.

A profile-scale latency matrix is ``n_nodes x n_nodes`` of ``float64``
— ~25 MB at the paper's 1796 nodes (half that as ``float32``; both
dtypes publish unchanged). Pickling it into every trial task
would dominate the cost of small trials and defeat the point of a
process pool. Instead the parent publishes the array **once** into
POSIX shared memory (:mod:`multiprocessing.shared_memory`) and ships
only a tiny handle; workers attach a read-only NumPy view — no copy,
no re-validation.

The generic layer is :func:`publish_array` / :func:`attach_array`,
which share any contiguous ndarray (the scale pipeline uses it for
reduced coreset matrices and coordinate tables). The historical
matrix-shaped API — :func:`publish_matrix` / :func:`attach_matrix`
returning :class:`~repro.net.latency.LatencyMatrix` views — is a thin
veneer over it and keeps its exact semantics.

Lifecycle contract
------------------

- :func:`publish_array` / :func:`publish_matrix` return a context
  manager owning the segment. The **publisher** is responsible for
  ``unlink()``; leaving the ``with`` block (or calling ``close()``)
  always unlinks, even on ``KeyboardInterrupt``.
- Workers attach via :func:`attach_array` / :func:`attach_matrix` and
  cache the attachment per process (keyed by segment name), so a
  worker maps each segment once no matter how many trials it runs.
- When shared memory is unavailable (exotic platforms, permission-
  restricted ``/dev/shm``), publishing transparently degrades to an
  **inline** handle that carries the array bytes and is pickled per
  task chunk — slower, never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.net.latency import LatencyMatrix

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


@dataclass(frozen=True)
class SharedArrayHandle:
    """A picklable descriptor of a published ndarray.

    Either ``shm_name`` is set (shared-memory mode) or ``inline`` holds
    the raw array bytes (fallback mode). ``shape`` is always present so
    attachment never trusts the segment size alone, and ``dtype`` is a
    numpy dtype *name* string (``"float64"``, ``"int64"``, ...) so
    handles stay cheaply picklable.
    """

    shape: Tuple[int, ...]
    shm_name: Optional[str] = None
    inline: Optional[bytes] = field(default=None, repr=False)
    dtype: str = "float64"

    @property
    def is_shared(self) -> bool:
        """Whether this handle points at a shared-memory segment."""
        return self.shm_name is not None

    @property
    def np_dtype(self) -> np.dtype:
        """The handle's dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    @property
    def nbytes(self) -> int:
        """Size of the published array in bytes."""
        return int(np.prod(self.shape)) * self.np_dtype.itemsize


@dataclass(frozen=True)
class SharedMatrixHandle(SharedArrayHandle):
    """A :class:`SharedArrayHandle` specialized to 2-D latency matrices.

    Kept as its own type so matrix consumers
    (:func:`attach_matrix`) stay self-documenting; the layout and
    pickle format are exactly the base class's.
    """

    shape: Tuple[int, int] = (0, 0)


class PublishedArray:
    """An ndarray published for worker consumption.

    Context manager; owns the shared-memory segment (when one exists)
    and guarantees ``close()``/``unlink()`` on exit. The original array
    is kept so in-process (serial backend) consumers skip attachment
    entirely.
    """

    def __init__(
        self,
        array: np.ndarray,
        handle: SharedArrayHandle,
        segment: Optional["_shared_memory.SharedMemory"],
    ) -> None:
        self.array = array
        self.handle = handle
        self._segment = segment
        self._closed = False

    def __enter__(self) -> "PublishedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Release and unlink the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._segment is not None:
            try:
                self._segment.close()
            finally:
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # already unlinked elsewhere
                    pass

    def __del__(self) -> None:  # last-resort cleanup; close() is the API
        try:
            self.close()
        except Exception:
            pass


class PublishedMatrix(PublishedArray):
    """A latency matrix published for worker consumption.

    Adds the original :class:`~repro.net.latency.LatencyMatrix` on top
    of :class:`PublishedArray` so serial consumers can use it directly.
    """

    def __init__(
        self,
        matrix: LatencyMatrix,
        handle: SharedMatrixHandle,
        segment: Optional["_shared_memory.SharedMemory"],
    ) -> None:
        super().__init__(matrix.values, handle, segment)
        self.matrix = matrix


def shared_memory_available() -> bool:
    """Whether POSIX shared memory can actually be used here."""
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError):
        return False
    probe.close()
    probe.unlink()
    return True


def _publish(
    values: np.ndarray, *, prefer_shared: bool
) -> Tuple[SharedArrayHandle, Optional["_shared_memory.SharedMemory"]]:
    """Stage ``values`` into a fresh segment (or an inline handle)."""
    shape = tuple(int(s) for s in values.shape)
    dtype_name = values.dtype.name
    if prefer_shared and _shared_memory is not None:
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=max(1, values.nbytes)
            )
        except (OSError, ValueError):
            segment = None
        if segment is not None:
            staged = np.ndarray(shape, dtype=values.dtype, buffer=segment.buf)
            staged[:] = values
            return (
                SharedArrayHandle(
                    shape=shape, shm_name=segment.name, dtype=dtype_name
                ),
                segment,
            )
    return (
        SharedArrayHandle(
            shape=shape,
            inline=np.ascontiguousarray(values).tobytes(),
            dtype=dtype_name,
        ),
        None,
    )


def publish_array(
    array: np.ndarray, *, prefer_shared: bool = True
) -> PublishedArray:
    """Publish an ndarray for zero-copy consumption by workers.

    Falls back to an inline (pickled-bytes) handle when shared memory
    is unavailable or ``prefer_shared=False``.
    """
    values = np.asarray(array)
    handle, segment = _publish(values, prefer_shared=prefer_shared)
    return PublishedArray(values, handle, segment)


def publish_matrix(
    matrix: LatencyMatrix, *, prefer_shared: bool = True
) -> PublishedMatrix:
    """Publish a latency matrix for zero-copy consumption by workers.

    Falls back to an inline (pickled-bytes) handle when shared memory
    is unavailable or ``prefer_shared=False``.
    """
    values = matrix.values
    base, segment = _publish(values, prefer_shared=prefer_shared)
    handle = SharedMatrixHandle(
        shape=(int(values.shape[0]), int(values.shape[1])),
        shm_name=base.shm_name,
        inline=base.inline,
        dtype=base.dtype,
    )
    return PublishedMatrix(matrix, handle, segment)


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------
#: Per-process attachment cache: key -> (lifetime anchor, attached
#: object). Anchoring the segment object keeps the mapping alive;
#: entries live until the worker process exits. Arrays and matrices
#: use disjoint key namespaces so one segment can serve both views.
_ATTACHMENTS: Dict[str, Tuple[object, object]] = {}


def _attach_segment(name: str) -> "_shared_memory.SharedMemory":
    """Attach to an existing segment without resource-tracker tracking.

    Python's resource tracker registers *attached* segments too
    (bpo-39959); with several workers attaching and detaching the same
    publisher-owned segment, the tracker would race itself into
    KeyError spam and spurious unlink attempts. Python 3.13+ exposes
    ``track=False`` for exactly this; older interpreters get a scoped
    no-op of the register hook during attachment (the standard
    workaround — registration happens synchronously inside
    ``SharedMemory.__init__``).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register_skipping_shm(target: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - not hit here
            original(target, rtype)

    resource_tracker.register = _register_skipping_shm
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach_values(handle: SharedArrayHandle, namespace: str) -> Tuple[str, np.ndarray, object]:
    """Attach a handle's bytes, returning ``(cache key, view, anchor)``."""
    if handle.shm_name is None:
        if handle.inline is None:
            raise ValueError("handle carries neither a segment nor inline data")
        key = (
            f"{namespace}-inline-{id(handle.inline)}"
            f"-{handle.shape}-{handle.dtype}"
        )
        values = np.frombuffer(handle.inline, dtype=handle.np_dtype).reshape(
            handle.shape
        )
        values.setflags(write=False)
        return key, values, handle.inline
    if _shared_memory is None:  # pragma: no cover - guarded by publish
        raise RuntimeError("shared memory unavailable in this process")
    key = f"{namespace}-{handle.shm_name}"
    segment = _attach_segment(handle.shm_name)
    values = np.ndarray(handle.shape, dtype=handle.np_dtype, buffer=segment.buf)
    values.setflags(write=False)
    return key, values, segment


def attach_array(handle: SharedArrayHandle) -> np.ndarray:
    """Materialize a published ndarray in this process (read-only view).

    Shared handles attach a read-only view (cached per process); inline
    handles rebuild the array from bytes (cached as well, since chunked
    scheduling can deliver the same handle many times).
    """
    probe_keys = (
        f"array-{handle.shm_name}"
        if handle.shm_name is not None
        else f"array-inline-{id(handle.inline)}-{handle.shape}-{handle.dtype}"
    )
    cached = _ATTACHMENTS.get(probe_keys)
    if cached is not None:
        return cached[1]
    key, values, anchor = _attach_values(handle, "array")
    _ATTACHMENTS[key] = (anchor, values)
    return values


def attach_matrix(handle: SharedMatrixHandle) -> LatencyMatrix:
    """Materialize a published matrix in this process.

    Same caching rules as :func:`attach_array`, plus a zero-copy
    :meth:`~repro.net.latency.LatencyMatrix.wrap_readonly` wrapper.
    """
    probe_key = (
        f"matrix-{handle.shm_name}"
        if handle.shm_name is not None
        else f"matrix-inline-{id(handle.inline)}-{handle.shape}-{handle.dtype}"
    )
    cached = _ATTACHMENTS.get(probe_key)
    if cached is not None:
        return cached[1]
    key, values, anchor = _attach_values(handle, "matrix")
    matrix = LatencyMatrix.wrap_readonly(values)
    _ATTACHMENTS[key] = (anchor, matrix)
    return matrix
