"""Process-pool trial fan-out with a deterministic serial twin.

:class:`TrialPool` runs batches of independent experiment trials —
(placement, algorithm, seed) evaluations — either inline (``workers=0``,
the default) or across a ``concurrent.futures.ProcessPoolExecutor``.
The two backends execute the *same* trial functions on the *same*
per-trial derived seeds and reassemble results in submission order, so
**parallel and serial runs produce bit-identical results** regardless
of worker count or completion order. That contract is what lets the
figure/claims layer expose a ``--workers`` knob without forking its
result schema (and what ``benchmarks/bench_parallel.py`` asserts).

Design notes
------------

- **Chunked scheduling.** Tasks are grouped into chunks (default: ~4
  chunks per worker) so per-task IPC overhead is amortized; a chunk is
  the unit of submission, a task the unit of failure.
- **Shared matrices.** Each ``map_trials`` call names the latency
  matrix its trials read; the pool publishes it once via
  :mod:`repro.parallel.shm` and ships only the handle. Matrices are
  keyed by identity, so a full evaluation publishing one matrix pays
  one copy total.
- **Failure containment.** A trial that raises is retried inside the
  worker under a :class:`RetryPolicy` (default: one immediate retry;
  configurable bounded exponential backoff with seeded jitter), then
  reported as a failed :class:`TrialOutcome` — it cannot kill the
  sweep. A worker *crash* (hard exit, OOM kill)
  invalidates the executor; the pool rebuilds it once and re-runs the
  affected tasks in single-task chunks so a poison task is isolated
  and reported instead of re-killing healthy trials.
- **Interrupts.** ``KeyboardInterrupt`` cancels outstanding chunks,
  tears the executor down without waiting and re-raises — published
  shared memory is unlinked by the ``close()``/context-manager path.
- **Determinism.** The pool never generates randomness: seeds ride in
  the task objects (derived by callers via
  :func:`repro.utils.rng.derive_seed`), and outcomes are ordered by
  task index, not completion time.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import InvalidParameterError, TrialExecutionError
from repro.net.latency import LatencyMatrix
from repro.obs import SECONDS_BUCKETS, registry, span
from repro.obs.aggregate import (
    Snapshot,
    empty_snapshot,
    merge_into_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.parallel.cache import CacheStats
from repro.parallel.shm import (
    PublishedMatrix,
    SharedMatrixHandle,
    attach_matrix,
    publish_matrix,
)
from repro.utils.rng import derive_seed, ensure_rng

#: A trial function: ``fn(matrix, task) -> result``. Must be a
#: module-level callable (workers import it by qualified name) and
#: deterministic given ``(matrix, task)`` — the determinism contract
#: rests on trial functions deriving all randomness from task seeds.
TrialFn = Callable[[Optional[LatencyMatrix], Any], Any]

WorkersLike = Union[int, str, None]


def resolve_workers(workers: WorkersLike) -> int:
    """Normalize a worker-count spec to an integer.

    ``0`` / ``None`` / ``"serial"`` mean inline execution; ``-1`` (or
    any negative) means one worker per CPU; positive integers pass
    through.
    """
    if workers is None:
        return 0
    if isinstance(workers, str):
        if workers.lower() == "serial":
            return 0
        workers = int(workers)
    if workers < 0:
        return os.cpu_count() or 1
    return int(workers)


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's result envelope.

    ``value`` is the trial function's return value when ``ok``;
    ``error`` is a one-line description otherwise. ``seconds`` is the
    trial's own wall time as measured inside the executing process.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    retried: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class RetryPolicy:
    """In-worker retry schedule: bounded exponential backoff + jitter.

    The default (one retry, zero base delay) reproduces the historical
    immediate-retry behavior. With ``base_seconds > 0`` the pause before
    retry ``k`` (0-based) is::

        min(cap_seconds, base_seconds * 2**k) * (1 - jitter * u)

    where ``u`` is drawn uniformly from ``[0, 1)`` by a generator seeded
    from ``(seed, task_index, k)`` — deterministic per task and attempt,
    decorrelated across tasks so a chunk of flaky trials does not retry
    in lockstep. Retries and slept backoff are exported through the obs
    registry (``pool.retry.attempts``, ``pool.retry.backoff_seconds``)
    and flow back from workers via the metrics-delta channel.

    Parameters
    ----------
    retries:
        Retry attempts after the first failure (``0`` disables retry).
    base_seconds:
        First backoff delay; ``0`` retries immediately (the default).
    cap_seconds:
        Upper bound on any single delay.
    jitter:
        Fraction of the delay randomized away, in ``[0, 1]``.
    seed:
        Base seed for the jitter stream.
    """

    retries: int = 1
    base_seconds: float = 0.0
    cap_seconds: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvalidParameterError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.base_seconds < 0:
            raise InvalidParameterError(
                f"base_seconds must be >= 0, got {self.base_seconds}"
            )
        if self.cap_seconds < 0:
            raise InvalidParameterError(
                f"cap_seconds must be >= 0, got {self.cap_seconds}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_seconds(self, index: int, attempt: int) -> float:
        """The backoff before retry ``attempt`` of task ``index``."""
        if self.base_seconds <= 0.0:
            return 0.0
        raw = min(self.cap_seconds, self.base_seconds * (2.0 ** attempt))
        if self.jitter <= 0.0:
            return raw
        rng = ensure_rng(derive_seed(self.seed, index, attempt))
        return raw * (1.0 - self.jitter * float(rng.random()))


@dataclass
class PoolStats:
    """Aggregate counters over a :class:`TrialPool`'s lifetime."""

    workers: int = 0
    n_trials: int = 0
    n_failed: int = 0
    n_retried: int = 0
    n_crashed_chunks: int = 0
    #: Sum of per-trial wall times (CPU-side work, all processes).
    trial_seconds: float = 0.0
    #: Parent-side wall time spent inside ``map_trials``.
    wall_seconds: float = 0.0
    #: Instance-cache counters aggregated across worker processes.
    cache: CacheStats = field(default_factory=CacheStats)

    def describe(self) -> str:
        """One-line human-readable summary for progress reports."""
        backend = "serial" if self.workers == 0 else f"{self.workers} workers"
        parallelism = (
            self.trial_seconds / self.wall_seconds if self.wall_seconds else 0.0
        )
        line = (
            f"{self.n_trials} trials on {backend}: "
            f"{self.trial_seconds:.2f}s of trial work in "
            f"{self.wall_seconds:.2f}s wall ({parallelism:.1f}x), "
            f"instance cache {self.cache.hits}/{self.cache.lookups} hits"
        )
        if self.n_failed or self.n_retried:
            line += f", {self.n_retried} retried, {self.n_failed} failed"
        return line


# ----------------------------------------------------------------------
# Worker-side execution (shared verbatim by the serial backend)
# ----------------------------------------------------------------------
def _execute_chunk(
    fn: TrialFn,
    matrix: Optional[LatencyMatrix],
    items: Sequence[Tuple[int, Any]],
    retry: Optional[RetryPolicy] = None,
) -> Tuple[List[TrialOutcome], Snapshot]:
    """Run one chunk of ``(index, task)`` items against ``matrix``.

    Trial exceptions are contained per task: in-place retries under
    ``retry`` (default policy: one immediate retry), then a failed
    outcome. Returns outcomes plus the metrics-registry snapshot
    delta accrued while running the chunk (instance-cache hits/misses,
    engine commits, algorithm counters, ...) — a plain picklable dict,
    mergeable across workers via
    :func:`repro.obs.aggregate.merge_snapshots`.
    """
    policy = retry or RetryPolicy()
    before = registry().snapshot()
    outcomes: List[TrialOutcome] = []
    for index, task in items:
        start = time.perf_counter()
        attempt = 0
        first_exc: Optional[BaseException] = None
        while True:
            try:
                value, error = fn(matrix, task), None
                break
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
                if attempt >= policy.retries:
                    value, error = None, f"{type(exc).__name__}: {exc}"
                    if attempt > 0:
                        error += (
                            f" (first attempt: {type(first_exc).__name__})"
                        )
                    break
                pause = policy.delay_seconds(index, attempt)
                metrics = registry()
                metrics.counter("pool.retry.attempts").inc()
                if pause > 0.0:
                    metrics.histogram(
                        "pool.retry.backoff_seconds", SECONDS_BUCKETS
                    ).observe(pause)
                    time.sleep(pause)
                attempt += 1
        outcomes.append(
            TrialOutcome(
                index=index,
                value=value,
                error=error,
                seconds=time.perf_counter() - start,
                retried=attempt > 0,
            )
        )
    return outcomes, snapshot_delta(registry().snapshot(), before)


def _cache_stats_from_delta(delta: Snapshot) -> CacheStats:
    """The instance-cache counters embedded in a metrics delta."""
    counters = delta.get("counters", {})
    return CacheStats(
        hits=int(counters.get("parallel.cache.hits", 0)),
        misses=int(counters.get("parallel.cache.misses", 0)),
        evictions=int(counters.get("parallel.cache.evictions", 0)),
    )


def _run_chunk_remote(
    fn: TrialFn,
    handle: Optional[SharedMatrixHandle],
    items: Sequence[Tuple[int, Any]],
    retry: Optional[RetryPolicy] = None,
) -> Tuple[List[TrialOutcome], Snapshot]:
    """Worker entry point: attach the shared matrix, run the chunk."""
    matrix = attach_matrix(handle) if handle is not None else None
    return _execute_chunk(fn, matrix, items, retry)


def _default_chunk_size(n_tasks: int, workers: int) -> int:
    """~4 chunks per worker balances IPC overhead against stragglers."""
    if workers <= 0:
        return max(1, n_tasks)
    return max(1, -(-n_tasks // (workers * 4)))


def _mp_context():
    """The multiprocessing start method for worker processes.

    ``fork`` (where available) keeps worker start cheap and inherits
    ``sys.path``/imports; override with
    ``REPRO_PARALLEL_START_METHOD=spawn|forkserver|fork`` when
    debugging start-method-specific behavior.
    """
    preferred = os.environ.get("REPRO_PARALLEL_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred:
        return multiprocessing.get_context(preferred)
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class TrialPool:
    """A reusable trial executor with serial and process backends.

    Parameters
    ----------
    workers:
        ``0`` or ``"serial"`` — run trials inline (deterministic
        debugging, CI); ``-1`` — one worker per CPU; ``N > 0`` — a pool
        of ``N`` processes.
    chunk_size:
        Tasks per submitted chunk; default auto-sizes to ~4 chunks per
        worker per ``map_trials`` call.
    retry:
        In-worker retry schedule for trial exceptions; defaults to
        :class:`RetryPolicy`'s single immediate retry.

    Use as a context manager (or call :meth:`close`) so worker
    processes and shared-memory segments are reclaimed deterministically.
    """

    def __init__(
        self,
        workers: WorkersLike = 0,
        *,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.retry = retry or RetryPolicy()
        self.stats = PoolStats(workers=self.workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._published: Dict[int, PublishedMatrix] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        """Whether trials run inline in this process."""
        return self.workers == 0

    def __enter__(self) -> "TrialPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down workers and unlink published shared memory."""
        if self._closed:
            return
        self._closed = True
        self._teardown_executor(wait=True)
        published, self._published = self._published, {}
        for publication in published.values():
            publication.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def map_trials(
        self,
        fn: TrialFn,
        tasks: Sequence[Any],
        *,
        matrix: Optional[LatencyMatrix] = None,
    ) -> List[TrialOutcome]:
        """Run ``fn(matrix, task)`` for every task; outcomes in task order.

        ``matrix`` is delivered to workers through shared memory (one
        publication per distinct matrix per pool). Failed trials come
        back as non-``ok`` outcomes; the call itself only raises on
        ``KeyboardInterrupt`` or pool misuse.
        """
        if self._closed:
            raise RuntimeError("TrialPool is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        start = time.perf_counter()
        with span(
            "pool.map_trials", tasks=len(tasks), workers=self.workers
        ):
            if self.is_serial:
                # Inline execution: trial-side metric increments land
                # directly in this process's registry, so the delta is
                # only *read* (for the cache view), never merged back.
                outcomes, delta = _execute_chunk(
                    fn, matrix, list(enumerate(tasks)), self.retry
                )
            else:
                outcomes, delta = self._map_parallel(fn, tasks, matrix)
                # Worker increments happened in forked registries: fold
                # the combined delta into the parent's.
                merge_into_registry(delta)
        outcomes.sort(key=lambda o: o.index)
        n_failed = sum(1 for o in outcomes if not o.ok)
        n_retried = sum(1 for o in outcomes if o.retried)
        trial_seconds = sum(o.seconds for o in outcomes)
        self.stats.n_trials += len(outcomes)
        self.stats.n_failed += n_failed
        self.stats.n_retried += n_retried
        self.stats.trial_seconds += trial_seconds
        self.stats.wall_seconds += time.perf_counter() - start
        self.stats.cache = self.stats.cache + _cache_stats_from_delta(delta)
        metrics = registry()
        metrics.counter("pool.trials").inc(len(outcomes))
        metrics.counter("pool.failed").inc(n_failed)
        metrics.counter("pool.retried").inc(n_retried)
        seconds = metrics.histogram("pool.trial_seconds", SECONDS_BUCKETS)
        for outcome in outcomes:
            seconds.observe(outcome.seconds)
        return outcomes

    # ------------------------------------------------------------------
    # Parallel backend
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_mp_context()
            )
        return self._executor

    def _teardown_executor(self, *, wait: bool) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def _handle_for(
        self, matrix: Optional[LatencyMatrix]
    ) -> Optional[SharedMatrixHandle]:
        if matrix is None:
            return None
        publication = self._published.get(id(matrix))
        if publication is None:
            publication = publish_matrix(matrix)
            self._published[id(matrix)] = publication
        return publication.handle

    def _map_parallel(
        self,
        fn: TrialFn,
        tasks: List[Any],
        matrix: Optional[LatencyMatrix],
    ) -> Tuple[List[TrialOutcome], Snapshot]:
        handle = self._handle_for(matrix)
        chunk_size = self.chunk_size or _default_chunk_size(
            len(tasks), self.workers
        )
        indexed = list(enumerate(tasks))
        chunks = [
            indexed[i : i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        outcomes: List[TrialOutcome] = []
        delta_total = empty_snapshot()
        crashed: List[Tuple[int, Any]] = []
        executor = self._ensure_executor()
        futures = {
            executor.submit(
                _run_chunk_remote, fn, handle, chunk, self.retry
            ): chunk
            for chunk in chunks
        }
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    chunk = futures[future]
                    try:
                        chunk_outcomes, chunk_delta = future.result()
                    except BrokenProcessPool:
                        # The executor died under this chunk; collect it
                        # for isolated re-execution.
                        self.stats.n_crashed_chunks += 1
                        registry().counter("pool.crashed_chunks").inc()
                        broken = True
                        crashed.extend(chunk)
                    except KeyboardInterrupt:
                        raise
                    except BaseException as exc:
                        # Infrastructure failure for this chunk only
                        # (e.g. result unpickling): fail its tasks.
                        outcomes.extend(
                            TrialOutcome(
                                index=index,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            for index, _task in chunk
                        )
                    else:
                        outcomes.extend(chunk_outcomes)
                        delta_total = merge_snapshots(delta_total, chunk_delta)
                if broken:
                    # Every still-pending chunk will raise the same way
                    # (and may have been lost mid-flight): re-run them
                    # all in the isolation path rather than trusting a
                    # dead executor.
                    for other in pending:
                        crashed.extend(futures[other])
                    pending = set()
                    self._teardown_executor(wait=False)
        except KeyboardInterrupt:
            self._teardown_executor(wait=False)
            raise
        if crashed:
            retried, rerun_delta = self._rerun_crashed(fn, handle, crashed)
            outcomes.extend(retried)
            delta_total = merge_snapshots(delta_total, rerun_delta)
        return outcomes, delta_total

    def _rerun_crashed(
        self,
        fn: TrialFn,
        handle: Optional[SharedMatrixHandle],
        items: List[Tuple[int, Any]],
    ) -> Tuple[List[TrialOutcome], Snapshot]:
        """Re-run tasks from crashed chunks, one task per submission.

        A fresh executor isolates each suspect task; a task that kills
        its worker again is reported failed (never re-executed in the
        parent, where it could take the whole sweep down).
        """
        outcomes: List[TrialOutcome] = []
        delta_total = empty_snapshot()
        for index, task in sorted(items, key=lambda item: item[0]):
            executor = self._ensure_executor()
            future = executor.submit(
                _run_chunk_remote, fn, handle, [(index, task)], self.retry
            )
            try:
                task_outcomes, task_delta = future.result()
            except BrokenProcessPool:
                self.stats.n_crashed_chunks += 1
                registry().counter("pool.crashed_chunks").inc()
                self._teardown_executor(wait=False)
                outcomes.append(
                    TrialOutcome(
                        index=index,
                        error="worker process crashed (twice)",
                        retried=True,
                    )
                )
            except KeyboardInterrupt:
                self._teardown_executor(wait=False)
                raise
            except BaseException as exc:
                outcomes.append(
                    TrialOutcome(
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        retried=True,
                    )
                )
            else:
                delta_total = merge_snapshots(delta_total, task_delta)
                outcomes.extend(
                    replace(o, retried=True) for o in task_outcomes
                )
        return outcomes, delta_total


def run_trials(
    fn: TrialFn,
    tasks: Sequence[Any],
    *,
    matrix: Optional[LatencyMatrix] = None,
    pool: Optional[TrialPool] = None,
) -> List[TrialOutcome]:
    """Run trials on ``pool``, or inline when no pool is given.

    The standard entry point for experiment functions whose ``pool``
    parameter defaults to ``None`` (= serial execution): behavior and
    results are identical either way, only the executor differs.
    """
    if pool is not None:
        return pool.map_trials(fn, tasks, matrix=matrix)
    with TrialPool(0) as serial:
        return serial.map_trials(fn, tasks, matrix=matrix)


def successful_values(
    outcomes: Sequence[TrialOutcome], *, context: str
) -> List[Any]:
    """Values of successful outcomes; raises when *none* succeeded.

    The experiment layer tolerates individual failed trials (they are
    excluded from aggregation and surfaced in pool stats) but refuses
    to aggregate zero trials into a data point.
    """
    values = [o.value for o in outcomes if o.ok]
    if outcomes and not values:
        first = next(o for o in outcomes if not o.ok)
        raise TrialExecutionError(
            f"{context}: all {len(outcomes)} trial(s) failed "
            f"(first error: {first.error})"
        )
    return values
