"""Parallel experiment execution (see ``docs/parallel.md``).

Three pieces:

- :class:`~repro.parallel.pool.TrialPool` — process-pool trial fan-out
  with a bit-identical serial backend (``workers=0``), chunked
  scheduling, per-trial wall-time capture and crash containment;
- :mod:`repro.parallel.shm` — publish the latency matrix once via
  POSIX shared memory instead of pickling it per task;
- :class:`~repro.parallel.cache.InstanceCache` — build each unique
  problem instance (and its lower bound) once per process per sweep;
- :class:`~repro.parallel.cache.LowerBoundCache` — content-keyed §V
  lower bounds shared across scenario replays
  (:func:`~repro.parallel.cache.cached_lower_bound`).
"""

from repro.parallel.cache import (
    PLACEMENT_STRATEGIES,
    CachedInstance,
    CacheStats,
    InstanceCache,
    LowerBoundCache,
    cache_stats_snapshot,
    cached_lower_bound,
    instance_cache,
    lb_cache_stats_snapshot,
    lower_bound_cache,
)
from repro.parallel.pool import (
    PoolStats,
    RetryPolicy,
    TrialOutcome,
    TrialPool,
    resolve_workers,
    run_trials,
    successful_values,
)
from repro.parallel.shm import (
    PublishedArray,
    PublishedMatrix,
    SharedArrayHandle,
    SharedMatrixHandle,
    attach_array,
    attach_matrix,
    publish_array,
    publish_matrix,
    shared_memory_available,
)

__all__ = [
    "TrialPool",
    "TrialOutcome",
    "PoolStats",
    "RetryPolicy",
    "resolve_workers",
    "run_trials",
    "successful_values",
    "InstanceCache",
    "CachedInstance",
    "CacheStats",
    "instance_cache",
    "cache_stats_snapshot",
    "LowerBoundCache",
    "lower_bound_cache",
    "cached_lower_bound",
    "lb_cache_stats_snapshot",
    "PLACEMENT_STRATEGIES",
    "PublishedArray",
    "PublishedMatrix",
    "SharedArrayHandle",
    "SharedMatrixHandle",
    "publish_array",
    "publish_matrix",
    "attach_array",
    "attach_matrix",
    "shared_memory_available",
]
