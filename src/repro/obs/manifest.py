"""Run manifests: what produced a persisted result, exactly.

A :class:`RunManifest` captures the provenance of an experiment run —
package version, configuration, seeds, dataset fingerprint, platform —
so a results file found months later answers "what produced this?"
without archaeology. :func:`repro.experiments.persistence.save_result`
attaches the ambient manifest (installed by the CLI via
:func:`set_current_manifest`) to every payload it writes.

Determinism contract
--------------------
The package guarantees that re-running an experiment with the same
profile and seed produces byte-identical result files, traced or not,
at any worker count. The manifest is therefore split in two:

- the **deterministic core** (version, config, seeds, dataset
  fingerprint, platform triple) — a pure function of the run's inputs
  and environment, safe to embed in persisted results by default;
- the **volatile section** (wall-clock timestamp, hostname, PID,
  wall-seconds totals, worker count) — genuinely per-run. It is always
  included in trace files (those are per-run artifacts by nature) but
  embedded in persisted results only when ``REPRO_OBS_MANIFEST=full``
  is set, because it would break byte-identity.
"""

from __future__ import annotations

import datetime
import hashlib
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro._version import __version__

#: Bump when the manifest dict layout changes incompatibly.
MANIFEST_VERSION = 1

#: Environment switch: ``full`` embeds the volatile section in
#: persisted results (at the cost of byte-identical re-runs).
MANIFEST_ENV = "REPRO_OBS_MANIFEST"


def fingerprint_matrix(matrix: Any) -> str:
    """A short stable content fingerprint of a latency matrix.

    SHA-256 over the shape and the raw float bytes of
    ``matrix.values`` (made C-contiguous first so layout never leaks
    into the digest), truncated to 16 hex chars — collision-safe at the
    scale of "did two runs use the same dataset".
    """
    import numpy as np

    values = np.ascontiguousarray(matrix.values)
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode("ascii"))
    digest.update(str(values.dtype).encode("ascii"))
    digest.update(values.tobytes())
    return digest.hexdigest()[:16]


@dataclass
class RunManifest:
    """Provenance of one experiment run."""

    #: What the run was (CLI command, figure id, study name, ...).
    command: str = ""
    #: Scale/parameter configuration (profile name, node counts, ...).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Every seed the run consumed, by role.
    seeds: Dict[str, Any] = field(default_factory=dict)
    #: Content fingerprint of the latency matrix (see
    #: :func:`fingerprint_matrix`); ``None`` when no dataset applies.
    dataset_fingerprint: Optional[str] = None
    #: Interpreter/platform triple — deterministic per installation.
    platform: Dict[str, str] = field(default_factory=dict)
    #: Per-run facts (timestamp, host, pid, wall seconds, workers).
    volatile: Dict[str, Any] = field(default_factory=dict)

    def finalize(self, *, wall_seconds: Optional[float] = None, **extra: Any) -> None:
        """Record end-of-run volatile facts (wall-clock totals etc.)."""
        if wall_seconds is not None:
            self.volatile["wall_seconds"] = round(float(wall_seconds), 6)
        self.volatile.update(extra)

    def to_dict(self, *, include_volatile: Optional[bool] = None) -> Dict[str, Any]:
        """The manifest as plain JSON-able data.

        ``include_volatile=None`` consults the ``REPRO_OBS_MANIFEST``
        environment variable (``full`` includes it; default excludes,
        preserving byte-identical re-runs of persisted results).
        """
        if include_volatile is None:
            include_volatile = (
                os.environ.get(MANIFEST_ENV, "").lower() == "full"
            )
        body: Dict[str, Any] = {
            "manifest_version": MANIFEST_VERSION,
            "package_version": __version__,
            "command": self.command,
            "config": dict(self.config),
            "seeds": dict(self.seeds),
            "dataset_fingerprint": self.dataset_fingerprint,
            "platform": dict(self.platform),
        }
        if include_volatile:
            body["volatile"] = dict(self.volatile)
        return body


def build_manifest(
    *,
    command: str = "",
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, Any]] = None,
    matrix: Any = None,
    **volatile: Any,
) -> RunManifest:
    """Assemble a manifest for the current process and inputs.

    ``matrix`` (when given) is fingerprinted via
    :func:`fingerprint_matrix`. Extra keyword arguments land in the
    volatile section alongside the automatically captured timestamp,
    hostname and PID.
    """
    import numpy as np

    manifest = RunManifest(
        command=command,
        config=dict(config or {}),
        seeds=dict(seeds or {}),
        dataset_fingerprint=(
            fingerprint_matrix(matrix) if matrix is not None else None
        ),
        platform={
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "numpy": np.__version__,
            "system": platform.system(),
            "machine": platform.machine(),
        },
        volatile={
            "created_at": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "hostname": platform.node(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
        },
    )
    manifest.volatile.update(volatile)
    return manifest


#: The ambient manifest the persistence layer attaches to results.
_CURRENT: Optional[RunManifest] = None


def current_manifest() -> Optional[RunManifest]:
    """The ambient manifest, or ``None`` outside an instrumented run."""
    return _CURRENT


def set_current_manifest(manifest: Optional[RunManifest]) -> Optional[RunManifest]:
    """Install (or clear, with ``None``) the ambient manifest."""
    global _CURRENT
    previous, _CURRENT = _CURRENT, manifest
    return previous


class manifest_scope:
    """Context manager installing an ambient manifest for a block."""

    def __init__(self, manifest: RunManifest) -> None:
        self._manifest = manifest
        self._previous: Optional[RunManifest] = None

    def __enter__(self) -> RunManifest:
        self._previous = set_current_manifest(self._manifest)
        return self._manifest

    def __exit__(self, *exc_info: object) -> None:
        set_current_manifest(self._previous)
