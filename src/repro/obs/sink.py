"""Pluggable event sinks for the tracing layer.

A sink consumes the event dicts produced by :mod:`repro.obs.trace`
(spans, metrics dumps, manifests). Three implementations cover every
deployment:

- :class:`NullSink` — the default; tracing code detects it and skips
  event construction entirely, so an untraced run pays (almost) nothing.
- :class:`MemorySink` — buffers events in a list; tests and in-process
  consumers read them back without touching the filesystem.
- :class:`JsonlSink` — appends one JSON object per line to a file; the
  ``repro obs`` CLI summarizes these traces.

Sinks are selected via the ``--trace PATH`` CLI flag or the
``REPRO_OBS_TRACE`` environment variable (see :func:`open_sink`).

Fork safety: worker processes started with ``fork`` inherit the parent's
installed sink, including an open :class:`JsonlSink` file handle.
File-backed sinks therefore record their creating PID and silently drop
events emitted from any other process — interleaved partial lines from
concurrent writers would corrupt the trace. Worker-side telemetry flows
back through the metrics-delta channel instead
(:mod:`repro.obs.aggregate`).
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, os.PathLike]

Event = Dict[str, Any]


class Sink:
    """Event consumer interface (duck-typed; subclassing is optional)."""

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(Sink):
    """Discards everything. The module-level :data:`NULL_SINK` is the
    canonical instance — the tracer compares against it by identity to
    skip span bookkeeping altogether."""

    def emit(self, event: Event) -> None:
        pass


#: Canonical null sink; identity-compared by the tracer's fast path.
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Buffers events in memory for in-process inspection."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(Sink):
    """Appends events to ``path``, one compact JSON object per line.

    Events are buffered and flushed every ``flush_every`` emissions (and
    on :meth:`close`), keeping syscall overhead off the hot path. Only
    the creating process writes; events emitted from a forked child are
    dropped (see module docstring).
    """

    def __init__(self, path: PathLike, *, flush_every: int = 256) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._pid = os.getpid()
        self._since_flush = 0
        self._flush_every = max(1, int(flush_every))
        self.n_events = 0

    def emit(self, event: Event) -> None:
        if self._handle is None or os.getpid() != self._pid:
            return
        self._handle.write(json.dumps(event, separators=(",", ":")))
        self._handle.write("\n")
        self.n_events += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._handle.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._handle is None or os.getpid() != self._pid:
            return
        handle, self._handle = self._handle, None
        handle.flush()
        handle.close()


def open_sink(spec: Optional[str]) -> Sink:
    """Build a sink from a CLI/env spec.

    ``None``, empty, ``"null"``, or ``"off"`` select the null sink;
    ``"memory"`` an in-memory buffer; anything else is treated as a
    JSONL file path.
    """
    if not spec or spec.lower() in ("null", "off", "none"):
        return NULL_SINK
    if spec.lower() == "memory":
        return MemorySink()
    return JsonlSink(spec)


def sink_spec_from_env() -> Optional[str]:
    """The ``REPRO_OBS_TRACE`` environment spec, if set."""
    return os.environ.get("REPRO_OBS_TRACE") or None


def read_jsonl(path: PathLike) -> List[Event]:
    """Load every event from a JSONL trace file.

    Blank lines are skipped; an undecodable line — typically a torn
    final line from a writer that crashed mid-write, or a byte-level
    truncation — is skipped **with a warning** rather than failing the
    whole read: a partial trace is still worth summarizing, but the
    reader must not pretend the file was intact.
    """
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                warnings.warn(
                    f"{os.fspath(path)}: skipping undecodable JSONL line "
                    f"{lineno} (torn or truncated write)",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return events
