"""Trace summarization: per-phase breakdowns and hottest spans.

Consumes the JSONL traces produced by :mod:`repro.obs.trace` (span
events plus the final ``metrics`` and ``manifest`` events the CLI
appends) and rolls them up into a :class:`TraceSummary`:

- **wall time** — the extent of the trace (first span start to last
  span end) and what fraction of it the root spans account for;
- **phase breakdown** — the direct children of the root span, grouped
  by name, with call counts, total time, and share of wall time;
- **hottest spans** — span names ranked by *self time* (duration minus
  the time spent in child spans), which is where optimization effort
  actually lands;
- **merged metrics** — every ``metrics`` event in the trace folded
  together (a parent process plus any worker deltas it already merged).

``repro obs trace.jsonl`` renders this as text via :func:`render_summary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.obs.aggregate import Snapshot, empty_snapshot, merge_snapshots
from repro.obs.sink import Event, PathLike, read_jsonl


@dataclass(frozen=True)
class PhaseRow:
    """One named phase (or span group) of the breakdown."""

    name: str
    calls: int
    total_seconds: float
    self_seconds: float
    share_of_wall: float


@dataclass
class TraceSummary:
    """Rolled-up view of one trace file."""

    n_events: int
    n_spans: int
    #: Extent of the trace: last span end minus first span start.
    wall_seconds: float
    #: Summed duration of root spans (no parent).
    root_seconds: float
    #: ``root_seconds / wall_seconds`` — how much of the measured wall
    #: time the span tree accounts for.
    coverage: float
    #: Name of the root span when the trace has exactly one root.
    root_name: Optional[str]
    phases: List[PhaseRow] = field(default_factory=list)
    hottest: List[PhaseRow] = field(default_factory=list)
    metrics: Snapshot = field(default_factory=empty_snapshot)
    manifest: Optional[Dict[str, Any]] = None


def load_trace(path: PathLike) -> List[Event]:
    """Read a JSONL trace file, failing loudly when it has no events."""
    events = read_jsonl(path)
    if not events:
        raise DatasetError(f"{path}: no events found (is this a trace file?)")
    return events


def _group(spans: Sequence[Event], child_time: Dict[int, float], wall: float
           ) -> List[PhaseRow]:
    groups: Dict[str, List[Event]] = {}
    for event in spans:
        groups.setdefault(event["name"], []).append(event)
    rows = []
    for name, members in groups.items():
        total = sum(e["duration"] for e in members)
        self_time = sum(
            e["duration"] - child_time.get(e["span_id"], 0.0) for e in members
        )
        rows.append(
            PhaseRow(
                name=name,
                calls=len(members),
                total_seconds=total,
                self_seconds=self_time,
                share_of_wall=(total / wall) if wall > 0 else 0.0,
            )
        )
    rows.sort(key=lambda r: -r.total_seconds)
    return rows


def summarize(events: Sequence[Event], *, top: int = 10) -> TraceSummary:
    """Roll a list of trace events up into a :class:`TraceSummary`."""
    spans = [e for e in events if e.get("type") == "span"]
    metrics = empty_snapshot()
    manifest: Optional[Dict[str, Any]] = None
    for event in events:
        if event.get("type") == "metrics" and "metrics" in event:
            metrics = merge_snapshots(metrics, event["metrics"])
        elif event.get("type") == "manifest":
            manifest = event.get("manifest")
    if not spans:
        return TraceSummary(
            n_events=len(events),
            n_spans=0,
            wall_seconds=0.0,
            root_seconds=0.0,
            coverage=0.0,
            root_name=None,
            metrics=metrics,
            manifest=manifest,
        )

    start = min(e["start"] for e in spans)
    end = max(e["start"] + e["duration"] for e in spans)
    wall = max(end - start, 0.0)

    child_time: Dict[int, float] = {}
    for event in spans:
        parent = event.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + event["duration"]

    roots = [e for e in spans if e.get("parent_id") is None]
    root_seconds = sum(e["duration"] for e in roots)
    coverage = (root_seconds / wall) if wall > 0 else 1.0

    # Phase rows: with a single root, its direct children are the
    # phases (plus the root's own untracked remainder); otherwise the
    # roots themselves are the phases.
    if len(roots) == 1:
        root = roots[0]
        root_name = root["name"]
        children = [e for e in spans if e.get("parent_id") == root["span_id"]]
        phases = _group(children, child_time, wall)
        remainder = root["duration"] - child_time.get(root["span_id"], 0.0)
        if remainder > 0 and phases:
            phases.append(
                PhaseRow(
                    name=f"({root_name} self)",
                    calls=1,
                    total_seconds=remainder,
                    self_seconds=remainder,
                    share_of_wall=(remainder / wall) if wall > 0 else 0.0,
                )
            )
    else:
        root_name = None
        phases = _group(roots, child_time, wall)

    hottest = _group(spans, child_time, wall)
    hottest.sort(key=lambda r: -r.self_seconds)

    return TraceSummary(
        n_events=len(events),
        n_spans=len(spans),
        wall_seconds=wall,
        root_seconds=root_seconds,
        coverage=coverage,
        root_name=root_name,
        phases=phases,
        hottest=hottest[: max(0, top)],
        metrics=metrics,
        manifest=manifest,
    )


def summarize_file(path: PathLike, *, top: int = 10) -> TraceSummary:
    """Load and summarize a JSONL trace file."""
    return summarize(load_trace(path), top=top)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _rows_table(rows: Sequence[PhaseRow]) -> List[str]:
    name_width = max([len(r.name) for r in rows] + [len("phase")])
    lines = [
        f"  {'phase':<{name_width}}  {'calls':>6}  {'total s':>9}  "
        f"{'self s':>9}  {'% wall':>6}"
    ]
    for row in rows:
        lines.append(
            f"  {row.name:<{name_width}}  {row.calls:>6}  "
            f"{row.total_seconds:>9.4f}  {row.self_seconds:>9.4f}  "
            f"{row.share_of_wall * 100:>5.1f}%"
        )
    return lines


def _metric_lines(metrics: Snapshot) -> List[str]:
    lines: List[str] = []
    counters = metrics.get("counters", {})
    for name in sorted(counters):
        value = counters[name]
        shown = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"  {name} = {shown}")
    for name in sorted(metrics.get("gauges", {})):
        lines.append(f"  {name} = {metrics['gauges'][name]} (gauge)")
    for name in sorted(metrics.get("histograms", {})):
        hist = metrics["histograms"][name]
        count = hist["count"]
        mean = (hist["sum"] / count) if count else 0.0
        lines.append(f"  {name}: n={count}, mean={mean:.4g}")
    return lines


def _kernel_lines(metrics: Snapshot) -> List[str]:
    """The compute-kernel timing breakdown, from ``kernel.*`` counters.

    :mod:`repro.kernels` records ``kernel.<backend>.<name>.calls`` and
    ``.seconds`` counter pairs; render them as one row per kernel with
    the mean time per call, so a trace shows at a glance which backend
    ran and where engine time went (see docs/performance.md).
    """
    counters = metrics.get("counters", {})
    rows: List[Tuple[str, str, float, float]] = []
    for name in sorted(counters):
        if not (name.startswith("kernel.") and name.endswith(".calls")):
            continue
        parts = name.split(".")
        if len(parts) != 4:
            continue
        _, backend, kernel, _ = parts
        calls = counters[name]
        seconds = counters.get(f"kernel.{backend}.{kernel}.seconds", 0.0)
        rows.append((backend, kernel, float(calls), float(seconds)))
    if not rows:
        return []
    rows.sort(key=lambda r: (r[0], -r[3]))
    width = max(len(f"{b}.{k}") for b, k, _, _ in rows)
    lines = [
        f"  {'kernel':<{width}}  {'calls':>9}  {'total s':>9}  {'us/call':>9}"
    ]
    for backend, kernel, calls, seconds in rows:
        per_call = (seconds / calls * 1e6) if calls else 0.0
        lines.append(
            f"  {backend + '.' + kernel:<{width}}  {calls:>9.0f}  "
            f"{seconds:>9.4f}  {per_call:>9.1f}"
        )
    return lines


def _memory_lines(metrics: Snapshot) -> List[str]:
    """The memory section: peak RSS plus provider row-synthesis work.

    ``process.peak_rss_bytes`` is the gauge :func:`repro.obs.memory.
    record_peak_rss` snapshots at the end of every CLI run; the
    ``provider.coordinate.*`` counters say how many latency rows were
    synthesized on demand instead of read from a dense matrix — the
    scale pipeline's evidence that no ``|C| x |S|`` block ever existed.
    """
    from repro.obs.memory import PEAK_RSS_GAUGE, format_bytes

    lines: List[str] = []
    peak = metrics.get("gauges", {}).get(PEAK_RSS_GAUGE)
    if peak is not None:
        lines.append(f"  peak RSS: {format_bytes(peak)}")
    counters = metrics.get("counters", {})
    calls = counters.get("provider.coordinate.calls")
    if calls:
        rows = counters.get("provider.coordinate.rows", 0)
        elements = counters.get("provider.coordinate.elements", 0)
        lines.append(
            f"  coordinate provider: {int(calls)} block calls, "
            f"{int(rows)} rows, {int(elements)} elements synthesized"
        )
    return lines


def _scenario_lines(metrics: Snapshot) -> List[str]:
    """The scenario-harness section: per-policy ratios + LB cache.

    :func:`repro.scenarios.harness.replay_scenario` records
    ``scenarios.replay.<policy>.checkpoints`` / ``.ratio_sum`` counter
    pairs and a ``.max_ratio`` gauge per policy, plus global
    ``scenarios.events`` / ``scenarios.seconds`` throughput counters.
    The §V lower bounds behind every ratio come from the process-wide
    cache, whose ``parallel.lb_cache.*`` counters say how often a
    checkpoint's bound was recomputed versus served from memory.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    prefix = "scenarios.replay."
    rows: List[Tuple[str, float, float, Optional[float]]] = []
    for name in sorted(counters):
        if not (name.startswith(prefix) and name.endswith(".checkpoints")):
            continue
        policy = name[len(prefix):-len(".checkpoints")]
        checkpoints = float(counters[name])
        ratio_sum = float(counters.get(f"{prefix}{policy}.ratio_sum", 0.0))
        max_ratio = gauges.get(f"{prefix}{policy}.max_ratio")
        rows.append((policy, checkpoints, ratio_sum, max_ratio))
    if not rows and not counters.get("scenarios.replays"):
        return []
    lines: List[str] = []
    replays = counters.get("scenarios.replays", 0)
    events = counters.get("scenarios.events", 0)
    seconds = counters.get("scenarios.seconds", 0.0)
    throughput = (events / seconds) if seconds else 0.0
    lines.append(
        f"  {int(replays)} replays, {int(events)} events in "
        f"{seconds:.2f} s ({throughput:.0f} ev/s)"
    )
    if rows:
        width = max([len(p) for p, _, _, _ in rows] + [len("policy")])
        lines.append(
            f"  {'policy':<{width}}  {'checkpoints':>11}  "
            f"{'mean ratio':>10}  {'max ratio':>9}"
        )
        for policy, checkpoints, ratio_sum, max_ratio in rows:
            mean = (ratio_sum / checkpoints) if checkpoints else 0.0
            shown_max = f"{max_ratio:>9.3f}" if max_ratio is not None else (
                " " * 8 + "-")
            lines.append(
                f"  {policy:<{width}}  {checkpoints:>11.0f}  "
                f"{mean:>10.3f}  {shown_max}"
            )
    hits = counters.get("parallel.lb_cache.hits", 0)
    misses = counters.get("parallel.lb_cache.misses", 0)
    if hits or misses:
        total = hits + misses
        rate = (hits / total * 100) if total else 0.0
        lines.append(
            f"  lower-bound cache: {int(hits)} hits / {int(misses)} misses "
            f"({rate:.0f}% hit rate)"
        )
    return lines


def render_summary(summary: TraceSummary) -> str:
    """Human-readable report of a :class:`TraceSummary`."""
    lines = [
        f"trace: {summary.n_events} events, {summary.n_spans} spans, "
        f"wall {summary.wall_seconds:.4f} s"
    ]
    if summary.n_spans:
        root = summary.root_name or "(multiple roots)"
        lines.append(
            f"root span: {root} — {summary.root_seconds:.4f} s, "
            f"{summary.coverage * 100:.1f}% of wall time"
        )
    if summary.phases:
        lines.append("")
        lines.append("per-phase breakdown:")
        lines.extend(_rows_table(summary.phases))
    if summary.hottest:
        lines.append("")
        lines.append(f"hottest spans by self time (top {len(summary.hottest)}):")
        lines.extend(_rows_table(summary.hottest))
    kernel_lines = _kernel_lines(summary.metrics)
    if kernel_lines:
        lines.append("")
        lines.append("kernel timing (per backend):")
        lines.extend(kernel_lines)
    memory_lines = _memory_lines(summary.metrics)
    if memory_lines:
        lines.append("")
        lines.append("memory:")
        lines.extend(memory_lines)
    scenario_lines = _scenario_lines(summary.metrics)
    if scenario_lines:
        lines.append("")
        lines.append("scenarios:")
        lines.extend(scenario_lines)
    metric_lines = _metric_lines(summary.metrics)
    if metric_lines:
        lines.append("")
        lines.append("merged metrics:")
        lines.extend(metric_lines)
    if summary.manifest is not None:
        lines.append("")
        manifest = summary.manifest
        lines.append(
            "manifest: "
            f"command={manifest.get('command', '?')!r}, "
            f"package v{manifest.get('package_version', '?')}, "
            f"dataset {manifest.get('dataset_fingerprint') or 'n/a'}"
        )
    return "\n".join(lines)
