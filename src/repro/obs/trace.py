"""Lightweight span tracing with parent/child nesting.

Usage::

    from repro.obs import span

    with span("greedy.assign", clients=n_clients):
        ...

Each closed span emits one event dict to the installed sink::

    {"type": "span", "name": ..., "span_id": ..., "parent_id": ...,
     "depth": ..., "start": <monotonic s since trace start>,
     "duration": <s>, ...fields}

Timestamps come from ``time.perf_counter()`` relative to the moment the
sink was installed, so they are monotonic, comparable across spans of
one trace, and immune to wall-clock steps. Nesting is tracked with an
explicit stack: spans opened while another span is active record it as
their parent, which is what lets :mod:`repro.obs.report` roll a trace
up into a phase tree and compute self-times.

The default sink is :data:`~repro.obs.sink.NULL_SINK`, and ``span()``
special-cases it: it returns a shared no-op context manager without
allocating a span object, touching the clock, or recording fields.
Instrumentation left in hot paths therefore costs one function call and
one identity comparison per span when tracing is off.

The tracer is process-local and single-stack (the package's execution
model: one logical task per process; parallelism happens across
*processes*, whose file-backed sinks drop inherited handles — see
:mod:`repro.obs.sink`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.sink import NULL_SINK, Sink


class _TraceState:
    __slots__ = ("sink", "stack", "next_id", "origin")

    def __init__(self) -> None:
        self.sink: Sink = NULL_SINK
        self.stack: List[int] = []
        self.next_id = 1
        self.origin = 0.0


_STATE = _TraceState()


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, **fields: Any) -> None:
        """Accept (and drop) late-bound fields."""


_NOOP_SPAN = _NoopSpan()


class Span:
    """An open span; created by :func:`span`, closed by ``with``."""

    __slots__ = ("name", "fields", "span_id", "parent_id", "depth", "_start")

    def __init__(self, name: str, fields: Dict[str, Any]) -> None:
        self.name = name
        self.fields = fields
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._start = 0.0

    def set(self, **fields: Any) -> None:
        """Attach fields discovered mid-span (e.g. result sizes)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        state = _STATE
        self.span_id = state.next_id
        state.next_id += 1
        self.parent_id = state.stack[-1] if state.stack else None
        self.depth = len(state.stack)
        state.stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        state = _STATE
        if state.stack and state.stack[-1] == self.span_id:
            state.stack.pop()
        elif self.span_id in state.stack:  # pragma: no cover - misnesting
            state.stack.remove(self.span_id)
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self._start - state.origin,
            "duration": end - self._start,
        }
        if self.fields:
            event.update(self.fields)
        state.sink.emit(event)


def span(name: str, **fields: Any):
    """Open a span named ``name`` with optional key=value fields.

    Returns a context manager. While the null sink is installed this is
    a shared no-op object — no allocation beyond the ``fields`` dict the
    call site builds, no clock reads, no stack bookkeeping.
    """
    if _STATE.sink is NULL_SINK:
        return _NOOP_SPAN
    return Span(name, fields)


def tracing_enabled() -> bool:
    """Whether a real (non-null) sink is installed."""
    return _STATE.sink is not NULL_SINK


def active_sink() -> Sink:
    """The currently installed sink."""
    return _STATE.sink


def install_sink(sink: Sink) -> Sink:
    """Install ``sink`` as the trace target, returning the previous one.

    Resets the span stack and the timestamp origin, so every trace
    starts at ``start ~= 0``. The caller owns closing the returned
    previous sink if it needs closing.
    """
    state = _STATE
    previous = state.sink
    state.sink = sink
    state.stack = []
    state.origin = time.perf_counter()
    return previous


def uninstall_sink(*, close: bool = True) -> Sink:
    """Restore the null sink; optionally close the removed sink."""
    removed = install_sink(NULL_SINK)
    if close and removed is not NULL_SINK:
        removed.close()
    return removed


@contextmanager
def tracing(sink: Sink) -> Iterator[Sink]:
    """Scoped sink installation: installs on entry, closes on exit."""
    previous = install_sink(sink)
    try:
        yield sink
    finally:
        install_sink(previous)
        if sink is not NULL_SINK:
            sink.close()


def emit_event(event_type: str, **payload: Any) -> None:
    """Emit a non-span event (metrics dump, manifest) to the sink.

    A timestamp relative to the trace origin is attached; the event is
    dropped silently when tracing is disabled.
    """
    state = _STATE
    if state.sink is NULL_SINK:
        return
    event: Dict[str, Any] = {
        "type": event_type,
        "ts": time.perf_counter() - state.origin,
    }
    event.update(payload)
    state.sink.emit(event)
