"""Wall-clock timing helpers, unified with the metrics registry.

:class:`Stopwatch` is the package's historical context-manager timer
(formerly ``repro.utils.timing.Stopwatch``; a deprecation shim keeps the
old import path alive). :func:`timed` couples a stopwatch to the
registry: the elapsed time lands in a named histogram (and an optional
counter pair) so repeated timings aggregate without any caller-side
bookkeeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.obs.metrics import SECONDS_BUCKETS, registry


class Stopwatch:
    """A tiny context-manager stopwatch.

    Example::

        with Stopwatch() as sw:
            run_algorithm()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; live while running, frozen after exit."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


@contextmanager
def timed(
    name: str, *, bounds: Optional[Sequence[float]] = None
) -> Iterator[Stopwatch]:
    """Time a block and record the elapsed seconds in the registry.

    The duration is observed into histogram ``name`` (default bounds:
    :data:`~repro.obs.metrics.SECONDS_BUCKETS`). The yielded
    :class:`Stopwatch` exposes ``elapsed`` to the caller as before.
    """
    watch = Stopwatch()
    with watch:
        yield watch
    registry().histogram(
        name, SECONDS_BUCKETS if bounds is None else bounds
    ).observe(watch.elapsed)
