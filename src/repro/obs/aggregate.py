"""Cross-process metric aggregation: snapshot deltas and merges.

Worker processes in :class:`~repro.parallel.pool.TrialPool` each hold
their own process-local :class:`~repro.obs.metrics.MetricsRegistry`
(inherited as a copy under ``fork``, fresh under ``spawn``). To make
worker-side telemetry visible in the parent, every executed chunk ships
the *delta* its trials accrued — ``snapshot_after - snapshot_before``,
computed with :func:`snapshot_delta` — back alongside the trial
results, and the pool folds each delta into the parent registry with
:func:`merge_into_registry`.

Delta/merge semantics per instrument type:

- **counters** — subtract / add (they only ever grow inside a chunk);
- **histograms** — per-bucket subtract / add plus sum and count; a
  merge across registries whose same-named histograms disagree on
  bucket bounds raises, because adding misaligned buckets would
  silently corrupt the distribution;
- **gauges** — last-value instruments have no meaningful delta; a
  delta carries the worker's final value and a merge keeps the
  element-wise **maximum**, which is order-independent (merging chunk
  deltas in completion order must not change the result — the same
  commutativity requirement the pool's determinism contract imposes on
  trial results).

All shapes are the plain nested dicts produced by
:meth:`MetricsRegistry.snapshot`, so they pickle across process
boundaries and serialize into trace files unchanged.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidParameterError
from repro.obs.metrics import MetricsRegistry, registry

Snapshot = Dict[str, Dict[str, Any]]


def empty_snapshot() -> Snapshot:
    """A snapshot with no instruments (the additive identity)."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def snapshot_delta(after: Snapshot, before: Snapshot) -> Snapshot:
    """``after - before``, dropping instruments that did not change.

    Instruments absent from ``before`` are treated as zero. Gauges are
    carried at their ``after`` value (see module docstring).
    """
    counters_before = before.get("counters", {})
    counters = {}
    for name, value in after.get("counters", {}).items():
        diff = value - counters_before.get(name, 0)
        if diff:
            counters[name] = diff
    gauges = dict(after.get("gauges", {}))
    hists_before = before.get("histograms", {})
    histograms = {}
    for name, hist in after.get("histograms", {}).items():
        prior = hists_before.get(name)
        if prior is None:
            if hist["count"]:
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            continue
        if list(prior["bounds"]) != list(hist["bounds"]):
            raise InvalidParameterError(
                f"histogram {name!r} changed bounds between snapshots"
            )
        count = hist["count"] - prior["count"]
        if count:
            histograms[name] = {
                "bounds": list(hist["bounds"]),
                "counts": [
                    a - b for a, b in zip(hist["counts"], prior["counts"])
                ],
                "sum": hist["sum"] - prior["sum"],
                "count": count,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_snapshots(left: Snapshot, right: Snapshot) -> Snapshot:
    """Combine two snapshots/deltas into one (commutative)."""
    counters = dict(left.get("counters", {}))
    for name, value in right.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = dict(left.get("gauges", {}))
    for name, value in right.get("gauges", {}).items():
        gauges[name] = max(gauges.get(name, value), value)
    histograms = {
        name: {
            "bounds": list(h["bounds"]),
            "counts": list(h["counts"]),
            "sum": h["sum"],
            "count": h["count"],
        }
        for name, h in left.get("histograms", {}).items()
    }
    for name, hist in right.get("histograms", {}).items():
        into = histograms.get(name)
        if into is None:
            histograms[name] = {
                "bounds": list(hist["bounds"]),
                "counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
            continue
        if list(into["bounds"]) != list(hist["bounds"]):
            raise InvalidParameterError(
                f"cannot merge histogram {name!r}: bucket bounds differ"
            )
        into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
        into["sum"] += hist["sum"]
        into["count"] += hist["count"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_into_registry(
    delta: Snapshot, target: MetricsRegistry = None  # type: ignore[assignment]
) -> None:
    """Fold a snapshot delta into a live registry (default: the global).

    Counters and histogram buckets add; gauges keep the maximum of the
    current and incoming value.
    """
    if target is None:
        target = registry()
    for name, value in delta.get("counters", {}).items():
        target.counter(name).inc(value)
    for name, value in delta.get("gauges", {}).items():
        gauge = target.gauge(name)
        gauge.set(max(gauge.value, value))
    for name, hist in delta.get("histograms", {}).items():
        into = target.histogram(name, hist["bounds"])
        if list(into.bounds) != [float(b) for b in hist["bounds"]]:
            raise InvalidParameterError(  # pragma: no cover - histogram() raises first
                f"cannot merge histogram {name!r}: bucket bounds differ"
            )
        for i, n in enumerate(hist["counts"]):
            into.counts[i] += n
        into.sum += hist["sum"]
        into.count += hist["count"]
