"""Process memory accounting for the observability layer.

The scale pipeline's whole point is bounded memory — a million-client
solve must never materialize a dense ``|C| x |S|`` block — so the
telemetry has to be able to *show* that. :func:`peak_rss_bytes` reads
the kernel's high-water mark for the process (``ru_maxrss``; monotone,
so it captures the worst transient even if the allocation is already
freed) and :func:`record_peak_rss` snapshots it into the metrics
registry as the ``process.peak_rss_bytes`` gauge, which the CLI records
at the end of every run and ``repro obs`` renders in its memory
section alongside the ``provider.coordinate.*`` row-synthesis counters.

Everything here is read-only introspection: recording memory telemetry
never changes results.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.obs.metrics import MetricsRegistry, registry

#: Gauge name under which :func:`record_peak_rss` publishes the value.
PEAK_RSS_GAUGE = "process.peak_rss_bytes"


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes.

    Uses ``resource.getrusage`` where available (Linux reports
    ``ru_maxrss`` in KiB, macOS in bytes — normalized here). Returns 0
    on platforms without the ``resource`` module (Windows) rather than
    failing: memory telemetry is best-effort by design.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024


def record_peak_rss(metrics: Optional[MetricsRegistry] = None) -> int:
    """Snapshot the current peak RSS into the metrics registry.

    Sets the :data:`PEAK_RSS_GAUGE` gauge on ``metrics`` (the ambient
    registry by default) and returns the recorded byte count.
    """
    value = peak_rss_bytes()
    (metrics if metrics is not None else registry()).gauge(
        PEAK_RSS_GAUGE
    ).set(value)
    return value


def format_bytes(n: float) -> str:
    """Human-readable byte count (``1.50 GiB`` style)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"  # pragma: no cover - unreachable
