"""Observability: metrics, span tracing, run manifests, and reporting.

The package's telemetry layer, used by every subsystem:

- :mod:`repro.obs.metrics` — process-local counters, gauges and
  fixed-bucket histograms, cheap enough to stay on by default;
- :mod:`repro.obs.trace` — ``with span("greedy.assign", clients=n):``
  span tracing emitting JSONL events with monotonic timestamps and
  parent/child nesting;
- :mod:`repro.obs.sink` — pluggable event sinks (null / memory /
  JSONL file), selected via ``--trace`` or ``REPRO_OBS_TRACE``;
- :mod:`repro.obs.manifest` — run manifests (version, config, seeds,
  dataset fingerprint, platform) attached to persisted results;
- :mod:`repro.obs.aggregate` — cross-process snapshot deltas and
  merges (how :class:`~repro.parallel.pool.TrialPool` folds worker
  telemetry back into the parent);
- :mod:`repro.obs.report` — trace summarization behind the
  ``repro obs`` CLI subcommand;
- :mod:`repro.obs.timing` — the :class:`Stopwatch` (formerly
  ``repro.utils.timing``) and registry-backed :func:`timed` blocks.

Two invariants every instrumentation site preserves: telemetry never
feeds back into a decision (results are bit-identical with any sink and
any registry), and the disabled path is near-free (a null-sink ``span``
is one identity comparison; counters are single attribute adds).

See ``docs/observability.md`` for a guided tour.
"""

from repro.obs.aggregate import (
    empty_snapshot,
    merge_into_registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    current_manifest,
    fingerprint_matrix,
    manifest_scope,
    set_current_manifest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    registry,
    set_registry,
    use_registry,
)
from repro.obs.memory import (
    PEAK_RSS_GAUGE,
    format_bytes,
    peak_rss_bytes,
    record_peak_rss,
)
from repro.obs.report import TraceSummary, render_summary, summarize, summarize_file
from repro.obs.sink import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    open_sink,
    read_jsonl,
    sink_spec_from_env,
)
from repro.obs.timing import Stopwatch, timed
from repro.obs.trace import (
    Span,
    active_sink,
    emit_event,
    install_sink,
    span,
    tracing,
    tracing_enabled,
    uninstall_sink,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "registry",
    "set_registry",
    "use_registry",
    # trace
    "span",
    "Span",
    "tracing",
    "tracing_enabled",
    "active_sink",
    "install_sink",
    "uninstall_sink",
    "emit_event",
    # sinks
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "NULL_SINK",
    "open_sink",
    "read_jsonl",
    "sink_spec_from_env",
    # manifest
    "RunManifest",
    "build_manifest",
    "fingerprint_matrix",
    "current_manifest",
    "set_current_manifest",
    "manifest_scope",
    # aggregate
    "empty_snapshot",
    "snapshot_delta",
    "merge_snapshots",
    "merge_into_registry",
    # report
    "TraceSummary",
    "summarize",
    "summarize_file",
    "render_summary",
    # timing
    "Stopwatch",
    "timed",
    # memory
    "PEAK_RSS_GAUGE",
    "peak_rss_bytes",
    "record_peak_rss",
    "format_bytes",
]
