"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is the always-on half of the observability layer: every
instrumented subsystem (the heuristics, the incremental engine, the
simulator, the failover controller, the trial pool) increments counters
and observes histograms unconditionally. Instruments are plain Python
objects mutated in place — ``counter.inc()`` is one attribute add, an
``observe`` is a bisect over a dozen bucket bounds — so leaving them on
costs a negligible fraction of the numpy-heavy work they sit next to
(``benchmarks/bench_obs.py`` keeps that claim honest).

Three rules keep the layer safe to leave enabled:

- **Metrics never feed back.** No instrumented code path reads a metric
  to make a decision, so telemetry can never change numerical results.
- **Snapshots are plain data.** :meth:`MetricsRegistry.snapshot`
  returns nested dicts of numbers — picklable, JSON-able, and closed
  under the subtract/merge algebra in :mod:`repro.obs.aggregate` that
  the trial pool uses to fold worker-process deltas back into the
  parent registry.
- **The registry is swappable.** :func:`use_registry` substitutes the
  process-global instance (benchmarks install a
  :class:`NullMetricsRegistry` to measure the uninstrumented baseline;
  tests install a fresh registry for isolation). Instrumented code must
  therefore fetch instruments through :func:`registry` at call time,
  never cache them at import time.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError

Number = Union[int, float]

#: Default histogram bucket upper bounds — a 1/2/5 decade ladder wide
#: enough for batch sizes, event counts and millisecond latencies alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

#: Bucket ladder for wall-clock durations in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
    0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing numeric counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value instrument (e.g. configured worker count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value, replacing the previous one."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper bucket bounds; one overflow bucket
    catches everything above the last bound, so ``counts`` has
    ``len(bounds) + 1`` cells. The bounds are fixed at creation —
    merging two histograms of the same name requires identical bounds
    (enforced by :mod:`repro.obs.aggregate`), which is why bounds are
    part of the snapshot format.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise InvalidParameterError(
                f"histogram bounds must be non-empty and ascending, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named instruments, created on first use and process-local.

    Instruments are memoized by name: two call sites asking for
    ``counter("engine.apply")`` share one :class:`Counter`. A histogram
    name is bound to its bucket bounds on first creation; asking again
    with different bounds raises, because silently returning either
    ladder would corrupt merges.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name`` (created on first use).

        ``bounds`` defaults to :data:`DEFAULT_BUCKETS` and must match
        the existing bounds when the histogram already exists.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, DEFAULT_BUCKETS if bounds is None else bounds
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != instrument.bounds:
            raise InvalidParameterError(
                f"histogram {name!r} already exists with bounds "
                f"{instrument.bounds}, requested {tuple(bounds)}"
            )
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instrument values as plain nested dicts (picklable)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()
    name = "null"
    value: Number = 0
    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    sum = 0.0
    count = 0
    counts: List[int] = []
    mean = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments discard everything.

    Installed via :func:`use_registry` to measure the cost of the
    instrumentation itself (``benchmarks/bench_obs.py``) — the
    attribute-lookup and call overhead remains, the mutation work
    disappears.
    """

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-global registry. Worker processes started with ``fork``
#: inherit a *copy*; :mod:`repro.obs.aggregate` folds their deltas back.
_REGISTRY: MetricsRegistry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The current process-global registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry, returning the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, new
    return previous


@contextmanager
def use_registry(new: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap the process-global registry (tests/benchmarks)."""
    previous = set_registry(new)
    try:
        yield new
    finally:
        set_registry(previous)
