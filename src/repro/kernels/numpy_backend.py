"""Pure-numpy kernel twin — the engine's historical inline code.

Every function here is a verbatim extraction of the numpy the
incremental engine ran before the kernel seam existed. That makes this
backend the **reference implementation**: selecting it (or running
without numba installed) reproduces the pre-kernel engine byte for
byte, which the regression tests pin against golden walk values.

Do not "optimize" these bodies — equivalence to the old engine *is*
their specification. Raw-speed work belongs in
:mod:`repro.kernels.numba_backend` (or a future compiled backend),
gated by the parity suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def objective_refresh(
    l_out: np.ndarray, l_in: np.ndarray, ss: np.ndarray
) -> float:
    """Maximum of ``l_out[s1] + d(s1, s2) + l_in[s2]`` over used servers.

    Callers guarantee at least one server is used (finite ``l_out``).
    Same reduction — and the same floating point association — as
    :func:`repro.core.metrics.max_interaction_path_length`.
    """
    used = np.flatnonzero(np.isfinite(l_out))
    sub = ss[np.ix_(used, used)]
    totals = l_out[used][:, None] + sub + l_in[used][None, :]
    return float(totals.max())


def reduction_top2(
    ss: np.ndarray, l_in: np.ndarray, l_out: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Top-2 contributions of ``best_in`` / ``best_out`` per server.

    ``best_in[s'] = max_s d(s', s) + l_in[s]`` and
    ``best_out[s'] = max_s l_out[s] + d(s, s')``, each with its runner-up
    and the argmax of the leader, so excluding one server's column later
    costs O(1) per row. Ties resolve to the highest server index (the
    tail of a stable ascending argsort), matching the engine's original
    behavior.
    """
    n_servers = ss.shape[0]
    in_terms = ss + l_in[None, :]  # (S, S): term[s', s]
    out_terms = l_out[:, None] + ss  # (S, S): term[s, s']
    order_in = np.argsort(in_terms, axis=1, kind="stable")
    arg1_in = order_in[:, -1]
    rows = np.arange(n_servers)
    best1_in = in_terms[rows, arg1_in]
    if n_servers >= 2:
        best2_in = in_terms[rows, order_in[:, -2]]
    else:
        best2_in = np.full(n_servers, -np.inf)
    order_out = np.argsort(out_terms, axis=0, kind="stable")
    arg1_out = order_out[-1, :]
    best1_out = out_terms[arg1_out, rows]
    if n_servers >= 2:
        best2_out = out_terms[order_out[-2, :], rows]
    else:
        best2_out = np.full(n_servers, -np.inf)
    return best1_in, best2_in, arg1_in, best1_out, best2_out, arg1_out


def topk_select(dists: np.ndarray, k: int) -> Tuple[np.ndarray, float]:
    """Indices of the top-``k`` entries, sorted descending, plus bound.

    ``bound`` is the maximum distance *not* selected (``-inf`` when
    everything fits) — the rebuilt list's eviction watermark. The
    descending sort is stable over the argpartition-selected members,
    matching ``_TopList.rebuild``'s original selection exactly.
    """
    if dists.size > k:
        part = np.argpartition(-dists, k - 1)
        keep = part[:k]
        bound = float(dists[part[k:]].max())
    else:
        keep = np.arange(dists.size)
        bound = -np.inf
    order = keep[np.argsort(-dists[keep], kind="stable")]
    return order, bound


def weighted_loads(
    server_of: np.ndarray, weights: np.ndarray, n_servers: int
) -> np.ndarray:
    """Per-server total client weight (int64-exact scatter-add).

    ``server_of`` uses ``-1`` for unassigned clients, which contribute
    nothing. Weighted instances (the coreset layer's super-clients)
    consult these loads for capacity masking; member *counts* stay in
    the engine's separate ``loads`` array.
    """
    loads = np.zeros(n_servers, dtype=np.int64)
    assigned = server_of >= 0
    if assigned.any():
        np.add.at(loads, server_of[assigned], weights[assigned])
    return loads


def move_context(
    ss: np.ndarray,
    l_out: np.ndarray,
    l_in: np.ndarray,
    best1_in: np.ndarray,
    best2_in: np.ndarray,
    arg1_in: np.ndarray,
    best1_out: np.ndarray,
    best2_out: np.ndarray,
    arg1_out: np.ndarray,
    out_leg: np.ndarray,
    in_leg: np.ndarray,
    home: int,
    l_out_home: float,
    l_in_home: float,
    has_assigned: bool,
) -> Tuple[np.ndarray, float]:
    """Per-client candidate paths ``L(s')`` and the client-less objective.

    The fused hot path behind ``batch_delta_D`` / ``candidate_paths``:
    exclude the client's home server from the cached best completions
    (O(1) per row via the top-2 terms), compute ``d_rest`` — D with the
    client removed — and score every destination: the client's outgoing
    leg plus the best continuation, the best prefix plus its incoming
    leg, and its own round trip.
    """
    if home >= 0:
        best_in = np.where(arg1_in == home, best2_in, best1_in)
        np.maximum(best_in, ss[:, home] + l_in_home, out=best_in)
        best_out = np.where(arg1_out == home, best2_out, best1_out)
        np.maximum(best_out, l_out_home + ss[home, :], out=best_out)
        l_out_rest = l_out.copy()
        l_out_rest[home] = l_out_home
        with np.errstate(invalid="ignore"):
            d_rest = float(np.max(l_out_rest + best_in))
    else:
        best_in = best1_in
        best_out = best1_out
        if has_assigned:
            with np.errstate(invalid="ignore"):
                d_rest = float(np.max(l_out + best_in))
        else:
            d_rest = -np.inf
    paths = np.maximum(out_leg + best_in, best_out + in_leg)
    np.maximum(paths, out_leg + in_leg, out=paths)
    return paths, d_rest
