"""Compiled compute kernels for the incremental objective engine.

:class:`~repro.core.incremental.IncrementalObjective` funnels every
heuristic's candidate scoring through four hot loops:

- **move_context** — the fused per-client candidate scoring behind
  :meth:`~repro.core.incremental.IncrementalObjective.batch_delta_D`
  (home-server exclusion, best-completion lookups, and the ``L(s')``
  path vector in one pass);
- **reduction_top2** — the per-server ``best_in`` / ``best_out``
  completions with their top-2 contributors;
- **topk_select** — top-k farthest-client selection used by the lazy
  per-server list rebuilds;
- **objective_refresh** — the O(|S_used|^2) lazy recomputation of D;
- **weighted_loads** — per-server total client weight for capacity
  masking on weighted (coreset super-client) instances. Integer
  arithmetic, so its backend parity is exact rather than bit-of-float
  identical.

Two interchangeable implementations exist:

- :mod:`repro.kernels.numpy_backend` — the pure-numpy **twin**. Its
  code is the exact numpy the engine historically inlined, so selecting
  it reproduces the pre-kernel engine byte for byte.
- :mod:`repro.kernels.numba_backend` — ``@njit``-compiled loops.
  numba is imported lazily, only when this backend is requested (or
  picked by ``"auto"``); ``import repro`` never requires it.

Backends are selected by name — ``"auto"`` (numba when importable,
numpy otherwise), ``"numba"`` (hard requirement, raises
:class:`~repro.errors.KernelBackendError` when absent) or ``"numpy"``
— through :func:`resolve_backend`, which every consumer reaches via
the ``backend=`` knob on the engine, the engine-backed algorithms,
``run_algorithm``, the CLI and :class:`~repro.algorithms.online.OnlineConfig`.

**Parity contract.** Within one matrix dtype the two backends maintain
*bit-identical* engine state: the cached objective D and the per-server
``l`` vectors are maxima of identically-associated float sums, and the
candidate scores use the same evaluation order. The property suite in
``tests/core/test_kernels.py`` drives thousands of random
apply/undo/batch walks asserting exactly that (scores are additionally
documented to tolerate a few ULPs — the engine-wide contract — so a
future backend with a different association stays within spec).
float32 instances agree with their float64 twins to the matrix
rounding, ~1e-6 relative (see ``docs/performance.md``).

Every resolved suite is instrumented: per-kernel call counts and
cumulative seconds land in the observability registry under
``kernel.<backend>.<name>.{calls,seconds}`` and are surfaced by
``repro obs`` as a kernel timing breakdown.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from repro.errors import InvalidParameterError, KernelBackendError
from repro.obs.metrics import registry

#: Valid values of every ``backend=`` knob in the package.
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "numba", "numpy")

#: Kernel names a backend module must export.
KERNEL_NAMES: Tuple[str, ...] = (
    "move_context",
    "reduction_top2",
    "topk_select",
    "objective_refresh",
    "weighted_loads",
)

_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether numba can actually be imported (cached after first call).

    A broken installation counts as unavailable — ``"auto"`` must never
    take the package down with it.
    """
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def available_backends() -> Tuple[str, ...]:
    """The concrete backends usable in this environment."""
    return ("numba", "numpy") if numba_available() else ("numpy",)


def validate_backend_name(name: str) -> str:
    """Check ``name`` against :data:`BACKEND_CHOICES` and return it."""
    if name not in BACKEND_CHOICES:
        raise InvalidParameterError(
            f"backend must be one of {BACKEND_CHOICES}, got {name!r}"
        )
    return name


class KernelSuite:
    """One resolved backend: a named bundle of the four kernels.

    Instances are cheap veneers; the heavy state (numba's compiled
    dispatchers) lives in the backend modules. Each suite fetches its
    observability instruments at construction time — engines resolve a
    suite per instance, so a swapped registry is honored, mirroring the
    engine's own telemetry discipline.
    """

    __slots__ = (
        "name",
        "move_context",
        "reduction_top2",
        "topk_select",
        "objective_refresh",
        "weighted_loads",
    )

    def __init__(self, name: str, module, *, instrument: bool = True) -> None:
        self.name = name
        metrics = registry() if instrument else None
        for kernel in KERNEL_NAMES:
            fn = getattr(module, kernel)
            if metrics is not None:
                fn = _timed(fn, metrics, f"kernel.{name}.{kernel}")
            setattr(self, kernel, fn)

    def __repr__(self) -> str:
        return f"KernelSuite({self.name!r})"


def _timed(fn: Callable, metrics, prefix: str) -> Callable:
    """Wrap a kernel with call/seconds counters (one add each per call)."""
    calls = metrics.counter(f"{prefix}.calls")
    seconds = metrics.counter(f"{prefix}.seconds")
    perf_counter = time.perf_counter

    def timed(*args):
        start = perf_counter()
        out = fn(*args)
        seconds.inc(perf_counter() - start)
        calls.inc()
        return out

    return timed


def resolve_backend(name: str = "auto", *, instrument: bool = True) -> KernelSuite:
    """Resolve a backend name to a ready-to-call :class:`KernelSuite`.

    ``"auto"`` prefers numba and silently falls back to the numpy twin;
    ``"numba"`` raises :class:`~repro.errors.KernelBackendError` when
    numba is absent; ``"numpy"`` always works. ``instrument=False``
    skips the per-kernel timing wrappers (benchmarks measuring the raw
    kernels).
    """
    validate_backend_name(name)
    if name == "numpy" or (name == "auto" and not numba_available()):
        from repro.kernels import numpy_backend

        return KernelSuite("numpy", numpy_backend, instrument=instrument)
    if not numba_available():
        raise KernelBackendError(
            "backend 'numba' was requested but numba is not importable; "
            "install numba or use backend='auto'/'numpy'"
        )
    from repro.kernels import numba_backend

    return KernelSuite("numba", numba_backend, instrument=instrument)
