"""numba-compiled kernels for the incremental objective engine.

Importing this module requires numba; callers must go through
:func:`repro.kernels.resolve_backend`, which imports it lazily only
when numba is importable (``backend="auto"``) or explicitly demanded
(``backend="numba"``). ``import repro`` never touches this module.

Each kernel is the loop-fused equivalent of its numpy twin in
:mod:`repro.kernels.numpy_backend`, with the same floating point
association on every sum and the same tie-breaking rules, so within one
matrix dtype the engine state (cached D, ``l`` vectors, candidate
scores) stays bit-identical across backends — the parity property suite
in ``tests/core/test_kernels.py`` enforces this on random walks. The
win is dispatch, not math: one compiled call replaces a dozen numpy
ufunc launches and their temporaries, which is where the per-move cost
of small-|S| instances actually goes.

Kernels compile lazily on first call, per argument dtype (float32
latency slices reach ``topk_select`` directly; everything S-sized is
float64). ``cache=True`` persists the compiled machine code next to
the package so repeated processes skip recompilation.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def objective_refresh(l_out, l_in, ss):
    """Max of ``l_out[u] + ss[u, v] + l_in[v]`` over used servers.

    Mirrors the numpy twin: "used" is defined by finite ``l_out`` on
    both axes, and each term associates as ``(l_out + ss) + l_in``.
    """
    n = l_out.shape[0]
    best = -np.inf
    for u in range(n):
        lu = l_out[u]
        if not np.isfinite(lu):
            continue
        for v in range(n):
            if not np.isfinite(l_out[v]):
                continue
            total = (lu + ss[u, v]) + l_in[v]
            if total > best:
                best = total
    return best


@njit(cache=True)
def reduction_top2(ss, l_in, l_out):
    """Top-2 ``best_in`` / ``best_out`` completions per server.

    ``>=`` on the leader update makes the highest server index win
    ties, matching the stable-argsort tail the numpy twin picks.
    """
    n = ss.shape[0]
    best1_in = np.full(n, -np.inf)
    best2_in = np.full(n, -np.inf)
    arg1_in = np.full(n, -1, np.int64)
    best1_out = np.full(n, -np.inf)
    best2_out = np.full(n, -np.inf)
    arg1_out = np.full(n, -1, np.int64)
    for sp in range(n):
        b1 = -np.inf
        b2 = -np.inf
        a1 = -1
        for s in range(n):
            term = ss[sp, s] + l_in[s]
            if term >= b1:
                b2 = b1
                b1 = term
                a1 = s
            elif term > b2:
                b2 = term
        best1_in[sp] = b1
        best2_in[sp] = b2
        arg1_in[sp] = a1
    for sp in range(n):
        b1 = -np.inf
        b2 = -np.inf
        a1 = -1
        for s in range(n):
            term = l_out[s] + ss[s, sp]
            if term >= b1:
                b2 = b1
                b1 = term
                a1 = s
            elif term > b2:
                b2 = term
        best1_out[sp] = b1
        best2_out[sp] = b2
        arg1_out[sp] = a1
    return best1_in, best2_in, arg1_in, best1_out, best2_out, arg1_out


@njit(cache=True)
def topk_select(dists, k):
    """Top-``k`` indices (descending, ties to the earlier index) + bound.

    Single pass with an insertion buffer — no boolean temporaries, no
    argpartition scratch — so a rebuild reads each of the |members|
    distances exactly once. Tie *membership* at the k boundary may
    differ from the numpy twin's argpartition (both are valid top-k
    sets); the returned bound makes either choice safe, since a head at
    or below the watermark triggers a ground-truth rebuild.
    """
    n = dists.shape[0]
    m = k if k < n else n
    vals = np.empty(m, dists.dtype)
    idxs = np.empty(m, np.int64)
    count = 0
    bound = -np.inf
    for i in range(n):
        d = dists[i]
        if count < m:
            j = count
            while j > 0 and vals[j - 1] < d:
                vals[j] = vals[j - 1]
                idxs[j] = idxs[j - 1]
                j -= 1
            vals[j] = d
            idxs[j] = i
            count += 1
        elif d > vals[m - 1]:
            if vals[m - 1] > bound:
                bound = vals[m - 1]
            j = m - 1
            while j > 0 and vals[j - 1] < d:
                vals[j] = vals[j - 1]
                idxs[j] = idxs[j - 1]
                j -= 1
            vals[j] = d
            idxs[j] = i
        elif d > bound:
            bound = d
    return idxs[:count], bound


@njit(cache=True)
def weighted_loads(server_of, weights, n_servers):
    """Per-server total client weight (see the numpy twin's docs).

    Pure integer arithmetic, so backend parity is exact equality.
    """
    loads = np.zeros(n_servers, np.int64)
    for i in range(server_of.shape[0]):
        s = server_of[i]
        if s >= 0:
            loads[s] += weights[i]
    return loads


@njit(cache=True)
def move_context(
    ss,
    l_out,
    l_in,
    best1_in,
    best2_in,
    arg1_in,
    best1_out,
    best2_out,
    arg1_out,
    out_leg,
    in_leg,
    home,
    l_out_home,
    l_in_home,
    has_assigned,
):
    """Fused per-client candidate scoring (see the numpy twin's docs).

    One pass over the |S| destinations computes the home-excluded best
    completions, ``d_rest`` and the candidate path vector, replacing
    ~10 ufunc launches with a single compiled loop.
    """
    n = ss.shape[0]
    paths = np.empty(n)
    d_rest = -np.inf
    for j in range(n):
        if home >= 0:
            if arg1_in[j] == home:
                best_in = best2_in[j]
            else:
                best_in = best1_in[j]
            alt = ss[j, home] + l_in_home
            if alt > best_in:
                best_in = alt
            if arg1_out[j] == home:
                best_out = best2_out[j]
            else:
                best_out = best1_out[j]
            alt = l_out_home + ss[home, j]
            if alt > best_out:
                best_out = alt
            if j == home:
                rest = l_out_home + best_in
            else:
                rest = l_out[j] + best_in
            if rest > d_rest:
                d_rest = rest
        else:
            best_in = best1_in[j]
            best_out = best1_out[j]
            if has_assigned:
                rest = l_out[j] + best_in
                if rest > d_rest:
                    d_rest = rest
        path = out_leg[j] + best_in
        alt = best_out + in_leg[j]
        if alt > path:
            path = alt
        alt = out_leg[j] + in_leg[j]
        if alt > path:
            path = alt
        paths[j] = path
    return paths, d_rest
