"""Lightweight statistics for multi-run experiment results.

Kept dependency-free (numpy only): a normal-approximation confidence
interval for well-behaved means, a bootstrap interval for skewed
distributions (normalized interactivity is right-skewed — Fig. 8), and
an empirical CDF helper shared by reporting code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

#: Two-sided z values for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], *, confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean.

    Suitable for the averaged sweeps (n >= 20 runs per point); for small
    or skewed samples use :func:`bootstrap_mean_ci`.
    """
    if confidence not in _Z:
        raise ValueError(f"confidence must be one of {sorted(_Z)}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute a CI of an empty sample")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    half = _Z[confidence] * arr.std(ddof=1) / np.sqrt(arr.size)
    mean = float(arr.mean())
    return mean - half, mean + half


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean (skew-robust)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = ensure_rng(seed)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.percentile(means, 100 * alpha)),
        float(np.percentile(means, 100 * (1 - alpha))),
    )


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative fractions (the Fig. 8 axes)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("cannot build a CDF of an empty sample")
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def spearman_rank_correlation(
    x: Sequence[float], y: Sequence[float]
) -> float:
    """Spearman's rank correlation coefficient of two equal-length samples.

    Ties receive average ranks. Returns a value in [-1, 1]; 1 means the
    two samples order their items identically. Used by the cross-dataset
    comparison to quantify "similar results" (paper §V on the MIT data).
    """
    ax = np.asarray(x, dtype=np.float64)
    ay = np.asarray(y, dtype=np.float64)
    if ax.shape != ay.shape or ax.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D sequences")
    if ax.size < 2:
        raise ValueError("need at least two observations")

    def average_ranks(arr: np.ndarray) -> np.ndarray:
        order = np.argsort(arr, kind="stable")
        ranks = np.empty(arr.size, dtype=np.float64)
        ranks[order] = np.arange(1, arr.size + 1)
        # Average ranks over ties.
        for value in np.unique(arr):
            mask = arr == value
            if mask.sum() > 1:
                ranks[mask] = ranks[mask].mean()
        return ranks

    rx, ry = average_ranks(ax), average_ranks(ay)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx**2).sum() * (ry**2).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)
