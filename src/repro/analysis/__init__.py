"""Statistical helpers for experiment aggregation and reporting."""

from repro.analysis.stats import (
    SummaryStats,
    bootstrap_mean_ci,
    empirical_cdf,
    mean_confidence_interval,
    spearman_rank_correlation,
    summarize,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_mean_ci",
    "empirical_cdf",
    "spearman_rank_correlation",
]
