"""Shared ordering of timed event streams.

Both the DIA workload generators (:mod:`repro.sim.workload`) and the
scenario DSL (:mod:`repro.scenarios.dsl`) produce lists of timed
records that must be replayed in a canonical order: ascending time,
ties broken by a per-record key (client index for operations, an
explicit priority tuple for scenario events). Sequence numbers are
assigned *after* that sort, so "same seed ⇒ byte-identical stream"
holds for every generator that funnels through this module — one
tie-break rule, stated once.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple, TypeVar

K = TypeVar("K")
R = TypeVar("R")


def ordered_timed(raw: Iterable[Tuple[float, K]]) -> List[Tuple[float, K]]:
    """Sort ``(time, key)`` pairs by time, ties by key.

    The key may be any comparable value (an int client index, a tuple
    ``(priority, payload)``); identical ``(time, key)`` pairs keep
    their input order (the sort is stable).
    """
    return sorted(raw, key=lambda pair: (pair[0], pair[1]))


def sequence_timed(
    raw: Iterable[Tuple[float, K]],
    build: Callable[[int, float, K], R],
) -> List[R]:
    """Order a timed stream and assign sequence numbers.

    ``build(seq, time, key)`` is called once per record, in canonical
    order, with ``seq`` counting from 0.
    """
    return [
        build(seq, t, k) for seq, (t, k) in enumerate(ordered_timed(raw))
    ]
