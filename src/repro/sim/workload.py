"""Operation workloads for the DIA simulation.

A workload is a finite list of :class:`~repro.sim.events.Operation`
records — which client issues an operation at which simulation time.
Sequence numbers are assigned in issuance order (ties broken by client
index), so the fairness checker can compare execution order against
``seq`` order directly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sim.events import Operation
from repro.sim.sequencing import sequence_timed
from repro.utils.rng import SeedLike, ensure_rng


def _finalize(raw: List[Tuple[float, int]]) -> List[Operation]:
    """Sort (time, client) pairs and assign sequence numbers.

    Delegates to :mod:`repro.sim.sequencing` so workloads and scenario
    streams share one canonical tie-break rule.
    """
    return sequence_timed(
        raw,
        lambda seq, t, c: Operation(issue_sim_time=t, seq=seq, client=c),
    )


def poisson_workload(
    n_clients: int,
    *,
    rate: float = 1.0,
    horizon: float = 100.0,
    seed: SeedLike = None,
) -> List[Operation]:
    """Each client issues operations as an independent Poisson process.

    ``rate`` is operations per unit simulation time per client;
    ``horizon`` is the issuance window ``[0, horizon)``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = ensure_rng(seed)
    raw: List[Tuple[float, int]] = []
    for client in range(n_clients):
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            raw.append((t, client))
    return _finalize(raw)


def uniform_workload(
    n_clients: int,
    *,
    ops_per_client: int = 5,
    horizon: float = 100.0,
    seed: SeedLike = None,
) -> List[Operation]:
    """Each client issues a fixed number of uniformly-timed operations."""
    if ops_per_client < 0:
        raise ValueError(f"ops_per_client must be nonnegative, got {ops_per_client}")
    rng = ensure_rng(seed)
    raw: List[Tuple[float, int]] = []
    for client in range(n_clients):
        for t in rng.uniform(0.0, horizon, size=ops_per_client):
            raw.append((float(t), client))
    return _finalize(raw)


def lockstep_workload(
    n_clients: int,
    *,
    rounds: int = 5,
    interval: float = 50.0,
) -> List[Operation]:
    """Every client issues one operation per round, simultaneously.

    The worst case for fairness: simultaneous issuances must still be
    executed in a globally consistent order at every server.
    """
    if rounds < 0:
        raise ValueError(f"rounds must be nonnegative, got {rounds}")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    raw: List[Tuple[float, int]] = []
    for r in range(rounds):
        for client in range(n_clients):
            raw.append((r * interval, client))
    return _finalize(raw)


def adversarial_pair_workload(
    client_a: int,
    client_b: int,
    *,
    gap: float = 0.001,
    rounds: int = 10,
    interval: float = 50.0,
) -> List[Operation]:
    """Two clients issue operations ``gap`` apart each round.

    Stress case for fair ordering: the operation issued ``gap`` later
    must execute later at *every* server even when its network path is
    much shorter.
    """
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    raw: List[Tuple[float, int]] = []
    for r in range(rounds):
        base = r * interval
        raw.append((base, client_a))
        raw.append((base + gap, client_b))
    return _finalize(raw)


def flash_crowd_workload(
    n_clients: int,
    *,
    base_rate: float = 0.2,
    burst_rate: float = 5.0,
    burst_start: float = 40.0,
    burst_duration: float = 10.0,
    horizon: float = 100.0,
    seed: SeedLike = None,
) -> List[Operation]:
    """A background Poisson load plus a synchronized burst window.

    Models a flash-crowd moment (a boss spawn, a match start): during
    ``[burst_start, burst_start + burst_duration)`` every client's rate
    jumps from ``base_rate`` to ``burst_rate``. Stress case for server
    processing backlogs (:mod:`repro.sim.processing`).
    """
    for name, value in (("base_rate", base_rate), ("burst_rate", burst_rate)):
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
    if not 0 <= burst_start < horizon:
        raise ValueError("burst_start must lie within the horizon")
    if burst_duration <= 0:
        raise ValueError(f"burst_duration must be positive, got {burst_duration}")
    rng = ensure_rng(seed)
    burst_end = min(burst_start + burst_duration, horizon)
    raw: List[Tuple[float, int]] = []
    for client in range(n_clients):
        t = 0.0
        while True:
            rate = burst_rate if burst_start <= t < burst_end else base_rate
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            raw.append((t, client))
    return _finalize(raw)


def diurnal_workload(
    n_clients: int,
    *,
    peak_rate: float = 1.0,
    trough_rate: float = 0.1,
    period: float = 100.0,
    horizon: float = 200.0,
    seed: SeedLike = None,
) -> List[Operation]:
    """Sinusoidally-modulated Poisson arrivals (day/night cycle).

    The instantaneous per-client rate oscillates between ``trough_rate``
    and ``peak_rate`` with the given period. Generated by thinning a
    Poisson process at the peak rate.
    """
    if trough_rate <= 0 or peak_rate < trough_rate:
        raise ValueError("need 0 < trough_rate <= peak_rate")
    if period <= 0 or horizon <= 0:
        raise ValueError("period and horizon must be positive")
    rng = ensure_rng(seed)
    mid = (peak_rate + trough_rate) / 2.0
    amplitude = (peak_rate - trough_rate) / 2.0
    raw: List[Tuple[float, int]] = []
    two_pi = 2.0 * np.pi
    for client in range(n_clients):
        t = 0.0
        while True:
            t += rng.exponential(1.0 / peak_rate)
            if t >= horizon:
                break
            rate = mid + amplitude * np.sin(two_pi * t / period)
            if rng.uniform() < rate / peak_rate:
                raw.append((t, client))
    return _finalize(raw)
