"""Discrete-event DIA simulator (validation of the paper's §II analysis).

Build an :class:`~repro.core.offsets.OffsetSchedule` from any solved
assignment, generate a workload from :mod:`repro.sim.workload`, and run
:func:`~repro.sim.dia.simulate_assignment`. A healthy report certifies
that the schedule's lag is feasible and every pairwise interaction time
equals δ; see :mod:`repro.sim.dia` for the full list of certified
properties.
"""

from repro.sim.clocks import SimulationClock
from repro.sim.dia import (
    DIASimulation,
    DIASimulationReport,
    percentile_schedule,
    simulate_assignment,
)
from repro.sim.engine import EventEngine
from repro.sim.processing import ProcessingModel, ServerQueue
from repro.sim.events import (
    ExecutionDue,
    Operation,
    OperationMessage,
    StateUpdateMessage,
)
from repro.sim.sequencing import ordered_timed, sequence_timed
from repro.sim.workload import (
    adversarial_pair_workload,
    diurnal_workload,
    flash_crowd_workload,
    lockstep_workload,
    poisson_workload,
    uniform_workload,
)

__all__ = [
    "DIASimulation",
    "DIASimulationReport",
    "simulate_assignment",
    "percentile_schedule",
    "ProcessingModel",
    "ServerQueue",
    "EventEngine",
    "SimulationClock",
    "Operation",
    "OperationMessage",
    "StateUpdateMessage",
    "ExecutionDue",
    "ordered_timed",
    "sequence_timed",
    "poisson_workload",
    "uniform_workload",
    "lockstep_workload",
    "adversarial_pair_workload",
    "flash_crowd_workload",
    "diurnal_workload",
]
