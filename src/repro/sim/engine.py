"""A minimal deterministic discrete-event engine.

Events are ``(wall_time, tie_breaker, payload, handler)`` entries in a
binary heap. The tie breaker is a monotone sequence number, which makes
simultaneous events fire in scheduling order — the engine is fully
deterministic for a fixed input, a property the reproducibility tests
rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import registry

#: An event handler receives (wall_time, payload).
Handler = Callable[[float, Any], None]


class EventEngine:
    """Priority-queue event loop keyed on wall-clock time."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Any, Handler]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current wall-clock time (time of the event being processed)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, wall_time: float, payload: Any, handler: Handler) -> None:
        """Schedule ``handler(wall_time, payload)``.

        Scheduling into the past raises
        :class:`~repro.errors.SimulationError` — latencies are positive,
        so a well-formed simulation never needs it.
        """
        if wall_time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {wall_time} before now={self._now}"
            )
        heapq.heappush(
            self._queue, (wall_time, next(self._counter), payload, handler)
        )

    def run(self, *, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Dispatch events in time order.

        Stops when the queue empties, the next event exceeds ``until``,
        or ``max_events`` have been processed (raising in the last case,
        as a runaway guard).
        """
        # The per-event loop stays telemetry-free; the dispatched-event
        # count is flushed to the metrics registry once on exit.
        before = self._events_processed
        try:
            while self._queue:
                if self._events_processed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
                wall_time, _seq, payload, handler = self._queue[0]
                if until is not None and wall_time > until:
                    break
                heapq.heappop(self._queue)
                self._now = wall_time
                self._events_processed += 1
                handler(wall_time, payload)
        finally:
            dispatched = self._events_processed - before
            if dispatched:
                registry().counter("sim.events").inc(dispatched)
