"""Discrete-event simulation of a continuous DIA (validates §II).

The simulator replays the paper's interaction protocol over a solved
client assignment and an :class:`~repro.core.offsets.OffsetSchedule`:

- clients issue operations per a workload (client simulation clocks are
  the wall-clock reference; servers run ahead by their schedule offset);
- an operation travels client -> home server -> all other servers, each
  leg delayed by the latency matrix (optionally jittered);
- each server executes the operation when its *local simulation clock*
  reads ``issue_time + delta`` — i.e. the constant-lag rule that §II-B
  shows is necessary and sufficient for consistency + fairness;
- after executing, a server pushes a state update to each of its
  clients, who present the effect when their own clocks read
  ``issue_time + delta``.

What the simulation certifies (and the tests assert):

1. With ``delta = D`` (the maximum interaction path length) and no
   jitter, **no message is ever late**: every server receives every
   operation before its execution point and every client receives every
   update before its presentation point — constraints (i) and (ii).
2. Every server executes all operations in identical order at identical
   simulation times (consistency), which is exactly issuance order with
   a constant lag (fairness).
3. The measured interaction time between every ordered client pair is
   exactly ``delta`` (= D), matching §II-D's claim that the offsets make
   all pairwise interaction times equal.
4. With ``delta < D`` the protocol *must* break: some message is late
   (the analysis' converse).
5. Under jitter, lateness appears at a rate controlled by the planning
   percentile (§II-E); late executions are repaired timewarp-style
   (re-execution in corrected order) and counted.

With a :class:`~repro.faults.schedule.FaultSchedule` attached, the
network additionally **drops**, **duplicates** and **delays** messages:
drops are counted (a dropped operation leaves a hole in the affected
server's log, surfacing as inconsistency); duplicates are suppressed by
per-receiver delivery dedup, so at-least-once delivery stays safe; spike
delays produce late arrivals classified and repaired exactly like
jitter lateness (timewarp-style, consistent with §II-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.offsets import OffsetSchedule
from repro.errors import (
    ConsistencyViolation,
    FairnessViolation,
    SimulationError,
)
from repro.faults.models import MessageFate
from repro.faults.schedule import FaultSchedule
from repro.net.jitter import JitterModel, NoJitter
from repro.obs import DEFAULT_BUCKETS, registry, span
from repro.sim.clocks import SimulationClock
from repro.sim.engine import EventEngine
from repro.sim.events import (
    ExecutionDue,
    Operation,
    OperationMessage,
    StateUpdateMessage,
)
from repro.sim.processing import ProcessingModel, ServerQueue
from repro.utils.rng import SeedLike, ensure_rng

_TOL = 1e-9


@dataclass
class _ServerState:
    """Mutable per-server simulation state."""

    clock: SimulationClock
    #: Executed operations in execution order: (operation, exec_sim_time).
    log: List[Tuple[Operation, float]] = field(default_factory=list)
    #: Operations that arrived after their execution point.
    late_arrivals: List[Tuple[Operation, float]] = field(default_factory=list)
    #: Number of timewarp-style repairs (re-orderings after a late
    #: arrival executed out of order).
    repairs: int = 0
    #: Sequence numbers already delivered here (duplicate suppression).
    seen: Set[int] = field(default_factory=set)


@dataclass
class _ClientState:
    """Mutable per-client simulation state."""

    clock: SimulationClock
    #: Presented operations: operation -> presentation sim time.
    presented: Dict[int, float] = field(default_factory=dict)
    #: Updates that arrived after the presentation point.
    late_updates: List[Tuple[Operation, float]] = field(default_factory=list)
    #: Sequence numbers already delivered here (duplicate suppression).
    seen: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class DIASimulationReport:
    """Aggregate outcome of one simulation run."""

    #: The constant lag the run was planned with.
    delta: float
    #: Number of operations issued.
    n_operations: int
    #: Total protocol messages delivered.
    n_messages: int
    #: Operations that reached some server after its execution point.
    late_server_arrivals: int
    #: State updates that reached some client after its presentation point.
    late_client_updates: int
    #: Timewarp-style repairs performed at servers.
    repairs: int
    #: True iff all server logs are identical (same order, same
    #: execution simulation times).
    servers_consistent: bool
    #: True iff execution order equals issuance order with a constant
    #: lag at every server.
    fair: bool
    #: Measured interaction times: min and max over (operation,
    #: receiving client) pairs. Both equal ``delta`` in a healthy run.
    min_interaction_time: float
    max_interaction_time: float
    #: Largest server processing backlog observed (0 without a
    #: processing model).
    max_processing_backlog: float = 0.0
    #: Execution order equals issuance order at every server
    #: (``fair`` = this AND ``constant_lag``).
    order_preserved: bool = True
    #: The issuance-to-execution lag is the same constant for every
    #: operation — the paper's strict fairness criterion; bucket
    #: synchronization trades it away.
    constant_lag: bool = True
    #: Messages the (faulty) network dropped; each dropped operation
    #: message leaves a hole in one server's log.
    dropped_messages: int = 0
    #: Messages the network duplicated in flight.
    duplicated_messages: int = 0
    #: Redundant deliveries suppressed by receiver-side dedup (every
    #: duplicated message whose both copies arrived contributes one).
    duplicate_deliveries: int = 0

    @property
    def healthy(self) -> bool:
        """No lateness, consistent, fair."""
        return (
            self.late_server_arrivals == 0
            and self.late_client_updates == 0
            and self.servers_consistent
            and self.fair
        )

    def raise_for_violations(self) -> None:
        """Raise a typed error if the run violated the DIA guarantees.

        Useful when a caller ran with ``allow_late=True`` to *collect*
        statistics but still wants a hard failure on actual guarantee
        violations: raises :class:`~repro.errors.FairnessViolation` when
        the (post-repair) execution order or lag is wrong, and
        :class:`~repro.errors.ConsistencyViolation` when server logs
        diverged or messages were late. A healthy report returns
        silently; repairs alone (lateness recovered by timewarp) raise
        ConsistencyViolation because the users saw artifacts.
        """
        if not self.fair:
            raise FairnessViolation(
                "operations executed out of issuance order or with a "
                "non-constant lag"
            )
        if not self.servers_consistent:
            raise ConsistencyViolation("server execution logs diverged")
        late = self.late_server_arrivals + self.late_client_updates
        if late:
            raise ConsistencyViolation(
                f"{late} message(s) arrived after their deadline "
                f"({self.repairs} timewarp repair(s) performed)"
            )


class DIASimulation:
    """Simulate the DIA protocol for one assignment + offset schedule.

    Parameters
    ----------
    schedule:
        Offsets and lag; build with ``OffsetSchedule(assignment)`` for
        the minimal lag δ = D, or pass a larger δ for slack.
    jitter:
        Per-message latency noise; default none (deterministic run).
    seed:
        RNG for the jitter samples.
    allow_late:
        When ``False`` (default) a late message raises
        :class:`~repro.errors.ConsistencyViolation` immediately; when
        ``True`` lateness is recorded, the operation is executed/presented
        late, out-of-order executions are repaired timewarp-style, and
        counts appear in the report (the §II-E jitter study).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule`: messages
        are dropped/duplicated per its loss model and delayed by its
        latency spikes (multiplying the jitter factor). Duplicates are
        absorbed by receiver-side dedup; drops are counted and surface
        as log inconsistency. Spike-delayed messages go through the
        same lateness classification and timewarp repair as jitter —
        run with ``allow_late=True`` to collect them.
    """

    def __init__(
        self,
        schedule: OffsetSchedule,
        *,
        jitter: Optional[JitterModel] = None,
        seed: SeedLike = None,
        allow_late: bool = False,
        base_matrix: Optional[np.ndarray] = None,
        processing: Optional[ProcessingModel] = None,
        bucket_size: Optional[float] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self._schedule = schedule
        self._assignment = schedule.assignment
        self._problem = schedule.assignment.problem
        self._jitter = jitter if jitter is not None else NoJitter()
        self._rng = ensure_rng(seed)
        self._allow_late = allow_late
        self._faults = faults
        if faults is not None:
            faults.reset()
        self._n_dropped = 0
        self._n_duplicated = 0
        self._n_dup_delivered = 0
        self._processing = processing
        self._queues = ServerQueue(schedule.assignment.problem.n_servers)
        if bucket_size is not None and bucket_size <= 0:
            raise SimulationError(
                f"bucket_size must be positive, got {bucket_size}"
            )
        self._bucket_size = bucket_size
        # §II-E percentile planning: the schedule may have been computed
        # on an inflated (percentile) matrix while actual message
        # latencies are sampled around the true base matrix.
        if base_matrix is None:
            self._base = self._problem.matrix.values
        else:
            base = np.asarray(base_matrix, dtype=np.float64)
            if base.shape != self._problem.matrix.values.shape:
                raise SimulationError(
                    f"base_matrix shape {base.shape} does not match the "
                    f"problem matrix {self._problem.matrix.values.shape}"
                )
            self._base = base

        problem = self._problem
        self._servers = [
            _ServerState(SimulationClock(float(off)))
            for off in schedule.server_offsets
        ]
        self._clients = [
            _ClientState(SimulationClock(0.0)) for _ in range(problem.n_clients)
        ]
        # Clients of each server, precomputed.
        self._clients_of: List[np.ndarray] = [
            np.flatnonzero(self._assignment.server_of == s)
            for s in range(problem.n_servers)
        ]
        self._engine = EventEngine()
        self._n_messages = 0
        self._interaction_times: List[float] = []
        # One histogram lookup per simulator, not per message.
        self._m_latency = registry().histogram(
            "sim.message_latency_ms", DEFAULT_BUCKETS
        )

    # ------------------------------------------------------------------
    # Latency sampling
    # ------------------------------------------------------------------
    def _latency(self, src_node: int, dst_node: int, wall: float) -> float:
        base = self._base[src_node, dst_node]
        factor = float(self._jitter.sample_factor(self._rng, size=1)[0])
        if self._faults is not None:
            factor *= self._faults.latency_factor(src_node, dst_node, wall)
        return base * factor

    def _transmit(self, wall: float, src_node: int, dst_node: int, message, handler) -> None:
        """Send one protocol message through the (possibly faulty) network.

        Consults the fault schedule for the message's fate: dropped
        messages are counted and never delivered; duplicated messages
        are delivered twice with independently sampled latencies
        (receiver-side dedup keeps the protocol idempotent).
        """
        self._n_messages += 1
        fate = MessageFate.DELIVER
        if self._faults is not None:
            fate = self._faults.message_fate(self._rng)
        if fate == MessageFate.DROP:
            self._n_dropped += 1
            return
        copies = 1
        if fate == MessageFate.DUPLICATE:
            self._n_duplicated += 1
            copies = 2
        for _ in range(copies):
            latency = self._latency(src_node, dst_node, wall)
            self._m_latency.observe(latency)
            self._engine.schedule(wall + latency, message, handler)

    def _client_node(self, client: int) -> int:
        return int(self._problem.clients[client])

    def _server_node(self, server: int) -> int:
        return int(self._problem.servers[server])

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _issue(self, wall: float, operation: Operation) -> None:
        client = operation.client
        home = self._assignment.server_of_client(client)
        self._transmit(
            wall,
            self._client_node(client),
            self._server_node(home),
            OperationMessage(operation, home, first_leg=True),
            self._receive_operation,
        )

    def _receive_operation(self, wall: float, message: OperationMessage) -> None:
        server = message.dest_server
        operation = message.operation
        state = self._servers[server]
        # Duplicate suppression: each server legitimately receives each
        # operation exactly once (first leg at the home server, one
        # forwarded copy elsewhere), so a repeat seq here can only be a
        # network duplicate — absorbing it keeps delivery idempotent.
        if operation.seq in state.seen:
            self._n_dup_delivered += 1
            return
        state.seen.add(operation.seq)
        if message.first_leg:
            # Forward to every other server.
            src = self._server_node(server)
            for other in range(self._problem.n_servers):
                if other == server:
                    continue
                self._transmit(
                    wall,
                    src,
                    self._server_node(other),
                    OperationMessage(operation, other, first_leg=False),
                    self._receive_operation,
                )
        exec_sim = self._intended_exec_sim(operation)
        exec_wall = state.clock.wall_time(exec_sim)
        if wall <= exec_wall + _TOL:
            self._engine.schedule(
                exec_wall, ExecutionDue(operation, server), self._execute
            )
            return
        # Late arrival: constraint (i) violated for this message.
        state.late_arrivals.append((operation, wall))
        if not self._allow_late:
            raise ConsistencyViolation(
                f"operation {operation} reached server {server} at wall "
                f"{wall:.6f}, after its execution point {exec_wall:.6f}"
            )
        # Timewarp-style recovery: roll back, re-execute at the intended
        # simulation time (retroactively), and count the repair if the
        # log actually had to be reordered.
        self._apply_execution(wall, server, operation, exec_sim, retroactive=True)

    def _intended_exec_sim(self, operation: Operation) -> float:
        """The simulation time every server must execute ``operation`` at.

        Constant lag by default (the paper's local-lag style criterion);
        with ``bucket_size`` set, quantized up to the next bucket
        boundary (bucket synchronization, Gautier et al. [12]).
        """
        exec_sim = operation.issue_sim_time + self._schedule.delta
        if self._bucket_size is not None:
            import math

            exec_sim = math.ceil(exec_sim / self._bucket_size) * self._bucket_size
        return exec_sim

    def _execute(self, wall: float, due: ExecutionDue) -> None:
        # Record the *intended* execution simulation time rather than
        # recomputing it from the wall clock: the sim->wall->sim float
        # round trip differs per server offset by ~1e-10, which would
        # make bitwise log comparison across servers spuriously fail.
        exec_sim = self._intended_exec_sim(due.operation)
        self._apply_execution(wall, due.server, due.operation, exec_sim, retroactive=False)

    def _apply_execution(
        self,
        wall: float,
        server: int,
        operation: Operation,
        exec_sim: float,
        *,
        retroactive: bool,
    ) -> None:
        state = self._servers[server]
        entry = (operation, exec_sim)
        key = (round(exec_sim, 9), operation.seq)
        log = state.log
        if log and (round(log[-1][1], 9), log[-1][0].seq) > key:
            # Out-of-order landing. Two on-time operations can only tie
            # on simulation time (their timers fire in wall order, and
            # wall order equals simulation order on one clock), so the
            # deterministic seq tie-break is a normalization, not a
            # repair. A retroactive (late) execution jumping over
            # later-sim entries is a genuine timewarp repair.
            if retroactive and round(log[-1][1], 9) > key[0]:
                state.repairs += 1
            log.append(entry)
            log.sort(key=lambda e: (round(e[1], 9), e[0].seq))
        else:
            log.append(entry)
        # Server processing (§IV-E): the update leaves the server only
        # after its FIFO service time; an overloaded server's backlog
        # delays every subsequent update.
        send_wall = wall
        if self._processing is not None:
            service = self._processing.effective_service_time(
                len(self._clients_of[server])
            )
            send_wall = self._queues.submit(server, wall, service)
        src = self._server_node(server)
        for client in self._clients_of[server]:
            client = int(client)
            self._transmit(
                send_wall,
                src,
                self._client_node(client),
                StateUpdateMessage(operation, server, client, exec_sim),
                self._receive_update,
            )

    def _receive_update(self, wall: float, message: StateUpdateMessage) -> None:
        client = self._clients[message.dest_client]
        operation = message.operation
        if operation.seq in client.seen:
            self._n_dup_delivered += 1
            return
        client.seen.add(operation.seq)
        # Clients present the effect when their clocks reach the
        # execution simulation time (== issuance + delta under the
        # constant-lag criterion; the next bucket boundary under bucket
        # synchronization).
        present_sim = message.execution_sim_time
        arrival_sim = client.clock.sim_time(wall)
        if arrival_sim > present_sim + _TOL:
            client.late_updates.append((operation, arrival_sim))
            if not self._allow_late:
                raise ConsistencyViolation(
                    f"update for {operation} reached client "
                    f"{message.dest_client} at sim {arrival_sim:.6f}, after "
                    f"its presentation point {present_sim:.6f}"
                )
        presented_at = max(present_sim, arrival_sim)
        client.presented[operation.seq] = presented_at
        self._interaction_times.append(presented_at - operation.issue_sim_time)

    # ------------------------------------------------------------------
    # Run + verification
    # ------------------------------------------------------------------
    def run(self, operations: Sequence[Operation]) -> DIASimulationReport:
        """Execute the workload and return the report.

        Raises :class:`~repro.errors.SimulationError` subclasses when
        ``allow_late`` is False and the schedule is violated.
        """
        with span("sim.run", operations=len(operations)):
            for operation in operations:
                # Client clocks are the wall reference: issue wall time
                # == issue sim time.
                self._engine.schedule(
                    operation.issue_sim_time, operation, self._issue
                )
            self._engine.run()
        registry().counter("sim.messages").inc(self._n_messages)

        servers_consistent = self._check_server_consistency()
        order_preserved = self._check_order_preserved()
        constant_lag = self._check_constant_lag()
        times = np.asarray(self._interaction_times)
        return DIASimulationReport(
            delta=self._schedule.delta,
            n_operations=len(operations),
            n_messages=self._n_messages,
            late_server_arrivals=sum(
                len(s.late_arrivals) for s in self._servers
            ),
            late_client_updates=sum(
                len(c.late_updates) for c in self._clients
            ),
            repairs=sum(s.repairs for s in self._servers),
            servers_consistent=servers_consistent,
            fair=order_preserved and constant_lag,
            min_interaction_time=float(times.min()) if times.size else np.nan,
            max_interaction_time=float(times.max()) if times.size else np.nan,
            max_processing_backlog=self._queues.max_backlog,
            order_preserved=order_preserved,
            constant_lag=constant_lag,
            dropped_messages=self._n_dropped,
            duplicated_messages=self._n_duplicated,
            duplicate_deliveries=self._n_dup_delivered,
        )

    def _check_server_consistency(self) -> bool:
        """All server logs identical: same order, same execution sim times."""
        logs = [
            [(op.seq, round(t, 9)) for op, t in state.log]
            for state in self._servers
        ]
        return all(log == logs[0] for log in logs[1:]) if logs else True

    def _check_order_preserved(self) -> bool:
        """Execution order equals issuance order at every server."""
        for state in self._servers:
            seqs = [op.seq for op, _t in state.log]
            if seqs != sorted(seqs):
                return False
        return True

    def _check_constant_lag(self) -> bool:
        """The issuance-to-execution lag is the same constant everywhere.

        This is the paper's strict fairness criterion (interval
        preservation). Bucket synchronization intentionally violates it:
        lags vary within [delta, delta + bucket_size).
        """
        for state in self._servers:
            for op, exec_sim in state.log:
                lag = exec_sim - op.issue_sim_time
                if abs(lag - self._schedule.delta) > 1e-6 * max(
                    1.0, self._schedule.delta
                ):
                    return False
        return True


def simulate_assignment(
    schedule: OffsetSchedule,
    operations: Sequence[Operation],
    *,
    jitter: Optional[JitterModel] = None,
    seed: SeedLike = None,
    allow_late: bool = False,
    base_matrix: Optional[np.ndarray] = None,
    processing: Optional[ProcessingModel] = None,
    bucket_size: Optional[float] = None,
    faults: Optional[FaultSchedule] = None,
) -> DIASimulationReport:
    """One-call convenience wrapper around :class:`DIASimulation`."""
    sim = DIASimulation(
        schedule,
        jitter=jitter,
        seed=seed,
        allow_late=allow_late,
        base_matrix=base_matrix,
        processing=processing,
        bucket_size=bucket_size,
        faults=faults,
    )
    return sim.run(operations)


def percentile_schedule(
    assignment, jitter: JitterModel, q: float = 90.0
) -> OffsetSchedule:
    """Plan a schedule against the ``q``-th percentile latencies (§II-E).

    Rebuilds the problem on the percentile-inflated matrix (same servers,
    clients and capacities) and returns the minimal-lag schedule for the
    same client-to-server mapping. Simulate it against the *base* matrix
    by passing ``base_matrix=assignment.problem.matrix.values`` to
    :func:`simulate_assignment`; higher ``q`` trades a longer lag δ for a
    lower late-message rate.
    """
    from repro.core.assignment import Assignment
    from repro.core.problem import ClientAssignmentProblem
    from repro.net.jitter import percentile_matrix
    from repro.net.latency import LatencyMatrix

    problem = assignment.problem
    inflated = LatencyMatrix(
        percentile_matrix(problem.matrix.values, jitter, q), validate=False
    )
    capacities = problem.capacities
    inflated_problem = ClientAssignmentProblem(
        inflated,
        problem.servers,
        problem.clients,
        capacities=None if capacities is None else capacities.copy(),
    )
    inflated_assignment = Assignment(inflated_problem, assignment.server_of)
    return OffsetSchedule(inflated_assignment)
