"""Event and message types for the DIA discrete-event simulation.

The protocol being simulated is the paper's §II-A interaction process:

1. ``OperationIssued`` — a client issues an operation at a simulation
   time ``t`` (its local clock) and unicasts it to its assigned server.
2. ``OperationMessage`` — in flight client -> home server, then home
   server -> every other server (forwarding).
3. ``ExecutionDue`` — a server's local simulation clock reaches
   ``t + delta``; the operation executes and state updates go out.
4. ``StateUpdateMessage`` — in flight server -> each of its clients.

Wall-clock time is the event queue's key; each node converts to its
local simulation time through its clock offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Operation:
    """A user operation.

    Ordering is by issuance simulation time then sequence number, which
    is exactly the fairness-relevant issuance order.
    """

    #: Issuance time on the issuing client's simulation clock.
    issue_sim_time: float
    #: Global sequence number (unique, assigned by the workload).
    seq: int
    #: Local index of the issuing client.
    client: int = field(compare=False)

    def __repr__(self) -> str:
        return f"Op(seq={self.seq}, client={self.client}, t={self.issue_sim_time:.3f})"


@dataclass(frozen=True)
class OperationMessage:
    """An operation in flight toward a server."""

    operation: Operation
    #: Local index of the destination server.
    dest_server: int
    #: True for the client -> home-server leg; False for forwarding.
    first_leg: bool


@dataclass(frozen=True)
class StateUpdateMessage:
    """A state update in flight toward a client."""

    operation: Operation
    #: Local index of the originating server.
    src_server: int
    #: Local index of the destination client.
    dest_client: int
    #: Simulation time at which the operation was executed (should be
    #: ``issue_sim_time + delta`` when the system is healthy).
    execution_sim_time: float


@dataclass(frozen=True)
class ExecutionDue:
    """Internal server timer: execute the operation now."""

    operation: Operation
    server: int
