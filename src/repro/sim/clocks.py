"""Simulation clocks with constant offsets (paper §II-B).

Every server and client keeps a *simulation time* that advances at the
same rate as wall-clock time but with a constant per-node offset.
The reference is the shared client simulation time (the paper's offset
scheme synchronizes all clients), so a node with offset ``o`` has

    sim_time(wall) = wall + o        wall(sim_time) = sim_time - o

Servers run *ahead* of clients (positive offsets) so that state updates
computed at simulation time ``t + delta`` arrive at clients before the
clients' own clocks reach ``t + delta``.
"""

from __future__ import annotations


class SimulationClock:
    """A constant-offset mapping between wall time and simulation time."""

    __slots__ = ("_offset",)

    def __init__(self, offset: float = 0.0) -> None:
        self._offset = float(offset)

    @property
    def offset(self) -> float:
        """Simulation-time offset relative to the client reference."""
        return self._offset

    def sim_time(self, wall_time: float) -> float:
        """Simulation time at a given wall-clock time."""
        return wall_time + self._offset

    def wall_time(self, sim_time: float) -> float:
        """Wall-clock time at which this clock reads ``sim_time``."""
        return sim_time - self._offset

    def __repr__(self) -> str:
        return f"SimulationClock(offset={self._offset:+.3f})"
