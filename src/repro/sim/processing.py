"""Server processing-delay models (paper §II-E / §IV-E motivation).

The paper's formulation deliberately excludes server processing delays,
arguing they are easier to fix than network latency ("a busy server can
always be better provisioned") — and handles the residual risk through
capacity limits (§IV-E): assigning more clients to a server than its
capacity "may result in significant increase in the processing delay,
damaging the interactivity".

This module lets the discrete-event simulator quantify that argument. A
:class:`ProcessingModel` turns each operation execution into a FIFO job
on the executing server: the state update leaves the server only after
its service time, and an overloaded server builds a backlog that
delays updates past the clients' presentation points. Running the same
workload with and without capacity limits shows exactly the §IV-E
failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ProcessingModel:
    """FIFO server processing with a per-operation service time.

    Parameters
    ----------
    service_time:
        Milliseconds of server compute per (operation, subscribed
        client-update batch). The update for an operation leaves the
        server ``service_time`` after the server starts processing it,
        and a server processes one operation at a time.
    load_factor:
        Optional additional per-assigned-client cost: the effective
        service time is ``service_time * (1 + load_factor * n_clients)``,
        modelling per-recipient serialization/marshalling work. Zero by
        default (constant service time).
    """

    service_time: float
    load_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {self.service_time}")
        if self.load_factor < 0:
            raise ValueError(f"load_factor must be >= 0, got {self.load_factor}")

    def effective_service_time(self, n_clients: int) -> float:
        """Service time for a server currently serving ``n_clients``."""
        return self.service_time * (1.0 + self.load_factor * n_clients)


class ServerQueue:
    """Per-server FIFO backlog tracker used by the simulator."""

    __slots__ = ("_busy_until", "_jobs", "_max_backlog")

    def __init__(self, n_servers: int) -> None:
        self._busy_until = np.zeros(n_servers)
        self._jobs = np.zeros(n_servers, dtype=np.int64)
        self._max_backlog = 0.0

    def submit(self, server: int, wall: float, service_time: float) -> float:
        """Enqueue a job arriving at ``wall``; returns its completion time."""
        start = max(wall, float(self._busy_until[server]))
        completion = start + service_time
        self._busy_until[server] = completion
        self._jobs[server] += 1
        backlog = start - wall
        if backlog > self._max_backlog:
            self._max_backlog = backlog
        return completion

    @property
    def max_backlog(self) -> float:
        """Largest queueing delay (ms) any job experienced."""
        return self._max_backlog

    def jobs_processed(self, server: Optional[int] = None) -> int:
        """Jobs processed by one server (or all servers)."""
        if server is None:
            return int(self._jobs.sum())
        return int(self._jobs[server])
