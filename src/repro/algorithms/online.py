"""Online client assignment under churn.

The paper's §VI argues that, unlike server placement, client assignment
"can be adjusted promptly to adapt to system dynamics". This module
makes that concrete: an :class:`OnlineAssignmentManager` maintains an
assignment while clients **join and leave**, using the same move-cost
machinery as Distributed-Greedy:

- **join**: the arriving client is placed on the server minimizing the
  resulting maximum interaction path length through that client
  (``L(s') = max_{s''} d(c, s') + d(s', s'') + l(s'')``), respecting
  capacities — an O(|S|^2) decision, no global recomputation;
- **leave**: the client is removed and its server's farthest-client
  summary refreshed;
- **rebalance**: run a bounded number of Distributed-Greedy
  modifications to repair accumulated drift.

A :func:`simulate_churn` driver replays a Poisson arrival/departure
process and records D over time with and without periodic rebalancing,
so the value of prompt reassignment is measurable (see
``benchmarks/bench_online.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.algorithms.policies import (
    OnlinePolicy,
    PlacementView,
    resolve_policy,
    validate_policy_name,
)
from repro.core.assignment import Assignment
from repro.core.incremental import DEFAULT_TOP_K, IncrementalObjective
from repro.core.metrics import max_interaction_path_length
from repro.core.problem import ClientAssignmentProblem
from repro.errors import (
    CapacityError,
    FailoverError,
    InvalidAssignmentError,
    InvalidParameterError,
)
from repro.net.latency import LatencyMatrix
from repro.net.provider import LatencyProvider
from repro.obs import registry
from repro.types import IndexArrayLike, as_index_array
from repro.utils.rng import SeedLike, ensure_rng


_UNSET: Any = object()


@dataclass(frozen=True)
class OnlineConfig:
    """Typed configuration for :class:`OnlineAssignmentManager`.

    Consolidates the manager's former keyword sprawl into one validated
    object that can be passed around, serialized (:meth:`to_dict` /
    :meth:`from_dict`), and shared between the library path and the
    service layer (:mod:`repro.service`).

    Parameters
    ----------
    capacity:
        Optional uniform per-server client capacity (``None`` =
        unlimited).
    join_policy:
        Placement rule for arrivals, by name from the
        :mod:`repro.algorithms.policies` registry: ``"greedy"``
        minimizes the resulting D, ``"nearest"`` is the
        deployed-system default; ``"threshold"`` and ``"spread"`` are
        remediation-style policies (see ``docs/scenarios.md``).
    backend:
        Kernel backend for the manager's incremental engine — one of
        ``"auto"`` (default), ``"numba"``, ``"numpy"``; see
        :func:`repro.kernels.resolve_backend` and
        ``docs/performance.md``. New knob, no deprecation shims.
    top_k:
        Per-server, per-direction top-k retention of the engine's
        farthest-client lists (default
        :data:`repro.core.incremental.DEFAULT_TOP_K`). Larger values
        trade memory for fewer lazy rebuilds under heavy churn.
    shards:
        Number of region shards for
        :class:`~repro.scale.sharded.ShardedOnlineManager` (default 1 =
        a single unsharded manager). The plain
        :class:`OnlineAssignmentManager` ignores this knob; it exists on
        the config so the service layer can carry one serialized object
        for both deployment shapes.
    """

    capacity: Optional[int] = None
    join_policy: str = "greedy"
    backend: str = "auto"
    top_k: int = DEFAULT_TOP_K
    shards: int = 1

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        validate_policy_name(self.join_policy)
        from repro.kernels import validate_backend_name

        validate_backend_name(self.backend)
        if self.top_k < 2:
            raise InvalidParameterError(
                f"top_k must be >= 2, got {self.top_k}"
            )
        if self.shards < 1:
            raise InvalidParameterError(
                f"shards must be >= 1, got {self.shards}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (stable keys, scalars only)."""
        return {
            "capacity": None if self.capacity is None else int(self.capacity),
            "join_policy": self.join_policy,
            "backend": self.backend,
            "top_k": int(self.top_k),
            "shards": int(self.shards),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OnlineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        ``backend`` / ``top_k`` / ``shards`` default when absent so
        configs (and checkpoints) serialized before those knobs existed
        keep loading.
        """
        capacity = data.get("capacity")
        return cls(
            capacity=None if capacity is None else int(capacity),
            join_policy=str(data.get("join_policy", "greedy")),
            backend=str(data.get("backend", "auto")),
            top_k=int(data.get("top_k", DEFAULT_TOP_K)),
            shards=int(data.get("shards", 1)),
        )

    def merge_legacy_kwargs(
        self, where: str, *, capacity: Any = _UNSET, join_policy: Any = _UNSET
    ) -> "OnlineConfig":
        """Fold deprecated constructor keywords into a config.

        Emits one :class:`DeprecationWarning` per call site kind and
        refuses silently conflicting double specification.
        """
        updates: Dict[str, Any] = {}
        if capacity is not _UNSET:
            updates["capacity"] = capacity
        if join_policy is not _UNSET:
            updates["join_policy"] = join_policy
        if not updates:
            return self
        warnings.warn(
            f"passing {sorted(updates)} directly to {where} is deprecated; "
            f"pass config=OnlineConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        for key, value in updates.items():
            if getattr(self, key) != OnlineConfig.__dataclass_fields__[
                key
            ].default:
                raise InvalidParameterError(
                    f"{key} specified both in config and as a keyword"
                )
        return OnlineConfig(**{**self.to_dict(), **updates})


class OnlineAssignmentManager:
    """Maintains a client assignment under joins, leaves and rebalances.

    Parameters
    ----------
    matrix:
        Latency source over the node universe — a dense
        :class:`~repro.net.latency.LatencyMatrix` or any other
        :class:`~repro.net.provider.LatencyProvider`.
    servers:
        Node indices hosting servers.
    config:
        An :class:`OnlineConfig`; the legacy ``capacity=`` /
        ``join_policy=`` keywords remain accepted but deprecated.
    client_nodes:
        Optional restriction of the joinable client universe to these
        node indices (the region-sharding hook:
        :class:`~repro.scale.sharded.ShardedOnlineManager` gives each
        shard the nodes routed to it). ``None`` (the default) keeps the
        historical behavior — every node may join.

    Notes
    -----
    Clients are identified by their **node index** in the matrix. The
    manager's state lives in an
    :class:`~repro.core.incremental.IncrementalObjective` over the
    client universe (partial assignment: unconnected nodes are simply
    unassigned), which keeps the per-server farthest-client summaries
    (the ``l(s)`` of the paper's §IV-D, split by direction) and the
    best-completion reductions cached. Joins and move-cost queries are
    O(|S|) on warm caches and the current D is always available from the
    engine's cache — independent of the number of connected clients.
    """

    def __init__(
        self,
        matrix: LatencyProvider,
        servers: IndexArrayLike,
        config: Optional[OnlineConfig] = None,
        *,
        capacity: Any = _UNSET,
        join_policy: Any = _UNSET,
        client_nodes: Optional[IndexArrayLike] = None,
    ) -> None:
        config = (config or OnlineConfig()).merge_legacy_kwargs(
            "OnlineAssignmentManager",
            capacity=capacity,
            join_policy=join_policy,
        )
        self._matrix = matrix
        self._servers = as_index_array(servers, "servers")
        if self._servers.size == 0:
            raise InvalidParameterError("need at least one server")
        self._config = config
        self._capacity = config.capacity
        self._join_policy = config.join_policy
        self._policy = resolve_policy(config.join_policy)
        #: node -> local server index
        self._assigned: Dict[int, int] = {}
        #: per-server member node sets
        self._members: List[Set[int]] = [set() for _ in range(self._servers.size)]
        #: per-server liveness; crashed servers are excluded from every
        #: placement decision until reactivated
        self._active = np.ones(self._servers.size, dtype=bool)
        #: per-server reachability; partitioned servers are excluded
        #: from placement like crashed ones, but keep their members
        #: (clients ride out the partition on a stale assignment)
        self._reachable = np.ones(self._servers.size, dtype=bool)
        # Incremental objective over the client universe; connected
        # clients are assigned, everything else stays unassigned. The
        # manager's uniform capacity and liveness masks are applied at
        # decision time, so the engine's problem carries no capacities.
        # Without a client_nodes restriction the universe's local client
        # index coincides with the node index (clients default to every
        # node), so no translation happens on that path; a restricted
        # universe carries an explicit node -> engine-index map.
        if client_nodes is None:
            self._client_nodes: Optional[np.ndarray] = None
            self._node_to_engine: Optional[Dict[int, int]] = None
            self._universe = ClientAssignmentProblem(matrix, self._servers)
        else:
            nodes = as_index_array(client_nodes, "client_nodes")
            if nodes.size == 0:
                raise InvalidParameterError(
                    "client_nodes must be non-empty when given"
                )
            self._client_nodes = nodes
            self._node_to_engine = {int(n): i for i, n in enumerate(nodes)}
            self._universe = ClientAssignmentProblem(
                matrix, self._servers, clients=nodes
            )
        self._engine = IncrementalObjective(
            self._universe,
            history=False,
            k=config.top_k,
            backend=config.backend,
        )

    def _engine_index(self, client_node: int) -> int:
        """The engine's local client index for a node (identity when the
        universe is unrestricted)."""
        if self._node_to_engine is None:
            return client_node
        try:
            return self._node_to_engine[client_node]
        except KeyError:
            raise InvalidAssignmentError(
                f"client node {client_node} is outside this manager's "
                f"client universe"
            ) from None

    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        """Number of servers."""
        return int(self._servers.size)

    @property
    def config(self) -> OnlineConfig:
        """The manager's resolved configuration."""
        return self._config

    @property
    def capacity(self) -> Optional[int]:
        """Uniform per-server client capacity (None = unlimited)."""
        return self._capacity

    @property
    def server_nodes(self) -> np.ndarray:
        """Node indices of the servers (copy)."""
        return self._servers.copy()

    @property
    def matrix(self) -> LatencyProvider:
        """The latency provider the manager operates on."""
        return self._matrix

    @property
    def client_nodes(self) -> Optional[np.ndarray]:
        """The restricted client universe, or ``None`` (= every node)."""
        if self._client_nodes is None:
            return None
        return self._client_nodes.copy()

    @property
    def n_clients(self) -> int:
        """Number of currently connected clients."""
        return len(self._assigned)

    @property
    def clients(self) -> Tuple[int, ...]:
        """Currently connected client nodes (sorted)."""
        return tuple(sorted(self._assigned))

    def server_of(self, client_node: int) -> int:
        """Local server index of a connected client."""
        return self._assigned[client_node]

    def is_connected(self, client_node: int) -> bool:
        """Whether ``client_node`` is currently connected."""
        return client_node in self._assigned

    def loads(self) -> np.ndarray:
        """Per-server client counts."""
        return np.array([len(m) for m in self._members], dtype=np.int64)

    # ------------------------------------------------------------------
    # Server liveness (fail-stop crash / recovery support)
    # ------------------------------------------------------------------
    @property
    def n_active_servers(self) -> int:
        """Number of servers currently up."""
        return int(self._active.sum())

    def is_active(self, server: int) -> bool:
        """Whether local server ``server`` is up."""
        self._check_server_index(server)
        return bool(self._active[server])

    def members_of(self, server: int) -> Tuple[int, ...]:
        """Client nodes currently assigned to a server (sorted)."""
        self._check_server_index(server)
        return tuple(sorted(self._members[server]))

    def _check_server_index(self, server: int) -> None:
        if not 0 <= server < self.n_servers:
            raise InvalidParameterError(
                f"server index {server} out of range [0, {self.n_servers})"
            )

    def deactivate_server(self, server: int) -> Tuple[int, ...]:
        """Mark a server as crashed (fail-stop).

        The server is excluded from every subsequent placement decision
        (joins, evacuations, rebalances) until
        :meth:`reactivate_server`. Its members are **not** moved — call
        :meth:`evacuate` to reassign them. Returns the stranded client
        nodes so the caller can drive the evacuation. Idempotent.
        """
        self._check_server_index(server)
        self._active[server] = False
        return tuple(sorted(self._members[server]))

    def reactivate_server(self, server: int) -> None:
        """Mark a previously crashed server as up again. Idempotent.

        The recovered server starts empty; run :meth:`rebalance` to move
        clients back onto it where that shortens interaction paths.
        """
        self._check_server_index(server)
        self._active[server] = True

    # ------------------------------------------------------------------
    # Server reachability (network partition support)
    # ------------------------------------------------------------------
    @property
    def n_reachable_servers(self) -> int:
        """Number of servers not currently behind a partition."""
        return int(self._reachable.sum())

    @property
    def n_usable_servers(self) -> int:
        """Number of servers both up and reachable."""
        return int((self._active & self._reachable).sum())

    def is_reachable(self, server: int) -> bool:
        """Whether local server ``server`` is on our side of the network."""
        self._check_server_index(server)
        return bool(self._reachable[server])

    def partition_server(self, server: int) -> Tuple[int, ...]:
        """Mark a server as unreachable (network partition). Idempotent.

        Unlike :meth:`deactivate_server`, the server is presumed still
        *running*: its members stay assigned (serving with a stale
        assignment) but it is excluded from every placement decision —
        joins, moves, evacuations and rebalances — until
        :meth:`heal_server`. Returns the member nodes riding out the
        partition.
        """
        self._check_server_index(server)
        self._reachable[server] = False
        return tuple(sorted(self._members[server]))

    def heal_server(self, server: int) -> None:
        """Mark a partitioned server as reachable again. Idempotent."""
        self._check_server_index(server)
        self._reachable[server] = True

    def _usable(self) -> np.ndarray:
        """Boolean mask of servers valid as placement targets."""
        return self._active & self._reachable

    def move(self, client_node: int, server: int) -> None:
        """Reassign a connected client to a specific usable server."""
        if client_node not in self._assigned:
            raise InvalidAssignmentError(f"client {client_node} is not connected")
        self._check_server_index(server)
        if not self._active[server]:
            raise FailoverError(f"cannot move client onto down server {server}")
        if not self._reachable[server]:
            raise FailoverError(
                f"cannot move client onto unreachable server {server}"
            )
        if (
            self._capacity is not None
            and self._assigned[client_node] != server
            and len(self._members[server]) >= self._capacity
        ):
            raise CapacityError(f"server {server} is at capacity")
        old = self._assigned[client_node]
        if old != server:
            self._members[old].discard(client_node)
            self._members[server].add(client_node)
            self._assigned[client_node] = server
            self._engine.apply(self._engine_index(client_node), server)

    def evacuate(self, server: int) -> List[Tuple[int, int]]:
        """Reassign every client of ``server`` onto the active servers.

        Capacity-aware and greedy: clients are drained farthest-first
        (largest round trip to their dead server first) and each is
        placed by the same ``L(s')`` move-cost rule as a join. The whole
        evacuation is feasibility-checked up front so a failed
        evacuation never leaves the manager half-moved; insufficient
        surviving capacity raises :class:`~repro.errors.FailoverError`.

        Returns the ``(client_node, new_server)`` moves made.
        """
        self._check_server_index(server)
        stranded = self._members[server]
        if not stranded:
            return []
        if self._active[server]:
            raise FailoverError(
                f"server {server} is still active; deactivate it before "
                f"evacuating (or use move() to drain it)"
            )
        usable = self._usable()
        if not usable.any():
            raise FailoverError(
                "every server is down or unreachable; nowhere to evacuate to"
            )
        if self._capacity is not None:
            loads = self.loads()
            free = int(
                (self._capacity - loads[usable]).clip(min=0).sum()
            )
            if free < len(stranded):
                raise FailoverError(
                    f"cannot evacuate server {server}: {len(stranded)} "
                    f"client(s) stranded but only {free} free slot(s) on "
                    f"surviving servers"
                )
        # Round trips to the dead server via provider block calls — one
        # (|stranded|, 1) slice per direction, never the dense matrix.
        stranded_arr = np.fromiter(stranded, dtype=np.int64, count=len(stranded))
        node = self._servers[server]
        node_arr = np.array([node], dtype=np.int64)
        to_node = self._matrix.client_server_distances(stranded_arr, node_arr)
        from_node = self._matrix.server_client_distances(node_arr, stranded_arr)
        round_trip = {
            int(c): max(float(to_node[i, 0]), float(from_node[0, i]))
            for i, c in enumerate(stranded_arr)
        }
        order = sorted(stranded, key=lambda c: (-round_trip[c], c))
        moves: List[Tuple[int, int]] = []
        for client in order:
            costs = self._candidate_costs(client, exclude_self=True)
            best = int(np.argmin(costs))
            if not np.isfinite(costs[best]):
                # Unreachable given the up-front feasibility check, but
                # fail loudly rather than corrupt state.
                raise FailoverError(
                    f"no feasible server for evacuated client {client}"
                )
            self.move(client, best)
            moves.append((client, best))
        return moves

    # ------------------------------------------------------------------
    def current_d(self) -> float:
        """The maximum interaction path length of the current state.

        Served from the incremental engine's cache (exact, directional).
        Returns 0.0 with no clients connected.
        """
        return self._engine.d()

    def l_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(l_out, l_in)`` per-server farthest-client legs (copies).

        Unused servers hold ``-inf``. The sharded manager merges these
        across shards (elementwise max) to recover the exact global D.
        """
        return self._engine.l_vectors()

    def _candidate_costs(self, client_node: int, *, exclude_self: bool) -> np.ndarray:
        """L(s') for assigning ``client_node`` to each server.

        Served by the incremental engine in O(|S|) on warm caches. A
        connected client's own contribution is always excluded by the
        engine (``exclude_self`` is only meaningful for connected
        clients; joins pass ``False`` for documentation value).
        """
        del exclude_self  # the engine excludes a connected client itself
        costs, _d_rest = self._engine.candidate_paths(
            self._engine_index(client_node)
        )
        if self._capacity is not None:
            loads = self._engine.loads
            if client_node in self._assigned:
                loads[self._assigned[client_node]] -= 1
            costs = np.where(loads >= self._capacity, np.inf, costs)
        return np.where(self._usable(), costs, np.inf)

    def candidate_costs(self, client_node: int) -> np.ndarray:
        """Public masked ``L(s')`` vector for a client (policy seam).

        For a connected client the cost of staying put is included
        (own contribution excluded by the engine; own capacity slot
        credited back), so remediation policies can compare "stay"
        against every alternative. Unusable or saturated servers hold
        ``+inf``.
        """
        return self._candidate_costs(
            client_node, exclude_self=client_node in self._assigned
        )

    def _nearest_join_costs(self, client_node: int) -> np.ndarray:
        """Masked outgoing legs for a join (the historical nearest rule)."""
        costs = self._matrix.client_server_distances(
            np.array([client_node], dtype=np.int64), self._servers
        )[0].astype(float)
        if self._capacity is not None:
            costs = np.where(self.loads() >= self._capacity, np.inf, costs)
        return np.where(self._usable(), costs, np.inf)

    def placement_view(self, client_node: int) -> PlacementView:
        """The :class:`~repro.algorithms.policies.PlacementView` a policy
        sees when placing ``client_node``."""
        return PlacementView(
            client_node=client_node,
            n_servers=self.n_servers,
            capacity=self._capacity,
            nearest_costs=lambda: self._nearest_join_costs(client_node),
            path_costs=lambda: self._candidate_costs(
                client_node, exclude_self=False
            ),
            loads=self.loads,
        )

    @property
    def policy(self) -> OnlinePolicy:
        """The manager's resolved placement policy instance."""
        return self._policy

    # ------------------------------------------------------------------
    def join(self, client_node: int) -> int:
        """Connect a new client; returns its assigned local server index.

        The placement decision is delegated to the manager's
        :class:`~repro.algorithms.policies.OnlinePolicy`. Raises
        :class:`~repro.errors.InvalidAssignmentError` if already
        connected and :class:`~repro.errors.CapacityError` when every
        server is saturated.
        """
        if client_node in self._assigned:
            raise InvalidAssignmentError(f"client {client_node} already connected")
        if not 0 <= client_node < self._matrix.n_nodes:
            raise InvalidAssignmentError(f"client node {client_node} out of range")
        engine_idx = self._engine_index(client_node)
        best = self._policy.choose_server(self.placement_view(client_node))
        self._assigned[client_node] = best
        self._members[best].add(client_node)
        self._engine.apply(engine_idx, best)
        registry().counter("online.joins").inc()
        return best

    def leave(self, client_node: int) -> None:
        """Disconnect a client."""
        try:
            server = self._assigned.pop(client_node)
        except KeyError:
            raise InvalidAssignmentError(
                f"client {client_node} is not connected"
            ) from None
        self._members[server].discard(client_node)
        self._engine.unassign(self._engine_index(client_node))
        registry().counter("online.leaves").inc()

    def restore_client(self, client_node: int, server: int) -> None:
        """Install a client→server binding verbatim (recovery path).

        Used by :mod:`repro.resilience.checkpoint` to rebuild a
        manager from a snapshot: the binding was legal when it was
        recorded, so no placement policy runs and liveness /
        reachability / capacity checks are bypassed — a binding onto a
        currently-down server is exactly what a mid-outage checkpoint
        contains.
        """
        if client_node in self._assigned:
            raise InvalidAssignmentError(f"client {client_node} already connected")
        if not 0 <= client_node < self._matrix.n_nodes:
            raise InvalidAssignmentError(f"client node {client_node} out of range")
        self._check_server_index(server)
        engine_idx = self._engine_index(client_node)
        self._assigned[client_node] = server
        self._members[server].add(client_node)
        self._engine.apply(engine_idx, server)

    def rebalance(
        self,
        *,
        max_moves: int = 16,
        reserved: Optional[np.ndarray] = None,
    ) -> int:
        """Run bounded Distributed-Greedy repair; returns moves made.

        ``reserved`` (length ``|S|``) subtracts externally-held slots
        from this manager's uniform capacity during repair — the
        region-sharding layer passes the other shards' per-server loads
        so a shard's repair can never overfill a server globally.
        """
        if len(self._assigned) < 1 or max_moves < 1:
            return 0
        result = self._run_dga(max_moves, reserved)
        registry().counter("online.rebalance_moves").inc(result)
        return result

    def _run_dga(
        self, max_moves: int, reserved: Optional[np.ndarray] = None
    ) -> int:
        from repro.algorithms.distributed_greedy import distributed_greedy_detailed

        # Repair runs over the *usable* servers only, so a bounded
        # rebalance can never move a client onto a crashed or
        # partitioned server.
        usable = np.flatnonzero(self._usable())
        stranded = [
            node
            for node, s in self._assigned.items()
            if not self._active[s]
        ]
        if stranded:
            raise FailoverError(
                f"{len(stranded)} client(s) still assigned to down "
                f"server(s); evacuate before rebalancing"
            )
        # Clients riding out a partition on an unreachable server keep
        # their stale assignment: they cannot be reached to be moved,
        # so the repair problem covers only clients on usable servers.
        nodes = tuple(
            sorted(
                node
                for node, s in self._assigned.items()
                if self._reachable[s]
            )
        )
        if not nodes or usable.size == 0:
            return 0
        capacities: Union[None, int, np.ndarray] = self._capacity
        if capacities is not None and reserved is not None:
            capacities = (
                np.full(usable.size, int(capacities), dtype=np.int64)
                - np.asarray(reserved, dtype=np.int64)[usable]
            )
        problem = ClientAssignmentProblem(
            self._matrix,
            self._servers[usable],
            clients=list(nodes),
            capacities=capacities,
        )
        to_sub = {int(s): i for i, s in enumerate(usable)}
        server_of = np.array(
            [to_sub[self._assigned[n]] for n in nodes], dtype=np.int64
        )
        result = distributed_greedy_detailed(
            problem,
            initial=Assignment(problem, server_of),
            max_modifications=max_moves,
        )
        # Fold the improved assignment back into the live state. Applied
        # directly (not via move()) because the final assignment honors
        # capacities even where individual steps would transiently not.
        for local_idx, node in enumerate(nodes):
            new_server = int(usable[result.assignment.server_of[local_idx]])
            old_server = self._assigned[node]
            if new_server != old_server:
                self._members[old_server].discard(node)
                self._members[new_server].add(node)
                self._assigned[node] = new_server
                self._engine.apply(self._engine_index(node), new_server)
        return result.n_modifications

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[ClientAssignmentProblem, Assignment, Tuple[int, ...]]:
        """Freeze the current state into problem + assignment objects.

        Returns ``(problem, assignment, client_nodes)`` where
        ``client_nodes[i]`` is the node of local client ``i``.
        """
        if not self._assigned:
            raise InvalidAssignmentError("no clients connected")
        nodes = tuple(sorted(self._assigned))
        problem = ClientAssignmentProblem(
            self._matrix,
            self._servers,
            clients=list(nodes),
            capacities=self._capacity,
        )
        server_of = np.array([self._assigned[n] for n in nodes], dtype=np.int64)
        return problem, Assignment(problem, server_of), nodes

    def verify(self) -> bool:
        """Internal consistency check: incremental D equals the exact D."""
        if not self._assigned:
            return True
        _problem, assignment, _nodes = self.snapshot()
        exact = max_interaction_path_length(assignment)
        return abs(exact - self.current_d()) <= 1e-6 * max(1.0, exact)


# ----------------------------------------------------------------------
# Churn driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnTracePoint:
    """State after one churn event."""

    event_index: int
    event: str  # "join" | "leave" | "rebalance"
    n_clients: int
    d: float


@dataclass(frozen=True)
class ChurnResult:
    """Outcome of a churn simulation."""

    trace: Tuple[ChurnTracePoint, ...]
    moves_by_rebalance: int

    def mean_d(self) -> float:
        """Time-average D over the trace (ignoring empty-system points)."""
        values = [p.d for p in self.trace if p.n_clients > 0]
        return float(np.mean(values)) if values else 0.0

    def final_d(self) -> float:
        """D after the last event."""
        return self.trace[-1].d if self.trace else 0.0


def simulate_churn(
    matrix: LatencyProvider,
    servers: IndexArrayLike,
    *,
    n_events: int = 200,
    join_probability: float = 0.55,
    rebalance_every: Optional[int] = None,
    rebalance_moves: int = 8,
    capacity: Optional[int] = None,
    join_policy: str = "greedy",
    backend: str = "auto",
    seed: SeedLike = 0,
) -> ChurnResult:
    """Replay a random join/leave sequence through the online manager.

    Joins pick a uniformly random unconnected node; leaves pick a
    uniformly random connected client. When ``rebalance_every`` is set,
    a bounded Distributed-Greedy repair runs after every that-many
    events. Returns the D-over-time trace. ``join_policy`` selects the
    placement rule for arrivals ("greedy" = minimize resulting D,
    "nearest" = deployed-system default); ``backend`` the manager's
    kernel backend.
    """
    if not 0.0 < join_probability < 1.0:
        raise InvalidParameterError("join_probability must be in (0, 1)")
    rng = ensure_rng(seed)
    manager = OnlineAssignmentManager(
        matrix,
        servers,
        OnlineConfig(
            capacity=capacity, join_policy=join_policy, backend=backend
        ),
    )
    server_set = set(int(s) for s in as_index_array(servers))
    candidates = [u for u in range(matrix.n_nodes) if u not in server_set]
    trace: List[ChurnTracePoint] = []
    total_moves = 0

    for i in range(n_events):
        connected = manager.clients
        do_join = (not connected) or (
            len(connected) < len(candidates) and rng.uniform() < join_probability
        )
        if do_join:
            free = [u for u in candidates if u not in manager._assigned]
            node = int(free[rng.integers(0, len(free))])
            try:
                manager.join(node)
                event = "join"
            except CapacityError:
                if not connected:
                    continue
                manager.leave(int(connected[rng.integers(0, len(connected))]))
                event = "leave"
        else:
            manager.leave(int(connected[rng.integers(0, len(connected))]))
            event = "leave"
        trace.append(
            ChurnTracePoint(i, event, manager.n_clients, manager.current_d())
        )
        if rebalance_every and (i + 1) % rebalance_every == 0 and manager.n_clients:
            moves = manager.rebalance(max_moves=rebalance_moves)
            total_moves += moves
            trace.append(
                ChurnTracePoint(
                    i, "rebalance", manager.n_clients, manager.current_d()
                )
            )
    return ChurnResult(trace=tuple(trace), moves_by_rebalance=total_moves)
