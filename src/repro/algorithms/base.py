"""Common algorithm interface and registry.

Every assignment algorithm is a callable
``(problem, *, seed=None) -> Assignment``. Algorithms that produce extra
artifacts (e.g. Distributed-Greedy's modification trace) expose a richer
entry point returning a result object, plus a registry-compatible
wrapper that discards the extras.

Capacity handling follows the paper's §IV-E: when the problem instance
carries capacities, each algorithm automatically runs its "capacitated"
variant; no separate entry points are needed.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidParameterError

#: Uniform algorithm signature.
AlgorithmFn = Callable[..., Assignment]

_REGISTRY: Dict[str, AlgorithmFn] = {}


def register(name: str) -> Callable[[AlgorithmFn], AlgorithmFn]:
    """Class decorator registering an algorithm under a CLI/plot name."""

    def decorator(fn: AlgorithmFn) -> AlgorithmFn:
        if name in _REGISTRY:
            raise InvalidParameterError(
                f"algorithm name {name!r} already registered"
            )
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_algorithm(name: str) -> AlgorithmFn:
    """Look up a registered algorithm by name.

    Raises ``KeyError`` listing the available names on a miss.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; available: {available}") from None


def algorithm_names() -> List[str]:
    """Registered algorithm names, sorted."""
    return sorted(_REGISTRY)


def paper_algorithm_names() -> List[str]:
    """The paper's four heuristics, in the paper's presentation order."""
    return ["nearest-server", "longest-first-batch", "greedy", "distributed-greedy"]


def round_trip_distances(problem: ClientAssignmentProblem) -> np.ndarray:
    """``(|C|, |S|)`` matrix of ``d(c, s) + d(s, c)`` round trips.

    The self-interaction path of a client equals its round trip; several
    algorithms need it as the batch-internal path-length floor.
    """
    sc = problem.matrix.values[np.ix_(problem.servers, problem.clients)]
    return problem.client_server + sc.T
