"""Common algorithm interface, registry, and the run facade.

Every assignment algorithm is a callable
``(problem, *, seed=None) -> Assignment``; those registered callables
are thin shims, so existing scripts that call them directly keep
working. The preferred entry point is :func:`run_algorithm`, which
dispatches by registry name and returns a fully-populated
:class:`~repro.core.results.AssignmentResult` (assignment, objective D,
wall time, candidate-evaluation count, optional modification trace) —
replacing the hand-rolled timing/D bookkeeping that used to live in the
CLI, the experiment runner, and the benchmarks separately.

Capacity handling follows the paper's §IV-E: when the problem instance
carries capacities, each algorithm automatically runs its "capacitated"
variant; no separate entry points are needed.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.assignment import Assignment
from repro.core.incremental import count_evaluations
from repro.core.metrics import max_interaction_path_length
from repro.core.problem import ClientAssignmentProblem
from repro.core.results import AssignmentResult
from repro.errors import InvalidParameterError, UnknownAlgorithmError
from repro.obs import SECONDS_BUCKETS, Stopwatch, registry, span

#: Uniform algorithm signature.
AlgorithmFn = Callable[..., Assignment]

#: Optional richer signature returning a result object with extras
#: (e.g. Distributed-Greedy's modification trace).
DetailedFn = Callable[..., Any]

_REGISTRY: Dict[str, AlgorithmFn] = {}
_DETAILED: Dict[str, DetailedFn] = {}


def register(name: str) -> Callable[[AlgorithmFn], AlgorithmFn]:
    """Class decorator registering an algorithm under a CLI/plot name."""

    def decorator(fn: AlgorithmFn) -> AlgorithmFn:
        if name in _REGISTRY:
            raise InvalidParameterError(
                f"algorithm name {name!r} already registered"
            )
        _REGISTRY[name] = fn
        return fn

    return decorator


def register_detailed(name: str) -> Callable[[DetailedFn], DetailedFn]:
    """Register a richer entry point behind the same name.

    The callable must accept the registry signature and return an object
    with an ``assignment`` attribute; :func:`run_algorithm` prefers it
    over the plain shim and forwards trace/extras into the result.
    """

    def decorator(fn: DetailedFn) -> DetailedFn:
        if name in _DETAILED:
            raise InvalidParameterError(
                f"detailed algorithm name {name!r} already registered"
            )
        _DETAILED[name] = fn
        return fn

    return decorator


def get_algorithm(name: str) -> AlgorithmFn:
    """Look up a registered algorithm by name.

    Raises :class:`~repro.errors.UnknownAlgorithmError` (a ``KeyError``
    subclass) listing the available names on a miss.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {available}"
        ) from None


def _accepts_keyword(fn: Callable, keyword: str) -> bool:
    """Whether ``fn`` can receive ``keyword`` as a keyword argument."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    if keyword in params:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def run_algorithm(
    name: str,
    problem: ClientAssignmentProblem,
    *,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    **kwargs: Any,
) -> AssignmentResult:
    """Run a registered algorithm and return a unified result.

    Dispatches by registry ``name``, times the call, counts candidate
    objective evaluations (see
    :func:`repro.core.incremental.count_evaluations`), computes the
    objective D once, and — for algorithms registered with a detailed
    entry point — forwards their modification trace and extras.

    ``backend`` selects the kernel backend of engine-backed algorithms
    (see :func:`repro.kernels.resolve_backend`); it is forwarded only to
    algorithms that accept the keyword, so engine-less baselines (e.g.
    ``nearest-server``) can still be dispatched with a backend set.
    Extra keyword arguments are passed through to the algorithm
    (e.g. ``max_rounds`` for hill-climbing).
    """
    fn = _DETAILED.get(name)
    plain = fn is None
    if plain:
        fn = get_algorithm(name)
    else:
        get_algorithm(name)  # validate the name exists in the registry
    if backend is not None:
        from repro.kernels import validate_backend_name

        validate_backend_name(backend)
        if _accepts_keyword(fn, "backend"):
            kwargs["backend"] = backend
    with span(
        f"algo.{name}",
        algorithm=name,
        clients=problem.n_clients,
        servers=problem.n_servers,
    ), count_evaluations() as counter, Stopwatch() as watch:
        outcome = fn(problem, seed=seed, **kwargs)
    metrics = registry()
    metrics.counter(f"algo.{name}.runs").inc()
    metrics.counter("algo.evaluations").inc(counter.count)
    metrics.histogram("algo.seconds", SECONDS_BUCKETS).observe(watch.elapsed)
    trace = None
    extras: Dict[str, Any] = {}
    if plain:
        assignment = outcome
    else:
        assignment = outcome.assignment
        trace = tuple(getattr(outcome, "trace", ()) or ()) or None
        for key in ("n_modifications", "n_messages", "converged"):
            if hasattr(outcome, key):
                extras[key] = getattr(outcome, key)
    return AssignmentResult(
        assignment=assignment,
        d=max_interaction_path_length(assignment),
        algorithm=name,
        seed=seed,
        elapsed_seconds=watch.elapsed,
        n_evaluations=counter.count,
        trace=trace,
        extras=extras,
    )


def algorithm_names() -> List[str]:
    """Registered algorithm names, sorted."""
    return sorted(_REGISTRY)


def paper_algorithm_names() -> List[str]:
    """The paper's four heuristics, in the paper's presentation order."""
    return ["nearest-server", "longest-first-batch", "greedy", "distributed-greedy"]


def round_trip_distances(problem: ClientAssignmentProblem) -> np.ndarray:
    """``(|C|, |S|)`` matrix of ``d(c, s) + d(s, c)`` round trips.

    The self-interaction path of a client equals its round trip; several
    algorithms need it as the batch-internal path-length floor.
    """
    return problem.client_server + problem.server_client.T
