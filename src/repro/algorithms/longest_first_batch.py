"""Longest-First-Batch Assignment (paper §IV-B).

Key idea: if client ``c`` is assigned to server ``s``, assigning to
``s`` every client not farther from ``s`` than ``c`` cannot increase the
maximum interaction path length. The algorithm therefore:

1. finds each client's nearest server and sorts clients by that
   distance, descending;
2. repeatedly takes the unassigned client ``c`` with the longest
   nearest-server distance, assigns it to its nearest server ``s``, and
   **batches** onto ``s`` every unassigned client within ``d(c, s)`` of
   ``s``.

In the resulting assignment any client not assigned to its nearest
server is never the farthest client of its server, so the longest
interaction path connects two nearest-server-assigned clients — hence
LFB's D never exceeds Nearest-Server's, and the 3-approximation carries
over (and stays tight, Fig. 4).

Capacitated variant (§IV-E): when a batch overflows the server, the
selected client ``c`` is assigned together with the *nearest* remaining
batch members, filling the server exactly to capacity; the leftover
clients re-enter the pool, their nearest servers are recomputed among
unsaturated servers, and the distance ordering is rebuilt.

Complexity: O(|C| (|C| + |S|)) uncapacitated; each capacity overflow
adds an O(|C| |S|) recompute.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import register
from repro.core.assignment import Assignment
from repro.core.incremental import IncrementalObjective
from repro.core.problem import ClientAssignmentProblem
from repro.obs import registry, span
from repro.utils.rng import SeedLike


@register("longest-first-batch")
def longest_first_batch(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    backend: str = "auto",
) -> Assignment:
    """Run Longest-First-Batch Assignment.

    ``seed`` is accepted for interface uniformity and ignored — the
    algorithm is deterministic. Batches commit through an
    :class:`~repro.core.incremental.IncrementalObjective`, so the
    partial assignment's objective stays queryable throughout the
    construction at no extra asymptotic cost. ``backend`` selects the
    engine's kernel backend (see :func:`repro.kernels.resolve_backend`).
    """
    cs = problem.client_server
    n_clients = problem.n_clients
    engine = IncrementalObjective(problem, history=False, backend=backend)
    unassigned = np.ones(n_clients, dtype=bool)
    metrics = registry()
    batches = metrics.counter("lfb.batches")
    batch_sizes = metrics.histogram("lfb.batch_size")

    if not problem.is_capacitated:
        with span("lfb.assign", clients=n_clients, servers=problem.n_servers):
            nearest = np.argmin(cs, axis=1)
            nearest_dist = cs[np.arange(n_clients), nearest]
            # Longest nearest-server distance first.
            order = np.argsort(-nearest_dist, kind="stable")
            for c in order:
                if not unassigned[c]:
                    continue
                s = int(nearest[c])
                batch = np.flatnonzero(
                    unassigned & (cs[:, s] <= nearest_dist[c])
                )
                engine.assign_many(batch, s)
                unassigned[batch] = False
                batches.inc()
                batch_sizes.observe(batch.size)
            return engine.assignment()

    remaining = problem.capacities.copy().astype(np.int64)
    with span(
        "lfb.assign",
        clients=n_clients,
        servers=problem.n_servers,
        capacitated=True,
    ):
        while unassigned.any():
            open_servers = np.flatnonzero(remaining > 0)
            # Nearest *unsaturated* server per unassigned client.
            sub = cs[np.ix_(unassigned, open_servers)]
            nearest_pos = np.argmin(sub, axis=1)
            nearest_dist = sub[np.arange(sub.shape[0]), nearest_pos]
            pool = np.flatnonzero(unassigned)
            # Process in descending nearest-distance order until a server
            # saturates (which invalidates the precomputed nearest servers).
            order = np.argsort(-nearest_dist, kind="stable")
            resort_needed = False
            for k in order:
                c = int(pool[k])
                if not unassigned[c]:
                    continue
                s = int(open_servers[nearest_pos[k]])
                if remaining[s] == 0:
                    # Saturated since this ordering was computed.
                    resort_needed = True
                    break
                limit = float(nearest_dist[k])
                batch = np.flatnonzero(unassigned & (cs[:, s] <= limit))
                if batch.size > remaining[s]:
                    # Overflow: keep c plus the nearest batch members.
                    others = batch[batch != c]
                    keep_n = int(remaining[s]) - 1
                    if keep_n > 0:
                        nearest_others = others[
                            np.argsort(cs[others, s], kind="stable")
                        ]
                        batch = np.concatenate(([c], nearest_others[:keep_n]))
                    else:
                        batch = np.array([c], dtype=np.int64)
                    resort_needed = True
                engine.assign_many(batch, s)
                unassigned[batch] = False
                remaining[s] -= batch.size
                batches.inc()
                batch_sizes.observe(batch.size)
                if resort_needed:
                    break
    return engine.assignment()
