"""Client assignment algorithms.

The paper's four heuristics (§IV), registered under their experiment
names:

- ``nearest-server`` — §IV-A, the intuitive baseline (3-approximation
  under triangle inequality);
- ``longest-first-batch`` — §IV-B, batching refinement of
  nearest-server;
- ``greedy`` — §IV-C, amortized-cost greedy (Fig. 6 pseudocode);
- ``distributed-greedy`` — §IV-D, distributed local search from a
  nearest-server start (the paper's overall winner).

Extra baselines and ablations: ``best-single-server``, ``random``,
``hill-climbing``, ``simulated-annealing``.

All entry points share the signature ``fn(problem, *, seed=None) ->
Assignment`` and automatically run their capacitated variants (§IV-E)
when the problem carries capacities. Prefer
:func:`~repro.algorithms.base.run_algorithm`, which dispatches by name
and returns a unified :class:`~repro.core.results.AssignmentResult`;
:func:`~repro.algorithms.base.get_algorithm` remains for raw name-based
lookup.
"""

from repro.algorithms.base import (
    algorithm_names,
    get_algorithm,
    paper_algorithm_names,
    register,
    register_detailed,
    run_algorithm,
)
from repro.algorithms.baselines import best_single_server, random_assignment
from repro.algorithms.distributed_greedy import (
    DistributedGreedyResult,
    distributed_greedy,
    distributed_greedy_detailed,
)
from repro.algorithms.greedy import greedy, greedy_absolute
from repro.algorithms.local_search import hill_climbing, simulated_annealing
from repro.algorithms.longest_first_batch import longest_first_batch
from repro.algorithms.nearest import nearest_server
from repro.algorithms.online import (
    ChurnResult,
    ChurnTracePoint,
    OnlineAssignmentManager,
    OnlineConfig,
    simulate_churn,
)
from repro.algorithms.policies import (
    GreedyPolicy,
    NearestPolicy,
    OnlinePolicy,
    PlacementView,
    SpreadPolicy,
    ThresholdPolicy,
    policy_names,
    register_policy,
    resolve_policy,
)

__all__ = [
    "nearest_server",
    "longest_first_batch",
    "greedy",
    "greedy_absolute",
    "OnlineAssignmentManager",
    "OnlineConfig",
    "simulate_churn",
    "ChurnResult",
    "ChurnTracePoint",
    "distributed_greedy",
    "distributed_greedy_detailed",
    "DistributedGreedyResult",
    "best_single_server",
    "random_assignment",
    "hill_climbing",
    "simulated_annealing",
    "OnlinePolicy",
    "PlacementView",
    "GreedyPolicy",
    "NearestPolicy",
    "ThresholdPolicy",
    "SpreadPolicy",
    "policy_names",
    "register_policy",
    "resolve_policy",
    "run_algorithm",
    "get_algorithm",
    "register_detailed",
    "algorithm_names",
    "paper_algorithm_names",
    "register",
]
