"""Greedy Assignment (paper §IV-C, Fig. 6 pseudocode).

Starting from an empty assignment, each iteration considers every
(unassigned client, server) pair ``(c, s)``. Selecting the pair means
assigning to ``s`` the client ``c`` *and* every unassigned client not
farther from ``s`` than ``c`` (the Longest-First-Batch closure). The
pair chosen is the one minimizing the amortized cost

    cost(c, s) = Δl / Δn

where ``Δn`` is the number of clients the batch would assign and ``Δl``
the resulting increase of the maximum interaction path length. Per the
pseudocode, the candidate path length for pair ``(c, s)`` is

    len(c, s) = max( 2 d(c, s),  d(c, s) + m(s),  max_len )

with ``m(s) = max over assigned clients b of d(s, s_A(b)) + d(s_A(b), b)``
shared across all candidates for ``s``, and ``max_len`` the running
maximum interaction path length.

Implementation notes
--------------------
- Fully vectorized: each iteration computes the entire ``(|S|, |C|)``
  cost matrix with numpy. ``Δn`` comes from per-server sorted client
  orders (the pseudocode's ``index[s, c]``), refreshed per iteration via
  a masked cumulative sum — the same O(|S| |C|) stage-3 recount as the
  paper's pseudocode.
- Assignment state and the ``m(s)`` reductions live in an
  :class:`~repro.core.incremental.IncrementalObjective`: batches commit
  via ``assign_many`` and the per-server farthest legs / best
  completions are read back from the engine's caches, so Greedy shares
  the maintenance (and candidate-evaluation accounting) substrate of
  the local-search family.
- Asymmetric matrices: the round-trip term uses ``d(c,s) + d(s,c)`` and
  ``m(s)`` uses the proper directional legs, reducing exactly to the
  pseudocode on symmetric inputs.
- Capacitated (§IV-E): saturated servers are excluded; for a server with
  remaining capacity ``r``, ``Δn`` is capped at ``r`` and an overflowing
  batch keeps the selected client ``c`` plus the ``r - 1`` nearest batch
  members (so ``Δl`` stays exact — ``c`` remains the farthest member).

Complexity: O(|S| |C| log |C|) preprocessing + O(|S| |C|) per iteration,
matching the paper's O(|S||C| log|C| + m |S||C|).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import register, round_trip_distances
from repro.core.assignment import Assignment
from repro.core.incremental import (
    IncrementalObjective,
    record_candidate_evaluations,
)
from repro.core.problem import ClientAssignmentProblem
from repro.obs import registry, span
from repro.utils.rng import SeedLike


@register("greedy")
def greedy(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    amortized: bool = True,
    backend: str = "auto",
) -> Assignment:
    """Run Greedy Assignment.

    ``seed`` is accepted for interface uniformity and ignored — the
    algorithm is deterministic (ties broken toward the lowest flat index
    of the cost matrix).

    ``amortized`` selects the pair-selection metric: the paper's
    ``Δl/Δn`` (default) or plain ``Δl`` (ignoring batch size). The
    latter exists as an ablation of the paper's design choice — dividing
    by Δn rewards assigning many clients per unit of path-length growth;
    see ``repro.experiments.ablations.ablation_greedy_cost``.
    ``backend`` selects the incremental engine's kernel backend (see
    :func:`repro.kernels.resolve_backend`).
    """
    cs = problem.client_server  # (C, S): d(c, s)
    ss = problem.server_server  # (S, S)
    sc = problem.server_client  # (S, C)
    n_clients, n_servers = cs.shape
    rt = round_trip_distances(problem)  # (C, S): d(c,s) + d(s,c)
    metrics = registry()
    batches = metrics.counter("greedy.batches")
    batch_sizes = metrics.histogram("greedy.batch_size")

    # Preprocessing: per-server client order by ascending d(c, s), and
    # each client's position in that order (the pseudocode's index[s, c]
    # before any assignment).
    order = np.argsort(cs.T, axis=1, kind="stable")  # (S, C) client ids
    pos = np.empty_like(order)
    rows = np.arange(n_servers)[:, None]
    pos[rows, order] = np.arange(n_clients)[None, :]

    unassigned = np.ones(n_clients, dtype=bool)
    remaining = (
        problem.capacities.copy().astype(np.int64)
        if problem.is_capacitated
        else None
    )

    # Assignment state + per-server farthest-leg maintenance.
    engine = IncrementalObjective(problem, history=False, backend=backend)
    max_len = 0.0

    with span("greedy.assign", clients=n_clients, servers=n_servers):
        while unassigned.any():
            # m terms shared per server (line 11 of the pseudocode):
            #   m_in[s]  = max_b d(s, s_A(b)) + d(s_A(b), b)   (outgoing)
            #   m_out[s] = max_b d(b, s_A(b)) + d(s_A(b), s)   (incoming)
            # served from the engine's cached best-completion reductions.
            any_assigned = engine.n_assigned > 0
            if any_assigned:
                m_in, m_out = engine.server_reductions()

            # Candidate path length for every (s, c) pair (lines 13-14).
            cand = np.maximum(rt.T, max_len)  # round trip & current max
            if any_assigned:
                cand = np.maximum(cand, cs.T + m_in[:, None])
                cand = np.maximum(cand, m_out[:, None] + sc)
            record_candidate_evaluations(cand.size)
            delta_l = cand - max_len  # >= 0

            # Δn: rank of each client among unassigned clients per server.
            cum = np.cumsum(unassigned[order], axis=1)  # (S, C)
            delta_n = np.take_along_axis(cum, pos, axis=1).astype(np.float64)

            if remaining is not None:
                delta_n = np.minimum(delta_n, remaining[:, None])

            # Assigned clients (and saturated servers) can yield Δn = 0;
            # their costs are masked right after, so silence the 0/0.
            with np.errstate(divide="ignore", invalid="ignore"):
                if amortized:
                    cost = delta_l / delta_n
                else:
                    cost = np.where(delta_n > 0, delta_l, np.inf)
            # Mask out assigned clients and saturated servers.
            cost[:, ~unassigned] = np.inf
            if remaining is not None:
                cost[remaining <= 0, :] = np.inf

            flat = int(np.argmin(cost))
            s_star, c_star = divmod(flat, n_clients)
            assert np.isfinite(cost[s_star, c_star]), "no assignable pair found"

            limit = cs[c_star, s_star]
            batch = np.flatnonzero(unassigned & (cs[:, s_star] <= limit))
            if remaining is not None and batch.size > remaining[s_star]:
                others = batch[batch != c_star]
                keep_n = int(remaining[s_star]) - 1
                if keep_n > 0:
                    nearest_others = others[
                        np.argsort(cs[others, s_star], kind="stable")
                    ]
                    batch = np.concatenate(([c_star], nearest_others[:keep_n]))
                else:
                    batch = np.array([c_star], dtype=np.int64)

            engine.assign_many(batch, s_star)
            unassigned[batch] = False
            if remaining is not None:
                remaining[s_star] -= batch.size
            max_len = float(cand[s_star, c_star])
            batches.inc()
            batch_sizes.observe(batch.size)

    return engine.assignment()


@register("greedy-absolute")
def greedy_absolute(
    problem: ClientAssignmentProblem, *, seed: SeedLike = None
) -> Assignment:
    """Ablation variant of Greedy Assignment with cost = Δl (no Δn).

    Registered separately so experiment configs can sweep it by name.
    """
    return greedy(problem, seed=seed, amortized=False)
