"""Local search and simulated annealing (ablation baselines).

Not part of the paper — included to calibrate how much headroom the
paper's heuristics leave to generic metaheuristics, and as an ablation
for the design choice of Distributed-Greedy's "only clients on longest
paths move" rule (here *any* client may move).

Both optimizers use the same move structure as Distributed-Greedy
(relocate one client to another server). Candidate moves are scored
through :class:`~repro.core.incremental.IncrementalObjective` — O(|S|)
for a whole batch of destinations instead of an O(|C| + |S|^2) full
recomputation per candidate — so comparisons isolate the *search
policy*, not the move machinery. ``evaluator="recompute"`` retains the
from-scratch path for equivalence testing and benchmarking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import register
from repro.algorithms.nearest import nearest_server
from repro.core.assignment import Assignment
from repro.core.incremental import IncrementalObjective, record_candidate_evaluations
from repro.core.metrics import max_interaction_path_length
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidParameterError
from repro.obs import registry, span
from repro.utils.rng import SeedLike, ensure_rng

_EVALUATORS = ("incremental", "recompute")


def _check_evaluator(evaluator: str) -> None:
    if evaluator not in _EVALUATORS:
        raise InvalidParameterError(
            f"evaluator must be one of {_EVALUATORS}, got {evaluator!r}"
        )


def _objective_after_move(
    problem: ClientAssignmentProblem,
    server_of: np.ndarray,
    client: int,
    new_server: int,
) -> float:
    """D after relocating one client, in O(|C| + |S|^2).

    The from-scratch reference the incremental engine replaced; kept for
    ``evaluator="recompute"`` (equivalence tests, old-vs-new benchmarks).
    """
    old = server_of[client]
    server_of[client] = new_server
    try:
        assignment = Assignment(problem, server_of, validate=False)
        return max_interaction_path_length(assignment)
    finally:
        server_of[client] = old


@register("hill-climbing")
def hill_climbing(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    max_rounds: int = 50,
    evaluator: str = "incremental",
    backend: str = "auto",
) -> Assignment:
    """Steepest-descent over single-client relocations.

    Each round scans a random order of clients; for each client the best
    relocation is applied when it strictly reduces D. Stops when a full
    round makes no move (local optimum) or after ``max_rounds``.

    With the default ``evaluator="incremental"`` one engine query scores
    all |S| destinations of a client at once; ``"recompute"`` evaluates
    each via a full objective pass (the pre-engine behavior, retained
    for benchmarking — the move trajectory is identical). ``backend``
    selects the engine's kernel backend (see
    :func:`repro.kernels.resolve_backend`); ignored under
    ``evaluator="recompute"``.
    """
    _check_evaluator(evaluator)
    rng = ensure_rng(seed)
    if initial is None:
        initial = nearest_server(problem)
    server_of = initial.server_of.copy()
    loads = np.bincount(server_of, minlength=problem.n_servers)
    capacities = problem.capacities
    incremental = evaluator == "incremental"
    engine = (
        IncrementalObjective(problem, server_of, history=False, backend=backend)
        if incremental
        else None
    )

    if incremental:
        best_d = engine.d()
    else:
        best_d = max_interaction_path_length(
            Assignment(problem, server_of, validate=False)
        )
    moves = registry().counter("local_search.hc_moves")
    with span(
        "hc.search",
        clients=problem.n_clients,
        servers=problem.n_servers,
        evaluator=evaluator,
    ):
        for _ in range(max_rounds):
            improved = False
            for c in rng.permutation(problem.n_clients):
                c = int(c)
                home = int(server_of[c])
                scores: Optional[np.ndarray] = None
                for s in range(problem.n_servers):
                    if s == home:
                        continue
                    if capacities is not None and loads[s] >= capacities[s]:
                        continue
                    if incremental:
                        if scores is None:
                            scores = engine.batch_delta_D(
                                c, respect_capacities=False
                            )
                        d_new = float(scores[s])
                    else:
                        record_candidate_evaluations(1)
                        d_new = _objective_after_move(problem, server_of, c, s)
                    if d_new < best_d - 1e-12:
                        server_of[c] = s
                        loads[home] -= 1
                        loads[s] += 1
                        if incremental:
                            engine.apply(c, s)
                            best_d = engine.d()
                            scores = None  # home changed: rescore lazily
                        else:
                            best_d = d_new
                        home = s
                        improved = True
                        moves.inc()
            if not improved:
                break
    return Assignment(problem, server_of)


@register("simulated-annealing")
def simulated_annealing(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    n_steps: int = 2000,
    start_temperature: Optional[float] = None,
    cooling: float = 0.995,
    evaluator: str = "incremental",
    backend: str = "auto",
) -> Assignment:
    """Simulated annealing over single-client relocations.

    Accepts worsening moves with probability ``exp(-Δ/T)``; the
    temperature decays geometrically by ``cooling`` per step. Returns the
    best assignment visited. The default start temperature is 10% of the
    initial objective. ``evaluator`` selects incremental (default) or
    from-scratch candidate scoring; the random walk is identical.
    ``backend`` selects the engine's kernel backend (see
    :func:`repro.kernels.resolve_backend`).

    The incremental path scores candidates by tentative apply/undo
    rather than :meth:`~IncrementalObjective.delta_D`: the acceptance
    test ``delta <= 0`` short-circuits the RNG draw, so ``d_new`` must be
    *bit*-identical to the recomputed objective at exact ties — which
    ``engine.d()`` is (same reduction, same evaluation order), while a
    delta query may differ in the last ulp through a different
    association of the same sums.
    """
    _check_evaluator(evaluator)
    rng = ensure_rng(seed)
    if initial is None:
        initial = nearest_server(problem)
    server_of = initial.server_of.copy()
    loads = np.bincount(server_of, minlength=problem.n_servers)
    capacities = problem.capacities
    incremental = evaluator == "incremental"
    engine = (
        IncrementalObjective(problem, server_of, backend=backend)
        if incremental
        else None
    )

    if incremental:
        current_d = engine.d()
    else:
        current_d = max_interaction_path_length(
            Assignment(problem, server_of, validate=False)
        )
    best_d = current_d
    best = server_of.copy()
    temperature = (
        start_temperature if start_temperature is not None else 0.1 * current_d
    )
    temperature = max(temperature, 1e-9)

    accepted = registry().counter("local_search.sa_accepted")
    with span(
        "sa.search",
        clients=problem.n_clients,
        servers=problem.n_servers,
        steps=n_steps,
        evaluator=evaluator,
    ):
        for _ in range(n_steps):
            c = int(rng.integers(0, problem.n_clients))
            s = int(rng.integers(0, problem.n_servers))
            home = int(server_of[c])
            if s == home:
                continue
            if capacities is not None and loads[s] >= capacities[s]:
                continue
            if incremental:
                record_candidate_evaluations(1)
                engine.apply(c, s)
                d_new = engine.d()
            else:
                record_candidate_evaluations(1)
                d_new = _objective_after_move(problem, server_of, c, s)
            delta = d_new - current_d
            if delta <= 0 or rng.uniform() < np.exp(-delta / temperature):
                server_of[c] = s
                loads[home] -= 1
                loads[s] += 1
                current_d = d_new
                accepted.inc()
                if current_d < best_d:
                    best_d = current_d
                    best = server_of.copy()
            elif incremental:
                engine.undo()
            temperature *= cooling
    return Assignment(problem, best)
