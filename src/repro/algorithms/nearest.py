"""Nearest-Server Assignment (paper §IV-A).

Each client picks the server with the lowest client-to-server latency.
This is the intuitive baseline used by deployed systems ([16], [26] in
the paper) and has approximation ratio exactly 3 under triangle
inequality (Theorem 2, tight by the Fig. 4 gadget) — but real latency
data violates the triangle inequality, and the paper's experiments show
Nearest-Server can exceed 3x the lower bound.

Capacitated variant (§IV-E): each client tries its nearest server, then
the second nearest, and so on, until it finds a server with spare
capacity. Clients are processed in ascending client-index order; the
paper leaves the order unspecified (clients act independently in the
uncapacitated setting).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import register
from repro.core.assignment import Assignment
from repro.core.incremental import record_candidate_evaluations
from repro.core.problem import ClientAssignmentProblem
from repro.errors import CapacityError
from repro.obs import registry, span
from repro.utils.rng import SeedLike


@register("nearest-server")
def nearest_server(
    problem: ClientAssignmentProblem, *, seed: SeedLike = None
) -> Assignment:
    """Assign every client to its nearest (unsaturated) server.

    ``seed`` is accepted for interface uniformity and ignored — the
    algorithm is deterministic (ties broken by lowest server index, the
    behaviour of ``argmin``).
    """
    cs = problem.client_server
    record_candidate_evaluations(cs.size)
    registry().counter("nearest.assignments").inc(problem.n_clients)
    with span(
        "nearest.assign",
        clients=problem.n_clients,
        servers=problem.n_servers,
        capacitated=problem.is_capacitated,
    ):
        if not problem.is_capacitated:
            return Assignment(problem, np.argmin(cs, axis=1))

        remaining = problem.capacities.copy()
        server_of = np.empty(problem.n_clients, dtype=np.int64)
        # Each client walks its personal nearest-first server ranking.
        ranking = np.argsort(cs, axis=1, kind="stable")
        for c in range(problem.n_clients):
            for s in ranking[c]:
                if remaining[s] > 0:
                    server_of[c] = s
                    remaining[s] -= 1
                    break
            else:  # pragma: no cover - prevented by problem validation
                raise CapacityError("no server with spare capacity remains")
        return Assignment(problem, server_of)
