"""Pluggable online placement policies (the ``OnlinePolicy`` seam).

The online manager's join decision used to be a two-way branch on
``join_policy in ("greedy", "nearest")``. This module turns that branch
into a small protocol so new placement rules — in particular the
remediation strategies of the online facility assignment literature
(threshold-based reassignment, capacity-aware spread) — plug into both
:class:`~repro.algorithms.online.OnlineAssignmentManager` and
:class:`~repro.scale.sharded.ShardedOnlineManager` without touching
either manager.

A policy sees one arriving client through a :class:`PlacementView`: a
lazy bundle of per-server cost vectors (nearest legs and full candidate
path lengths ``L(s')``), current loads and the capacity. Both cost
vectors arrive already masked — saturated, crashed and partitioned
servers hold ``+inf`` — so a policy only ranks finite entries. The
historical rules (``greedy``, ``nearest``) are re-expressed here with
the **exact same float operations in the same order** as the former
inline code, which is what keeps the refactor byte-identical
(test-enforced against pre-refactor decision traces in
``tests/algorithms/test_policy_seam.py``).

Policies may also implement :meth:`OnlinePolicy.maintain` — a bounded
background remediation pass the scenario harness invokes between
events (see ``docs/scenarios.md`` for the authoring guide).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.errors import (
    CapacityError,
    FailoverError,
    InvalidParameterError,
)


class PlacementView:
    """What a policy sees when placing one arriving client.

    Cost vectors are built lazily (a nearest-style policy never pays
    for the ``L(s')`` reduction) and cached (a policy may consult both
    without recomputation). Both are masked: unusable or saturated
    servers hold ``+inf``.
    """

    def __init__(
        self,
        client_node: int,
        n_servers: int,
        capacity: Optional[int],
        nearest_costs: Callable[[], np.ndarray],
        path_costs: Callable[[], np.ndarray],
        loads: Callable[[], np.ndarray],
    ) -> None:
        self.client_node = int(client_node)
        self.n_servers = int(n_servers)
        self.capacity = capacity
        self._nearest_thunk = nearest_costs
        self._paths_thunk = path_costs
        self._loads_thunk = loads
        self._nearest: Optional[np.ndarray] = None
        self._paths: Optional[np.ndarray] = None
        self._loads: Optional[np.ndarray] = None

    def nearest_costs(self) -> np.ndarray:
        """Masked outgoing legs ``d(c, s')`` per server."""
        if self._nearest is None:
            self._nearest = self._nearest_thunk()
        return self._nearest

    def path_costs(self) -> np.ndarray:
        """Masked candidate path lengths ``L(s')`` per server."""
        if self._paths is None:
            self._paths = self._paths_thunk()
        return self._paths

    def loads(self) -> np.ndarray:
        """Current per-server client counts (global, all shards)."""
        if self._loads is None:
            self._loads = self._loads_thunk()
        return self._loads


def best_finite(costs: np.ndarray) -> int:
    """Index of the minimum cost; raises when no server is feasible.

    This is verbatim the manager's historical selection rule, including
    the exact :class:`~repro.errors.CapacityError` message.
    """
    best = int(np.argmin(costs))
    if not np.isfinite(costs[best]):
        raise CapacityError("all active servers are at capacity")
    return best


class OnlinePolicy:
    """Base class for online placement policies.

    Subclasses override :meth:`choose_server` (mandatory) and may
    override :meth:`maintain` (bounded background remediation; the
    default does nothing). A policy instance belongs to one manager —
    it may keep state (e.g. a scan cursor) across calls.
    """

    #: Registry name; set by subclasses.
    name: str = "?"

    def choose_server(self, view: PlacementView) -> int:
        """Pick the server for the arriving client in ``view``.

        Must return an index with a finite cost, or raise
        :class:`~repro.errors.CapacityError` when none exists
        (:func:`best_finite` implements both).
        """
        raise NotImplementedError

    def maintain(self, manager: object, *, max_moves: int = 1) -> int:
        """Optional remediation pass between events; returns moves made.

        ``manager`` is an online manager exposing ``clients``,
        ``server_of``, ``candidate_costs`` and ``move``. The default is
        a no-op so pure placement policies cost nothing.
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GreedyPolicy(OnlinePolicy):
    """Minimize the resulting D (the paper's §VI move-cost rule)."""

    name = "greedy"

    def choose_server(self, view: PlacementView) -> int:
        return best_finite(view.path_costs())


class NearestPolicy(OnlinePolicy):
    """Attach to the closest feasible server (deployed-system default)."""

    name = "nearest"

    def choose_server(self, view: PlacementView) -> int:
        return best_finite(view.nearest_costs())


class ThresholdPolicy(OnlinePolicy):
    """Nearest placement with threshold-triggered greedy remediation.

    The threshold rule of the online facility assignment literature:
    place each arrival on its nearest feasible server *unless* that
    choice would inflate the resulting path length more than ``tau``
    times past the best achievable — then fall back to the greedy
    (D-minimizing) choice. :meth:`maintain` applies the same test to
    already-connected clients in a bounded round-robin scan, migrating
    clients whose current path cost has drifted past ``tau`` times
    their best alternative (e.g. after a flash crowd or a partition).
    """

    name = "threshold"

    def __init__(self, tau: float = 1.5, scan: int = 8) -> None:
        if tau < 1.0:
            raise InvalidParameterError(f"tau must be >= 1.0, got {tau}")
        if scan < 1:
            raise InvalidParameterError(f"scan must be >= 1, got {scan}")
        self.tau = float(tau)
        self.scan = int(scan)
        self._cursor = 0

    def choose_server(self, view: PlacementView) -> int:
        nearest = view.nearest_costs()
        s_near = int(np.argmin(nearest))
        paths = view.path_costs()
        s_best = best_finite(paths)
        if not np.isfinite(nearest[s_near]):
            return s_best
        if paths[s_near] > self.tau * paths[s_best]:
            return s_best
        return s_near

    def maintain(self, manager: object, *, max_moves: int = 1) -> int:
        clients = manager.clients
        n = len(clients)
        if n == 0 or max_moves < 1:
            return 0
        moves = 0
        scan = min(self.scan, n)
        for k in range(scan):
            node = clients[(self._cursor + k) % n]
            costs = manager.candidate_costs(node)
            best = int(np.argmin(costs))
            if not np.isfinite(costs[best]):
                continue
            current = manager.server_of(node)
            if best == current:
                continue
            if costs[current] > self.tau * costs[best]:
                try:
                    manager.move(node, best)
                except (CapacityError, FailoverError):
                    continue
                moves += 1
                if moves >= max_moves:
                    break
        self._cursor = (self._cursor + scan) % n
        return moves

    def __repr__(self) -> str:
        return f"ThresholdPolicy(tau={self.tau}, scan={self.scan})"


class SpreadPolicy(OnlinePolicy):
    """Capacity-aware spread: least-loaded among the near-best servers.

    Among the servers whose candidate path length is within
    ``(1 + slack)`` of the best, pick the least loaded (ties broken by
    smaller cost, then smaller index). Trades a bounded amount of path
    length for load headroom, so capacity-exhaustion adversaries cannot
    saturate the single greedy-optimal server and force rejections.
    """

    name = "spread"

    def __init__(self, slack: float = 0.1) -> None:
        if slack < 0.0:
            raise InvalidParameterError(f"slack must be >= 0, got {slack}")
        self.slack = float(slack)

    def choose_server(self, view: PlacementView) -> int:
        paths = view.path_costs()
        best = best_finite(paths)
        limit = paths[best] * (1.0 + self.slack)
        eligible = np.flatnonzero(np.isfinite(paths) & (paths <= limit))
        loads = view.loads()
        # lexsort keys are least-significant first: index, cost, load.
        order = np.lexsort(
            (eligible, paths[eligible], loads[eligible])
        )
        return int(eligible[order[0]])

    def __repr__(self) -> str:
        return f"SpreadPolicy(slack={self.slack})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
PolicyFactory = Callable[[], OnlinePolicy]

_POLICIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory under ``name`` (overwrites allowed)."""
    _POLICIES[name] = factory


def policy_names() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_POLICIES)


def validate_policy_name(name: str) -> None:
    """Raise :class:`~repro.errors.InvalidParameterError` for unknown names."""
    if name not in _POLICIES:
        raise InvalidParameterError(
            f"join_policy must be one of {policy_names()}, got {name!r}"
        )


def resolve_policy(spec: Union[str, OnlinePolicy]) -> OnlinePolicy:
    """A fresh policy instance for a name, or a policy object verbatim.

    Each manager gets its own instance so stateful policies (scan
    cursors) never share state across managers.
    """
    if isinstance(spec, OnlinePolicy):
        return spec
    validate_policy_name(spec)
    return _POLICIES[spec]()


register_policy("greedy", GreedyPolicy)
register_policy("nearest", NearestPolicy)
register_policy("threshold", ThresholdPolicy)
register_policy("spread", SpreadPolicy)
