"""Distributed-Greedy Assignment (paper §IV-D).

A distributed local-search refinement. Starting from an initial
assignment (Nearest-Server, per the paper's experiments), servers
cooperate to shrink the maximum interaction path length D:

1. each server measures its inter-server distances and its farthest
   assigned client ``l(s)``, broadcasts them, and every server computes
   D independently;
2. a server holding a client ``c`` involved in a longest interaction
   path broadcasts ``c`` and its ``l(s)`` *excluding* ``c``; every other
   server ``s'`` answers with the maximum path length through itself if
   it adopted ``c``:

       L(s') = max_{s''} { d(c, s') + d(s', s'') + l(s'') }

   (including ``s'' = s'`` and the round trip of ``c`` itself);
3. if ``min L(s') < D``, the client moves to the argmin server. Each
   modification never increases D; with multiple equal-length longest
   paths a move may leave D unchanged;
4. the algorithm terminates when no client on a longest path can move.

This module emulates the protocol faithfully but sequentially (the
paper requires a concurrency-control mechanism so that only one
modification happens at a time). It records the **trace of D after each
modification** — exactly the series plotted in the paper's Fig. 9 — and
counts the protocol messages exchanged (broadcasts and unicast replies)
as a deployment-cost diagnostic.

The per-candidate reply ``L(s')`` is served by
:class:`~repro.core.incremental.IncrementalObjective` in O(|S|) on warm
caches (the engine maintains each server's ``l(s)`` and the best
completions with their runner-ups, so excluding the candidate's home
server is O(1) per destination) instead of rebuilding both ``l``
vectors over all |C| clients per candidate. ``evaluator="recompute"``
retains the O(|C| + |S|^2)-per-candidate path for equivalence testing
and benchmarking; both produce the same replies and hence the same
modification trace.

Capacitated variant (§IV-E): clients may move only to unsaturated
servers, and the initial assignment is capacitated Nearest-Server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import register, register_detailed
from repro.algorithms.nearest import nearest_server
from repro.core.assignment import Assignment
from repro.core.incremental import (
    IncrementalObjective,
    record_candidate_evaluations,
)
from repro.core.metrics import (
    clients_on_longest_paths,
    max_interaction_path_length,
)
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidParameterError
from repro.obs import registry, span
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DistributedGreedyResult:
    """Outcome of a Distributed-Greedy run."""

    assignment: Assignment
    #: D after each assignment modification; ``trace[0]`` is the initial
    #: assignment's D, ``trace[-1]`` the final D (Fig. 9's series).
    trace: Tuple[float, ...]
    #: Number of assignment modifications performed.
    n_modifications: int
    #: Protocol messages exchanged (broadcasts counted once per
    #: recipient, plus unicast replies).
    n_messages: int
    #: Whether the run stopped because no improving move existed (vs
    #: hitting the modification budget).
    converged: bool

    @property
    def initial_d(self) -> float:
        """D of the initial assignment."""
        return self.trace[0]

    @property
    def final_d(self) -> float:
        """D of the final assignment."""
        return self.trace[-1]


def _candidate_lengths_recompute(
    problem: ClientAssignmentProblem, server_of: np.ndarray, c: int
) -> np.ndarray:
    """The pre-engine reply computation: rebuild both ``l`` vectors over
    all clients with ``c`` excluded, then score every destination."""
    cs = problem.client_server
    ss = problem.server_server
    sc = problem.server_client
    n_servers = problem.n_servers
    l_out = np.full(n_servers, -np.inf)
    l_in = np.full(n_servers, -np.inf)
    mask = np.ones(problem.n_clients, dtype=bool)
    mask[c] = False
    idx = np.flatnonzero(mask)
    np.maximum.at(l_out, server_of[idx], cs[idx, server_of[idx]])
    np.maximum.at(l_in, server_of[idx], sc[server_of[idx], idx])
    with np.errstate(invalid="ignore"):
        best_in = np.where(
            np.isfinite(l_in).any(), (ss + l_in[None, :]).max(axis=1), -np.inf
        )
        best_out = np.where(
            np.isfinite(l_out).any(), (l_out[:, None] + ss).max(axis=0), -np.inf
        )
    l_candidates = np.maximum(cs[c, :] + best_in, best_out + sc[:, c])
    return np.maximum(l_candidates, cs[c, :] + sc[:, c])


@register_detailed("distributed-greedy")
def distributed_greedy_detailed(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    max_modifications: Optional[int] = None,
    evaluator: str = "incremental",
    backend: str = "auto",
) -> DistributedGreedyResult:
    """Run Distributed-Greedy and return the full result object.

    Parameters
    ----------
    problem:
        The instance; capacities are honored when present.
    seed:
        Accepted for interface uniformity; the algorithm is
        deterministic given the initial assignment.
    initial:
        Starting assignment; defaults to (capacitated) Nearest-Server,
        matching the paper's experiments.
    max_modifications:
        Safety budget; defaults to ``10 * |C|``. The paper observes
        convergence within a few tens of modifications.
    evaluator:
        ``"incremental"`` (default) serves ``L(s')`` replies from the
        incremental engine; ``"recompute"`` uses the from-scratch
        per-candidate path. Same trace either way.
    backend:
        Kernel backend for the incremental engine (see
        :func:`repro.kernels.resolve_backend`); ignored under
        ``evaluator="recompute"``.
    """
    if evaluator not in ("incremental", "recompute"):
        raise InvalidParameterError(
            f"evaluator must be 'incremental' or 'recompute', got {evaluator!r}"
        )
    if initial is None:
        initial = nearest_server(problem)
    if max_modifications is None:
        max_modifications = 10 * problem.n_clients

    n_servers = problem.n_servers
    incremental = evaluator == "incremental"

    server_of = initial.server_of.copy()
    loads = np.bincount(server_of, minlength=n_servers)
    capacities = problem.capacities
    engine = (
        IncrementalObjective(problem, server_of, history=False, backend=backend)
        if incremental
        else None
    )

    def current_assignment() -> Assignment:
        return Assignment(problem, server_of, validate=False)

    if incremental:
        d_current = engine.d()
    else:
        d_current = max_interaction_path_length(current_assignment())
    trace: List[float] = [d_current]
    n_messages = 0
    # Initial protocol round: every server broadcasts its inter-server
    # distances and l(s) to the other servers.
    n_messages += n_servers * (n_servers - 1)
    converged = False

    with span(
        "dga.solve",
        clients=problem.n_clients,
        servers=n_servers,
        evaluator=evaluator,
    ):
        while len(trace) - 1 < max_modifications:
            candidates = clients_on_longest_paths(current_assignment())
            moved = False
            for c in candidates:
                c = int(c)
                home = int(server_of[c])

                # Broadcast of c's identity and l(home) minus c.
                n_messages += n_servers - 1

                # L(s') for every server s' (the replies).
                if incremental:
                    l_candidates, _d_rest = engine.candidate_paths(c)
                else:
                    record_candidate_evaluations(n_servers)
                    l_candidates = _candidate_lengths_recompute(
                        problem, server_of, c
                    )

                # Replies from the other servers.
                n_messages += n_servers - 1

                if capacities is not None:
                    saturated = (loads >= capacities) & (
                        np.arange(n_servers) != home
                    )
                    l_candidates = np.where(saturated, np.inf, l_candidates)

                best_server = int(np.argmin(l_candidates))
                if l_candidates[best_server] < d_current - 1e-12 and best_server != home:
                    loads[home] -= 1
                    loads[best_server] += 1
                    server_of[c] = best_server
                    # The new server broadcasts its updated l(s).
                    n_messages += n_servers - 1
                    if incremental:
                        engine.apply(c, best_server)
                        d_current = engine.d()
                    else:
                        d_current = max_interaction_path_length(
                            current_assignment()
                        )
                    trace.append(d_current)
                    moved = True
                    break  # re-derive the longest paths after each move
            if not moved:
                converged = True
                break

    metrics = registry()
    metrics.counter("dga.runs").inc()
    metrics.counter("dga.modifications").inc(len(trace) - 1)
    metrics.counter("dga.messages").inc(n_messages)
    final = Assignment(problem, server_of)
    return DistributedGreedyResult(
        assignment=final,
        trace=tuple(trace),
        n_modifications=len(trace) - 1,
        n_messages=n_messages,
        converged=converged,
    )


@register("distributed-greedy")
def distributed_greedy(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    max_modifications: Optional[int] = None,
    evaluator: str = "incremental",
    backend: str = "auto",
) -> Assignment:
    """Registry entry point returning only the final assignment."""
    return distributed_greedy_detailed(
        problem,
        seed=seed,
        initial=initial,
        max_modifications=max_modifications,
        evaluator=evaluator,
        backend=backend,
    ).assignment
