"""Distributed-Greedy Assignment (paper §IV-D).

A distributed local-search refinement. Starting from an initial
assignment (Nearest-Server, per the paper's experiments), servers
cooperate to shrink the maximum interaction path length D:

1. each server measures its inter-server distances and its farthest
   assigned client ``l(s)``, broadcasts them, and every server computes
   D independently;
2. a server holding a client ``c`` involved in a longest interaction
   path broadcasts ``c`` and its ``l(s)`` *excluding* ``c``; every other
   server ``s'`` answers with the maximum path length through itself if
   it adopted ``c``:

       L(s') = max_{s''} { d(c, s') + d(s', s'') + l(s'') }

   (including ``s'' = s'`` and the round trip of ``c`` itself);
3. if ``min L(s') < D``, the client moves to the argmin server. Each
   modification never increases D; with multiple equal-length longest
   paths a move may leave D unchanged;
4. the algorithm terminates when no client on a longest path can move.

This module emulates the protocol faithfully but sequentially (the
paper requires a concurrency-control mechanism so that only one
modification happens at a time). It records the **trace of D after each
modification** — exactly the series plotted in the paper's Fig. 9 — and
counts the protocol messages exchanged (broadcasts and unicast replies)
as a deployment-cost diagnostic.

Capacitated variant (§IV-E): clients may move only to unsaturated
servers, and the initial assignment is capacitated Nearest-Server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import register
from repro.algorithms.nearest import nearest_server
from repro.core.assignment import Assignment
from repro.core.metrics import (
    clients_on_longest_paths,
    max_interaction_path_length,
)
from repro.core.problem import ClientAssignmentProblem
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DistributedGreedyResult:
    """Outcome of a Distributed-Greedy run."""

    assignment: Assignment
    #: D after each assignment modification; ``trace[0]`` is the initial
    #: assignment's D, ``trace[-1]`` the final D (Fig. 9's series).
    trace: Tuple[float, ...]
    #: Number of assignment modifications performed.
    n_modifications: int
    #: Protocol messages exchanged (broadcasts counted once per
    #: recipient, plus unicast replies).
    n_messages: int
    #: Whether the run stopped because no improving move existed (vs
    #: hitting the modification budget).
    converged: bool

    @property
    def initial_d(self) -> float:
        """D of the initial assignment."""
        return self.trace[0]

    @property
    def final_d(self) -> float:
        """D of the final assignment."""
        return self.trace[-1]


def distributed_greedy_detailed(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    max_modifications: Optional[int] = None,
) -> DistributedGreedyResult:
    """Run Distributed-Greedy and return the full result object.

    Parameters
    ----------
    problem:
        The instance; capacities are honored when present.
    seed:
        Accepted for interface uniformity; the algorithm is
        deterministic given the initial assignment.
    initial:
        Starting assignment; defaults to (capacitated) Nearest-Server,
        matching the paper's experiments.
    max_modifications:
        Safety budget; defaults to ``10 * |C|``. The paper observes
        convergence within a few tens of modifications.
    """
    if initial is None:
        initial = nearest_server(problem)
    if max_modifications is None:
        max_modifications = 10 * problem.n_clients

    cs = problem.client_server
    ss = problem.server_server
    sc = problem.matrix.values[np.ix_(problem.servers, problem.clients)]
    n_servers = problem.n_servers

    server_of = initial.server_of.copy()
    loads = np.bincount(server_of, minlength=n_servers)
    capacities = problem.capacities

    def current_assignment() -> Assignment:
        return Assignment(problem, server_of, validate=False)

    assignment = current_assignment()
    d_current = max_interaction_path_length(assignment)
    trace: List[float] = [d_current]
    n_messages = 0
    # Initial protocol round: every server broadcasts its inter-server
    # distances and l(s) to the other servers.
    n_messages += n_servers * (n_servers - 1)
    converged = False

    while len(trace) - 1 < max_modifications:
        assignment = current_assignment()
        d_current = max_interaction_path_length(assignment)
        candidates = clients_on_longest_paths(assignment)
        moved = False
        for c in candidates:
            c = int(c)
            home = int(server_of[c])
            # l(s) excluding c from its home server (both directions).
            l_out = np.full(n_servers, -np.inf)
            l_in = np.full(n_servers, -np.inf)
            mask = np.ones(problem.n_clients, dtype=bool)
            mask[c] = False
            members = server_of[mask]
            idx = np.flatnonzero(mask)
            np.maximum.at(l_out, members, cs[idx, server_of[idx]])
            np.maximum.at(l_in, members, sc[server_of[idx], idx])

            # Broadcast of c's identity and l(home) minus c.
            n_messages += n_servers - 1

            # L(s') for every server s' (vectorized over s' and s'').
            # Outgoing paths from c: d(c,s') + max_{s''}(d(s',s'') + l_in[s''])
            # Incoming paths to c:  max_{s''}(l_out[s''] + d(s'',s')) + d(s',c)
            # Round trip of c:      d(c,s') + d(s',c)
            with np.errstate(invalid="ignore"):
                best_in = np.where(
                    np.isfinite(l_in).any(), (ss + l_in[None, :]).max(axis=1), -np.inf
                )
                best_out = np.where(
                    np.isfinite(l_out).any(), (l_out[:, None] + ss).max(axis=0), -np.inf
                )
            l_candidates = np.maximum(cs[c, :] + best_in, best_out + sc[:, c])
            l_candidates = np.maximum(l_candidates, cs[c, :] + sc[:, c])

            # Replies from the other servers.
            n_messages += n_servers - 1

            if capacities is not None:
                saturated = (loads >= capacities) & (np.arange(n_servers) != home)
                l_candidates = np.where(saturated, np.inf, l_candidates)

            best_server = int(np.argmin(l_candidates))
            if l_candidates[best_server] < d_current - 1e-12 and best_server != home:
                loads[home] -= 1
                loads[best_server] += 1
                server_of[c] = best_server
                # The new server broadcasts its updated l(s).
                n_messages += n_servers - 1
                assignment = current_assignment()
                d_current = max_interaction_path_length(assignment)
                trace.append(d_current)
                moved = True
                break  # re-derive the longest paths after each move
        if not moved:
            converged = True
            break

    final = Assignment(problem, server_of)
    return DistributedGreedyResult(
        assignment=final,
        trace=tuple(trace),
        n_modifications=len(trace) - 1,
        n_messages=n_messages,
        converged=converged,
    )


@register("distributed-greedy")
def distributed_greedy(
    problem: ClientAssignmentProblem,
    *,
    seed: SeedLike = None,
    initial: Optional[Assignment] = None,
    max_modifications: Optional[int] = None,
) -> Assignment:
    """Registry entry point returning only the final assignment."""
    return distributed_greedy_detailed(
        problem,
        seed=seed,
        initial=initial,
        max_modifications=max_modifications,
    ).assignment
