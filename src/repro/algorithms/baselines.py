"""Additional baselines beyond the paper's four heuristics.

§III motivates the problem's difficulty by contrasting two extremes:
assigning each client to its nearest server (optimizes client-server
legs, ignores inter-server legs) and assigning *all* clients to a single
server (eliminates inter-server legs, bloats client-server legs).
:func:`best_single_server` implements the strongest version of the
latter — try every server and keep the best — and
:func:`random_assignment` provides a chance-level reference for
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import register
from repro.core.assignment import Assignment
from repro.core.problem import ClientAssignmentProblem
from repro.errors import CapacityError
from repro.utils.rng import SeedLike, ensure_rng


@register("best-single-server")
def best_single_server(
    problem: ClientAssignmentProblem, *, seed: SeedLike = None
) -> Assignment:
    """Assign every client to the single server minimizing D.

    With all clients on one server ``s``, the maximum interaction path
    length is ``max_{c1,c2} d(c1, s) + d(s, c2)`` — the sum of the two
    largest legs (same client allowed: the round trip). O(|C| |S|).

    Raises :class:`~repro.errors.CapacityError` on capacitated problems
    whose per-server capacity cannot hold every client.
    """
    if problem.is_capacitated:
        feasible = problem.capacities >= problem.n_clients
        if not feasible.any():
            raise CapacityError(
                "best-single-server needs one server able to hold all "
                f"{problem.n_clients} clients"
            )
    else:
        feasible = np.ones(problem.n_servers, dtype=bool)
    cs = problem.client_server
    sc = problem.server_client
    d_per_server = cs.max(axis=0) + sc.max(axis=1)  # (S,)
    d_per_server = np.where(feasible, d_per_server, np.inf)
    best = int(np.argmin(d_per_server))
    return Assignment(
        problem, np.full(problem.n_clients, best, dtype=np.int64)
    )


@register("random")
def random_assignment(
    problem: ClientAssignmentProblem, *, seed: SeedLike = None
) -> Assignment:
    """Assign clients to servers uniformly at random.

    Capacitated problems are handled by sampling a random feasible
    slot-permutation: server slots are materialized up to capacity,
    shuffled, and dealt to clients.
    """
    rng = ensure_rng(seed)
    if not problem.is_capacitated:
        return Assignment(
            problem,
            rng.integers(0, problem.n_servers, size=problem.n_clients),
        )
    slots = np.repeat(np.arange(problem.n_servers), problem.capacities)
    rng.shuffle(slots)
    return Assignment(problem, slots[: problem.n_clients])
