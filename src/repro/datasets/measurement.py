"""Simulating a King-style measurement campaign.

The paper's input matrices come from *measurements* (King probes), not
ground truth: each pair is probed a few times, probes jitter, some pairs
never return a usable estimate (the reason Meridian shrinks from 2500 to
1796 nodes). This module closes the loop for the reproduction: given a
ground-truth matrix, :func:`simulate_king_measurements` produces the raw
measurement matrix a campaign would yield —

- per-probe latency = truth × jitter factor,
- per-pair estimate = a chosen percentile of its probes (King reports
  medians; planning systems often keep higher percentiles, §II-E),
- a loss process that leaves pairs unmeasured (NaN) at a configurable
  rate, optionally correlated per node (a host behind a broken
  recursive resolver loses *all* its pairs — the real King failure
  mode).

Together with :func:`repro.datasets.cleaning.drop_incomplete_nodes`
this reproduces the full raw-data → paper-input pipeline, and enables
the measurement-error ablation: assign on the measured matrix, score on
the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.net.jitter import JitterModel, LogNormalJitter
from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class MeasurementCampaign:
    """Parameters of a simulated King campaign."""

    #: Probes per ordered pair.
    probes_per_pair: int = 5
    #: Per-probe multiplicative jitter model.
    jitter: JitterModel = LogNormalJitter(0.15)
    #: Percentile of a pair's probes kept as its estimate (King: median).
    estimate_percentile: float = 50.0
    #: Probability that a pair yields no usable estimate at all.
    pair_loss_rate: float = 0.0
    #: Probability that a *node* is unmeasurable (all its pairs lost).
    node_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.probes_per_pair < 1:
            raise ValueError(
                f"probes_per_pair must be >= 1, got {self.probes_per_pair}"
            )
        if not 0.0 <= self.estimate_percentile <= 100.0:
            raise ValueError("estimate_percentile must be in [0, 100]")
        for name in ("pair_loss_rate", "node_loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")


def simulate_king_measurements(
    truth: LatencyMatrix,
    campaign: Optional[MeasurementCampaign] = None,
    *,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Run a campaign against ground truth; returns the raw matrix.

    The result is a plain array (NaN marks unmeasured pairs) ready for
    :func:`repro.datasets.cleaning.drop_incomplete_nodes`. The output is
    symmetrized the way King is (each unordered pair measured once, from
    the lower-index vantage).
    """
    if campaign is None:
        campaign = MeasurementCampaign()
    rng = ensure_rng(seed)
    n = truth.n_nodes
    d = truth.values
    out = np.zeros((n, n))

    # Per-pair probes: sample factors for the upper triangle, reduce to
    # the estimate percentile.
    iu = np.triu_indices(n, k=1)
    n_pairs = iu[0].size
    factors = campaign.jitter.sample_factor(
        rng, size=(n_pairs, campaign.probes_per_pair)
    )
    estimates = d[iu] * np.percentile(
        factors, campaign.estimate_percentile, axis=1
    )
    out[iu] = estimates
    out.T[iu] = estimates

    # Pair-level losses.
    if campaign.pair_loss_rate > 0:
        lost = rng.uniform(size=n_pairs) < campaign.pair_loss_rate
        rows, cols = iu[0][lost], iu[1][lost]
        out[rows, cols] = np.nan
        out[cols, rows] = np.nan

    # Node-level losses (correlated: a dead vantage loses every pair).
    if campaign.node_loss_rate > 0:
        dead = rng.uniform(size=n) < campaign.node_loss_rate
        out[dead, :] = np.nan
        out[:, dead] = np.nan

    np.fill_diagonal(out, 0.0)
    return out


def measurement_error_report(
    truth: LatencyMatrix, measured: np.ndarray
) -> Tuple[float, float]:
    """(median, p90) relative error of measured vs true latencies,
    over pairs that were measured."""
    d = truth.values
    n = truth.n_nodes
    off = ~np.eye(n, dtype=bool)
    valid = off & np.isfinite(measured)
    if not valid.any():
        raise ValueError("no measured pairs to compare")
    rel = np.abs(measured[valid] - d[valid]) / d[valid]
    return float(np.median(rel)), float(np.percentile(rel, 90))
