"""Synthetic Internet latency matrices with realistic distortions.

:class:`InternetLatencyModel` layers the distortions observed in real
King-style measurements on top of a clustered Euclidean embedding:

1. **Clustered geometry** — hosts group into unequal clusters (continents
   / major ASes); intra-cluster latencies are much smaller than
   inter-cluster ones (:func:`repro.net.topology.clustered_points`).
2. **Access-link inflation** — each host gets a nonnegative additive
   "last-mile" delay applied to all of its measurements, producing the
   hub-spoke structure of DSL/cable hosts and a heavy right tail.
3. **Multiplicative noise** — per-pair lognormal measurement noise.
4. **Asymmetry** — independent noise per direction plus a small per-host
   directional bias; King round-trip halving hides most but not all
   asymmetry.
5. **Path inefficiency spikes** — a random subset of pairs is inflated
   by a large factor (BGP detours), creating triangle-inequality
   violations: the detour through a third host beats the direct path.
   This is the property that breaks Nearest-Server Assignment's
   3-approximation guarantee on real data (paper §V-A, footnote 2).
6. **Missing measurements** — a random subset of pairs is marked NaN so
   the cleaning pipeline (drop incomplete nodes, as the paper does:
   2500 -> 1796 for Meridian) has real work to do.

All randomness flows from a single seed for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.net.topology import clustered_points
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class InternetLatencyModel:
    """Parameter bundle for synthetic Internet latency generation.

    Latency unit is milliseconds. Defaults are tuned so that generated
    matrices match the gross statistics reported for King data sets:
    median ~50-100 ms, a right tail into the hundreds, and a triangle
    violation rate of a few percent.
    """

    n_nodes: int
    #: Number of geographic clusters.
    n_clusters: int = 8
    #: Embedding dimension; ~5 fits Internet latency well (Vivaldi et al.).
    dim: int = 5
    #: Cluster standard deviation in the unit hypercube.
    cluster_spread: float = 0.07
    #: Scale converting embedding distance to milliseconds.
    geo_scale: float = 180.0
    #: Mean of each host's additive access delay (exponential), ms.
    access_delay_mean: float = 8.0
    #: Sigma of the per-pair lognormal measurement noise.
    noise_sigma: float = 0.10
    #: Standard deviation of per-host directional bias (fractional).
    asymmetry_sigma: float = 0.02
    #: Fraction of ordered pairs inflated as BGP-detour spikes.
    spike_fraction: float = 0.04
    #: Multiplicative inflation of spiked pairs (lognormal mean factor).
    spike_strength: float = 0.8
    #: Fraction of ordered pairs whose measurement is missing (NaN).
    missing_fraction: float = 0.0
    #: Force output symmetric (King reports halved round trips).
    symmetric: bool = True
    #: Floor for any off-diagonal latency, ms.
    min_latency: float = 0.5

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be >= 2, got {self.n_nodes}")
        for name in ("cluster_spread", "geo_scale", "min_latency"):
            if not getattr(self, name) > 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "access_delay_mean",
            "noise_sigma",
            "asymmetry_sigma",
            "spike_strength",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be nonnegative")
        for name in ("spike_fraction", "missing_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")

    # ------------------------------------------------------------------
    def generate_raw(self, seed: SeedLike = None) -> np.ndarray:
        """Generate the raw measurement matrix (may contain NaN).

        Returns an ``(n, n)`` float array with a zero diagonal. Use
        :meth:`generate` for a validated, cleaned
        :class:`~repro.net.latency.LatencyMatrix`.
        """
        rng = ensure_rng(seed)
        n = self.n_nodes

        points = clustered_points(
            n,
            n_clusters=self.n_clusters,
            dim=self.dim,
            cluster_spread=self.cluster_spread,
            seed=rng,
        )
        diff = points[:, None, :] - points[None, :, :]
        base = np.sqrt((diff**2).sum(axis=2)) * self.geo_scale

        # Per-host additive access delay, applied on both endpoints.
        access = rng.exponential(self.access_delay_mean, size=n)
        base = base + access[:, None] + access[None, :]

        # Per-pair multiplicative lognormal measurement noise.
        if self.noise_sigma > 0:
            base = base * rng.lognormal(0.0, self.noise_sigma, size=(n, n))

        # Small per-host directional bias (outgoing faster/slower).
        if self.asymmetry_sigma > 0:
            bias = rng.normal(0.0, self.asymmetry_sigma, size=n)
            base = base * (1.0 + bias[:, None] - bias[None, :])

        # BGP detour spikes: inflate a random subset of pairs. Spikes are
        # what create triangle-inequality violations — a spiked pair
        # (u, v) usually has a third host w with d(u,w)+d(w,v) < d(u,v).
        if self.spike_fraction > 0:
            spikes = rng.uniform(size=(n, n)) < self.spike_fraction
            factors = 1.0 + rng.lognormal(
                np.log(max(self.spike_strength, 1e-9)), 0.5, size=(n, n)
            )
            base = np.where(spikes, base * factors, base)

        if self.symmetric:
            base = (base + base.T) / 2.0

        np.fill_diagonal(base, 0.0)
        off = ~np.eye(n, dtype=bool)
        base[off] = np.maximum(base[off], self.min_latency)

        if self.missing_fraction > 0:
            missing = rng.uniform(size=(n, n)) < self.missing_fraction
            if self.symmetric:
                missing = missing | missing.T
            np.fill_diagonal(missing, False)
            base = np.where(missing, np.nan, base)

        return base

    def generate(self, seed: SeedLike = None, *, dtype=None) -> LatencyMatrix:
        """Generate a complete (NaN-free) validated latency matrix.

        When ``missing_fraction > 0`` the raw matrix is cleaned by
        dropping incomplete nodes exactly as the paper does for Meridian;
        the resulting matrix therefore has *fewer* than ``n_nodes`` rows.
        Synthesis always runs in float64; ``dtype`` selects the storage
        type of the result (``None`` = float64).
        """
        raw = self.generate_raw(seed)
        if np.isnan(raw).any():
            from repro.datasets.cleaning import drop_incomplete_nodes

            cleaned, _report = drop_incomplete_nodes(raw, dtype=dtype)
            return cleaned
        from repro.datasets.io import as_latency_matrix

        return as_latency_matrix(raw, dtype=dtype, where="synthetic matrix")


def small_world_latencies(
    n: int, *, seed: SeedLike = None, scale: float = 120.0, dtype=None
) -> LatencyMatrix:
    """A quick non-clustered synthetic matrix for unit tests.

    Uniform points in a 3-D cube with mild lognormal noise — cheaper than
    the full :class:`InternetLatencyModel` and still non-metric.
    ``dtype`` selects the storage type (``None`` = float64).
    """
    rng = ensure_rng(seed)
    coords = rng.uniform(0.0, 1.0, size=(n, 3))
    diff = coords[:, None, :] - coords[None, :, :]
    d = np.sqrt((diff**2).sum(axis=2)) * scale
    d = d * rng.lognormal(0.0, 0.15, size=(n, n))
    d = (d + d.T) / 2.0
    np.fill_diagonal(d, 0.0)
    off = ~np.eye(n, dtype=bool)
    d[off] = np.maximum(d[off], 0.5)
    from repro.datasets.io import as_latency_matrix

    return as_latency_matrix(d, dtype=dtype, where="small-world matrix")
