"""Measurement-matrix cleaning (the paper's 2500 -> 1796 Meridian step).

King-style measurement campaigns leave holes: some node pairs have no
usable latency estimate. The paper handles this by "discarding the nodes
involved in unavailable measurements" until a complete pairwise matrix
remains. :func:`drop_incomplete_nodes` implements that with a greedy
peeling strategy: repeatedly remove the node participating in the most
missing pairs. Greedy peeling is the standard heuristic for the
underlying (NP-hard) maximum-complete-submatrix problem and is what the
published cleaning scripts for these data sets did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.net.latency import LatencyMatrix


@dataclass(frozen=True)
class CleaningReport:
    """What the cleaning pass did."""

    #: Node count before cleaning.
    n_before: int
    #: Node count after cleaning.
    n_after: int
    #: Indices (into the original matrix) of the dropped nodes.
    dropped: Tuple[int, ...]
    #: Number of missing (NaN / nonpositive off-diagonal) entries repaired
    #: by dropping nodes.
    missing_entries: int

    @property
    def kept(self) -> int:
        """Alias for ``n_after``."""
        return self.n_after


def drop_incomplete_nodes(
    raw: np.ndarray,
    *,
    treat_nonpositive_as_missing: bool = True,
    dtype=None,
) -> Tuple[LatencyMatrix, CleaningReport]:
    """Peel nodes until the remaining matrix is complete and valid.

    Parameters
    ----------
    raw:
        Square measurement matrix; missing entries are NaN (and,
        optionally, nonpositive off-diagonal values — real King dumps use
        ``-1`` or ``0`` as sentinels).
    treat_nonpositive_as_missing:
        Map off-diagonal values ``<= 0`` to missing before peeling.
    dtype:
        Storage dtype of the cleaned matrix (``None`` = float64; the
        peeling itself always runs in float64).

    Returns
    -------
    (LatencyMatrix, CleaningReport)

    Raises
    ------
    DatasetError
        If the input is not square or peeling would remove every node.
    """
    d = np.asarray(raw, dtype=np.float64).copy()
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise DatasetError(f"measurement matrix must be square, got {d.shape}")
    n = d.shape[0]
    off_diag = ~np.eye(n, dtype=bool)
    missing = ~np.isfinite(d)
    if treat_nonpositive_as_missing:
        missing |= (d <= 0.0) & off_diag
    missing &= off_diag
    total_missing = int(missing.sum())

    alive = np.ones(n, dtype=bool)
    dropped: List[int] = []
    # Count, per node, missing pairs among currently-alive nodes.
    while True:
        sub = missing[np.ix_(alive, alive)]
        if not sub.any():
            break
        per_node = sub.sum(axis=0) + sub.sum(axis=1)
        alive_idx = np.flatnonzero(alive)
        worst = alive_idx[int(np.argmax(per_node))]
        alive[worst] = False
        dropped.append(int(worst))
        if not alive.any():
            raise DatasetError(
                "every node was dropped during cleaning; matrix has no "
                "complete submatrix"
            )

    keep = np.flatnonzero(alive)
    cleaned = d[np.ix_(keep, keep)]
    np.fill_diagonal(cleaned, 0.0)
    report = CleaningReport(
        n_before=n,
        n_after=int(keep.size),
        dropped=tuple(dropped),
        missing_entries=total_missing,
    )
    from repro.datasets.io import as_latency_matrix

    return as_latency_matrix(cleaned, dtype=dtype, where="cleaned matrix"), report
