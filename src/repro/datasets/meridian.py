"""The Meridian latency data set: loader and synthetic equivalent.

The real Meridian data set (Cornell) measured pairwise latencies between
2500 Internet nodes with the King technique. The paper discards nodes
with unavailable measurements, leaving a complete matrix over **1796
nodes** — that number is therefore baked in as
:data:`MERIDIAN_NODE_COUNT`.

:func:`load_meridian_file` parses the published
``meridian_matrix`` text format (rows of microsecond latencies, ``-1``
for missing) and applies the same cleaning.
:func:`synthesize_meridian_like` generates a statistically similar
matrix at any size (default full size) for offline use; see
:mod:`repro.datasets.synthetic` for what "similar" means.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


from repro.datasets.cleaning import CleaningReport, drop_incomplete_nodes
from repro.datasets.io import PathLike, load_matrix_auto
from repro.datasets.synthetic import InternetLatencyModel
from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike

#: Node count of the cleaned Meridian matrix used in the paper.
MERIDIAN_NODE_COUNT = 1796

#: Raw node count of the Meridian measurement campaign.
MERIDIAN_RAW_NODE_COUNT = 2500


def meridian_model(n_nodes: int = MERIDIAN_NODE_COUNT) -> InternetLatencyModel:
    """The parameter bundle used for Meridian-like synthesis.

    Tuned to reproduce the gross statistics of King-measured wide-area
    latencies: strong continental clustering (many distinct regions),
    median near ~70 ms, p90 in the few-hundred-ms range, and a
    triangle-violation rate of a few percent.
    """
    return InternetLatencyModel(
        n_nodes=n_nodes,
        n_clusters=9,
        dim=5,
        cluster_spread=0.06,
        geo_scale=200.0,
        access_delay_mean=10.0,
        noise_sigma=0.12,
        asymmetry_sigma=0.0,  # King halves round trips -> symmetric
        spike_fraction=0.05,
        spike_strength=0.9,
        missing_fraction=0.0,
        symmetric=True,
    )


def synthesize_meridian_like(
    n_nodes: int = MERIDIAN_NODE_COUNT,
    *,
    seed: SeedLike = 0,
    missing_fraction: float = 0.0,
    dtype=None,
) -> LatencyMatrix:
    """Generate a Meridian-like complete latency matrix.

    Parameters
    ----------
    n_nodes:
        Matrix size; the paper's full size by default. Experiments often
        use a few hundred nodes for speed — the statistical structure is
        size-invariant.
    seed:
        RNG seed for reproducibility.
    missing_fraction:
        When positive, inject missing measurements and clean them out
        (exercises the same pipeline the real data goes through), so the
        returned matrix is smaller than ``n_nodes``.
    dtype:
        Storage dtype of the result (``None`` = float64); synthesis
        always runs in float64, so a float32 request costs one rounding.
    """
    model = meridian_model(n_nodes)
    if missing_fraction:
        model = dataclasses.replace(model, missing_fraction=missing_fraction)
    return model.generate(seed, dtype=dtype)


def load_meridian_file(
    path: PathLike, *, unit_scale: float = 1e-3, dtype=None
) -> Tuple[LatencyMatrix, CleaningReport]:
    """Load a real Meridian matrix file and clean it.

    The published file stores **microseconds**; ``unit_scale`` converts
    to the package's millisecond convention (default ``1e-3``). Returns
    the cleaned matrix and the cleaning report (which should show
    ~2500 -> ~1796 on the original file). ``dtype`` selects the cleaned
    matrix's storage type (``None`` = float64; parsing and unit scaling
    always run in float64).
    """
    raw = load_matrix_auto(path) * unit_scale
    return drop_incomplete_nodes(raw, dtype=dtype)
