"""The MIT King (p2psim) latency data set: loader and synthetic equivalent.

The MIT data set is a complete pairwise latency matrix over **1024
nodes**, measured with King and published with p2psim. The text format
is one row per line of whitespace-separated latencies (milliseconds or
microseconds depending on the dump; the loader takes a unit scale).

The synthetic equivalent mirrors :mod:`repro.datasets.meridian` with
slightly different cluster structure — the MIT node set is smaller and
less globally spread than Meridian's, so fewer, tighter clusters.
"""

from __future__ import annotations

from typing import Tuple

from repro.datasets.cleaning import CleaningReport, drop_incomplete_nodes
from repro.datasets.io import PathLike, load_matrix_auto
from repro.datasets.synthetic import InternetLatencyModel
from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike

#: Node count of the MIT King matrix used in the paper.
MIT_KING_NODE_COUNT = 1024


def mit_model(n_nodes: int = MIT_KING_NODE_COUNT) -> InternetLatencyModel:
    """Parameter bundle for MIT-King-like synthesis."""
    return InternetLatencyModel(
        n_nodes=n_nodes,
        n_clusters=6,
        dim=5,
        cluster_spread=0.08,
        geo_scale=170.0,
        access_delay_mean=7.0,
        noise_sigma=0.10,
        asymmetry_sigma=0.0,
        spike_fraction=0.04,
        spike_strength=0.8,
        missing_fraction=0.0,
        symmetric=True,
    )


def synthesize_mit_like(
    n_nodes: int = MIT_KING_NODE_COUNT, *, seed: SeedLike = 0, dtype=None
) -> LatencyMatrix:
    """Generate an MIT-King-like complete latency matrix.

    ``dtype`` selects the storage type (``None`` = float64).
    """
    return mit_model(n_nodes).generate(seed, dtype=dtype)


def load_mit_king_file(
    path: PathLike, *, unit_scale: float = 1.0, dtype=None
) -> Tuple[LatencyMatrix, CleaningReport]:
    """Load a real p2psim King matrix file and clean it.

    ``unit_scale`` converts the file's unit to milliseconds (the p2psim
    dump is in milliseconds already, so the default is 1.0; use ``1e-3``
    for microsecond dumps). ``dtype`` selects the cleaned matrix's
    storage type (``None`` = float64).
    """
    raw = load_matrix_auto(path) * unit_scale
    return drop_incomplete_nodes(raw, dtype=dtype)
