"""Reading and writing latency matrices in the common on-disk formats.

Supported formats:

- **text** — whitespace-separated floats, one matrix row per line; the
  format of the MIT p2psim King matrix. Comment lines starting with
  ``#`` are skipped. Sentinels ``-1`` and NaN denote missing entries.
- **npy** — raw numpy arrays for fast caching of generated matrices.

``load_matrix_auto`` dispatches on file extension.

Dtype discipline: every reader parses in float64 (the ``-1`` → NaN
sentinel mapping and unit scaling stay exact) and casts once at the
end; :func:`as_latency_matrix` is the single raw-array →
:class:`~repro.net.latency.LatencyMatrix` normalization point, with
validation errors reported under the stable ``dataset-error`` code.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import DatasetError
from repro.net.latency import ALLOWED_DTYPES, LatencyMatrix

PathLike = Union[str, os.PathLike]


def _cast(matrix: np.ndarray, dtype) -> np.ndarray:
    """Cast a parsed matrix to its storage dtype (``None`` = preserve).

    ``None`` keeps a float32/float64 array as-is and coerces any other
    element type to float64 — the historical behavior.
    """
    if dtype is None:
        if matrix.dtype in ALLOWED_DTYPES:
            return matrix
        return np.asarray(matrix, dtype=np.float64)
    dt = np.dtype(dtype)
    if dt not in ALLOWED_DTYPES:
        raise DatasetError(
            f"matrix dtype must be float32 or float64, got {dt}"
        )
    return np.asarray(matrix, dtype=dt)


def as_latency_matrix(
    raw: np.ndarray,
    *,
    dtype=None,
    where: str = "matrix",
) -> LatencyMatrix:
    """Normalize a raw array into a validated :class:`LatencyMatrix`.

    The single choke point between on-disk/generated arrays and the
    solver stack: checks the array is square, fully finite (no NaN
    sentinels left), and non-negative, reporting failures as
    :class:`~repro.errors.DatasetError` (stable code ``dataset-error``)
    with ``where`` naming the source. The remaining structural rules
    (zero diagonal, strictly positive off-diagonals) are enforced by the
    :class:`LatencyMatrix` constructor itself.

    ``dtype`` selects the storage type (``numpy.float32`` /
    ``numpy.float64``); ``None`` preserves a float input's dtype,
    coercing non-float arrays to float64.
    """
    d = np.asarray(raw)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise DatasetError(
            f"{where}: expected a square 2-D matrix, got shape {d.shape}"
        )
    if d.size == 0:
        raise DatasetError(f"{where}: matrix is empty")
    d = _cast(d, dtype)
    if not np.all(np.isfinite(d)):
        raise DatasetError(
            f"{where}: matrix contains NaN or infinite entries "
            f"(clean missing measurements first — see "
            f"repro.datasets.cleaning.drop_incomplete_nodes)"
        )
    if np.any(d < 0):
        raise DatasetError(f"{where}: matrix contains negative latencies")
    return LatencyMatrix(d, dtype=d.dtype)


def read_matrix_text(path: PathLike, *, dtype=None) -> np.ndarray:
    """Read a whitespace-separated square matrix (raw, may contain NaN).

    ``-1`` entries are mapped to NaN (the p2psim missing-value
    sentinel); the mapping happens in float64 before the optional
    ``dtype`` cast so sentinels are matched exactly.
    """
    rows = []
    expected_width = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                row = np.array([float(tok) for tok in stripped.split()])
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: unparseable row: {exc}") from exc
            if expected_width is None:
                expected_width = row.size
            elif row.size != expected_width:
                raise DatasetError(
                    f"{path}:{line_no}: row has {row.size} entries, expected "
                    f"{expected_width}"
                )
            rows.append(row)
    if not rows:
        raise DatasetError(f"{path}: no matrix rows found")
    matrix = np.vstack(rows)
    if matrix.shape[0] != matrix.shape[1]:
        raise DatasetError(
            f"{path}: matrix is {matrix.shape[0]}x{matrix.shape[1]}, expected square"
        )
    matrix = np.where(matrix == -1.0, np.nan, matrix)
    return _cast(matrix, dtype)


def write_matrix_text(path: PathLike, matrix: np.ndarray, *, fmt: str = "%.3f") -> None:
    """Write a matrix in the text format (NaN written as ``-1``)."""
    out = np.asarray(matrix, dtype=np.float64)
    out = np.where(np.isfinite(out), out, -1.0)
    np.savetxt(path, out, fmt=fmt)


def read_matrix_npy(path: PathLike, *, dtype=None) -> np.ndarray:
    """Read a matrix from a ``.npy`` file.

    ``dtype=None`` preserves a stored float32/float64 array's dtype
    (anything else is coerced to float64); pass an explicit dtype to
    force a cast.
    """
    matrix = np.load(path, allow_pickle=False)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DatasetError(f"{path}: expected a square 2-D array, got {matrix.shape}")
    return _cast(matrix, dtype)


def write_matrix_npy(path: PathLike, matrix: np.ndarray) -> None:
    """Write a matrix to a ``.npy`` file, preserving float32/float64."""
    np.save(path, _cast(np.asarray(matrix), None))


def load_matrix_auto(path: PathLike, *, dtype=None) -> np.ndarray:
    """Load a raw matrix, dispatching on extension (.npy vs text)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".npy":
        return read_matrix_npy(path, dtype=dtype)
    return read_matrix_text(path, dtype=dtype)
