"""Reading and writing latency matrices in the common on-disk formats.

Supported formats:

- **text** — whitespace-separated floats, one matrix row per line; the
  format of the MIT p2psim King matrix. Comment lines starting with
  ``#`` are skipped. Sentinels ``-1`` and NaN denote missing entries.
- **npy** — raw numpy arrays for fast caching of generated matrices.

``load_matrix_auto`` dispatches on file extension.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import DatasetError

PathLike = Union[str, os.PathLike]


def read_matrix_text(path: PathLike) -> np.ndarray:
    """Read a whitespace-separated square matrix (raw, may contain NaN).

    ``-1`` entries are mapped to NaN (the p2psim missing-value sentinel).
    """
    rows = []
    expected_width = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                row = np.array([float(tok) for tok in stripped.split()])
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: unparseable row: {exc}") from exc
            if expected_width is None:
                expected_width = row.size
            elif row.size != expected_width:
                raise DatasetError(
                    f"{path}:{line_no}: row has {row.size} entries, expected "
                    f"{expected_width}"
                )
            rows.append(row)
    if not rows:
        raise DatasetError(f"{path}: no matrix rows found")
    matrix = np.vstack(rows)
    if matrix.shape[0] != matrix.shape[1]:
        raise DatasetError(
            f"{path}: matrix is {matrix.shape[0]}x{matrix.shape[1]}, expected square"
        )
    matrix = np.where(matrix == -1.0, np.nan, matrix)
    return matrix


def write_matrix_text(path: PathLike, matrix: np.ndarray, *, fmt: str = "%.3f") -> None:
    """Write a matrix in the text format (NaN written as ``-1``)."""
    out = np.asarray(matrix, dtype=np.float64)
    out = np.where(np.isfinite(out), out, -1.0)
    np.savetxt(path, out, fmt=fmt)


def read_matrix_npy(path: PathLike) -> np.ndarray:
    """Read a matrix from a ``.npy`` file."""
    matrix = np.load(path, allow_pickle=False)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DatasetError(f"{path}: expected a square 2-D array, got {matrix.shape}")
    return np.asarray(matrix, dtype=np.float64)


def write_matrix_npy(path: PathLike, matrix: np.ndarray) -> None:
    """Write a matrix to a ``.npy`` file."""
    np.save(path, np.asarray(matrix, dtype=np.float64))


def load_matrix_auto(path: PathLike) -> np.ndarray:
    """Load a raw matrix, dispatching on extension (.npy vs text)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".npy":
        return read_matrix_npy(path)
    return read_matrix_text(path)
