"""Latency data sets: synthetic generators and real-format loaders.

The paper evaluates on two data sets measured with the King technique:

- **Meridian** — pairwise latencies between 2500 Internet nodes; after
  discarding nodes with missing measurements, a complete matrix over
  1796 nodes remains.
- **MIT King (p2psim)** — a complete pairwise matrix over 1024 nodes.

Neither data set ships with this repository (no network access, and the
original download sites are long gone), so this subpackage provides
**synthetic equivalents** that reproduce the statistical structure the
assignment algorithms are sensitive to — geographic clustering, a heavy
right tail, asymmetry, and triangle-inequality violations — together
with loaders for the original file formats for users who have the data.
See DESIGN.md §5 for the substitution rationale and
``tests/datasets/test_realism.py`` for the properties we assert.
"""

from repro.datasets.cleaning import CleaningReport, drop_incomplete_nodes
from repro.datasets.io import (
    as_latency_matrix,
    load_matrix_auto,
    read_matrix_npy,
    read_matrix_text,
    write_matrix_npy,
    write_matrix_text,
)
from repro.datasets.measurement import (
    MeasurementCampaign,
    measurement_error_report,
    simulate_king_measurements,
)
from repro.datasets.meridian import (
    MERIDIAN_NODE_COUNT,
    load_meridian_file,
    synthesize_meridian_like,
)
from repro.datasets.mit_king import (
    MIT_KING_NODE_COUNT,
    load_mit_king_file,
    synthesize_mit_like,
)
from repro.datasets.planet import (
    PlanetInstance,
    coreset_cell_size_hint,
    planet_instance,
)
from repro.datasets.synthetic import InternetLatencyModel

__all__ = [
    "InternetLatencyModel",
    "PlanetInstance",
    "planet_instance",
    "coreset_cell_size_hint",
    "MeasurementCampaign",
    "simulate_king_measurements",
    "measurement_error_report",
    "synthesize_meridian_like",
    "load_meridian_file",
    "MERIDIAN_NODE_COUNT",
    "synthesize_mit_like",
    "load_mit_king_file",
    "MIT_KING_NODE_COUNT",
    "drop_incomplete_nodes",
    "CleaningReport",
    "as_latency_matrix",
    "read_matrix_text",
    "write_matrix_text",
    "read_matrix_npy",
    "write_matrix_npy",
    "load_matrix_auto",
]
