"""Planet-scale coordinate instances for the million-client pipeline.

The dense synthetic generators top out where O(n^2) memory does; this
module generates **coordinate** universes consumed through a
:class:`~repro.net.provider.CoordinateProvider` — O(n · dims) memory,
any client count. Geometry mirrors the dense
:class:`~repro.datasets.synthetic.InternetLatencyModel` at planet
scale: hosts concentrate in unequal metro clusters (within which
latency profiles nearly coincide — exactly the structure the coreset
layer of :mod:`repro.scale` collapses), plus per-host access-link
height terms.

Servers are placed deterministically at the cluster centers of the
largest clusters (one per cluster, round-robin when ``n_servers``
exceeds the cluster count), which is the deployed-CDN shape the
region-sharded online manager assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.provider import CoordinateProvider
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class PlanetInstance:
    """A generated planet-scale instance.

    ``provider`` spans servers and clients in one node universe:
    servers occupy node ids ``0 .. n_servers-1`` (:attr:`servers`),
    clients the rest (:attr:`clients`).
    """

    provider: CoordinateProvider
    servers: np.ndarray
    clients: np.ndarray
    #: Cluster index of every node (servers first).
    cluster_of: np.ndarray

    def __post_init__(self) -> None:
        for name in ("servers", "clients", "cluster_of"):
            getattr(self, name).setflags(write=False)

    @property
    def n_clients(self) -> int:
        """Number of client nodes."""
        return int(self.clients.size)

    @property
    def n_servers(self) -> int:
        """Number of server nodes."""
        return int(self.servers.size)


def planet_instance(
    n_clients: int,
    n_servers: int,
    *,
    n_clusters: int = 64,
    dim: int = 3,
    cluster_spread: float = 0.004,
    geo_scale: float = 180.0,
    access_delay_mean: float = 2.0,
    min_latency: float = 0.1,
    dtype=np.float64,
    seed: SeedLike = 0,
) -> PlanetInstance:
    """Generate a clustered coordinate universe of any size.

    Clients are dealt to ``n_clusters`` metro clusters with a heavy-
    tailed (Zipf-like) size distribution and jittered around the
    cluster center by ``cluster_spread`` (units of the unit hypercube;
    the default keeps intra-metro latency ~1 ms against inter-metro
    distances of ~100 ms, so metro-mates have near-identical latency
    profiles). Heights model access-link delay (exponential,
    mean ``access_delay_mean`` ms); servers sit at cluster centers with
    zero height (datacenter peering). All randomness flows from
    ``seed``.
    """
    if n_clients < 1:
        raise InvalidParameterError(f"n_clients must be >= 1, got {n_clients}")
    if n_servers < 1:
        raise InvalidParameterError(f"n_servers must be >= 1, got {n_servers}")
    if n_clusters < 1:
        raise InvalidParameterError(
            f"n_clusters must be >= 1, got {n_clusters}"
        )
    rng = ensure_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(n_clusters, dim))

    # Zipf-like cluster popularity (metro populations are heavy-tailed).
    popularity = 1.0 / np.arange(1, n_clusters + 1, dtype=np.float64)
    popularity /= popularity.sum()
    client_cluster = rng.choice(n_clusters, size=n_clients, p=popularity)

    # Servers at the centers of the most popular clusters, round-robin.
    server_cluster = np.arange(n_servers, dtype=np.int64) % n_clusters

    n = n_servers + n_clients
    coords = np.empty((n, dim), dtype=np.float64)
    coords[:n_servers] = centers[server_cluster]
    coords[n_servers:] = centers[client_cluster] + rng.normal(
        0.0, cluster_spread, size=(n_clients, dim)
    )
    coords *= geo_scale

    heights = np.empty(n, dtype=np.float64)
    heights[:n_servers] = 0.0
    heights[n_servers:] = rng.exponential(access_delay_mean, size=n_clients)

    provider = CoordinateProvider(
        coords,
        heights=heights,
        min_latency=min_latency,
        dtype=dtype,
    )
    cluster_of = np.concatenate(
        [server_cluster, client_cluster.astype(np.int64)]
    )
    return PlanetInstance(
        provider=provider,
        servers=np.arange(n_servers, dtype=np.int64),
        clients=np.arange(n_servers, n, dtype=np.int64),
        cluster_of=cluster_of,
    )


def coreset_cell_size_hint(instance: PlanetInstance) -> float:
    """A reasonable coreset cell size for a generated instance.

    Metro-mates' profiles differ by the intra-cluster jitter plus their
    height difference; quantizing at a few multiples of the expected
    jitter collapses each metro to a handful of cells without
    meaningfully loosening the ``2 * epsilon`` bound relative to
    inter-metro distances.
    """
    coords = instance.provider.coordinates
    spread = float(np.std(coords[instance.clients], axis=0).mean())
    return max(1.0, 0.15 * spread)
