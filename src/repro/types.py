"""Shared type aliases and small value objects used across the package.

The package consistently identifies network nodes by **integer indices**
into a pairwise latency matrix. Three aliases make signatures
self-documenting:

- :data:`NodeId` — an index into the full node set ``V``.
- :data:`ServerId` — a node index that is a member of the server set ``S``.
- :data:`ClientId` — a node index that is a member of the client set ``C``.

Servers and clients live in the *same* index space as nodes (a node may be
both a server and a client, matching the paper's model where a client is
located at every node and servers occupy selected nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

NodeId = int
ServerId = int
ClientId = int

#: Anything accepted where an array of node indices is expected.
IndexArrayLike = Union[Sequence[int], np.ndarray]

#: Floating point latency value, in the unit of the latency matrix
#: (conventionally milliseconds).
Latency = float


@dataclass(frozen=True)
class InteractionPath:
    """The three-hop path through which two clients interact.

    The path ``ci -> s(ci) -> s(cj) -> cj`` and its total length. Lengths
    are in the unit of the underlying latency matrix (milliseconds by
    convention).
    """

    client_a: ClientId
    server_a: ServerId
    server_b: ServerId
    client_b: ClientId
    length: Latency

    def hops(self) -> tuple:
        """Return the node sequence of the path, collapsing equal servers."""
        if self.server_a == self.server_b:
            return (self.client_a, self.server_a, self.client_b)
        return (self.client_a, self.server_a, self.server_b, self.client_b)


def as_index_array(indices: IndexArrayLike, name: str = "indices") -> np.ndarray:
    """Coerce ``indices`` to a 1-D ``int64`` numpy array.

    Raises ``ValueError`` when the input is not one-dimensional or not
    integral. A defensive copy is made so callers may mutate their input
    afterwards.
    """
    arr = np.asarray(indices)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == arr.astype(np.int64)):
            arr = arr.astype(np.int64)
        else:
            raise ValueError(f"{name} must contain integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=True)
