"""Parametric topologies and the paper's illustrative gadgets.

Two kinds of builders live here:

1. **Gadgets** reproducing the paper's worked examples — the Fig. 4
   network showing that Nearest-Server Assignment's approximation ratio
   of 3 is tight, and the Fig. 5 network where Longest-First-Batch beats
   Nearest-Server (9 vs 12).
2. **Generators** for synthetic networks used by tests and the dataset
   substrate: clustered Euclidean point clouds (the backbone of the
   Meridian-like generator), Waxman random graphs, and simple structured
   graphs (star / ring / line / grid).

Gadget functions return both the network and the intended server/client
index sets so tests and benchmarks cannot mis-wire them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.net.graph import NetworkGraph
from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class GadgetInstance:
    """A gadget network plus its designated servers and clients."""

    matrix: LatencyMatrix
    servers: Tuple[int, ...]
    clients: Tuple[int, ...]
    #: Human-readable notes (expected optimal values etc.).
    notes: str = ""


def approx_ratio_gadget(a: float = 10.0, epsilon: float = 1.0) -> GadgetInstance:
    """The paper's Fig. 4 network (tightness of NSA's 3-approximation).

    Nodes: ``c1=0, c2=1, s=2, s1=3, s2=4``. Distances: ``d(c1,s) =
    d(c2,s) = a``; ``d(c1,s1) = d(c2,s2) = a - epsilon``. With shortest
    path routing the remaining pairs follow. Nearest-Server assigns
    ``c1 -> s1`` and ``c2 -> s2`` giving maximum interaction path length
    ``6a - 4*epsilon``; the optimum assigns both clients to ``s`` for
    ``2a``. The ratio approaches 3 as ``epsilon -> 0``.
    """
    if not 0 < epsilon < a:
        raise ValueError(f"need 0 < epsilon < a, got a={a}, epsilon={epsilon}")
    c1, c2, s, s1, s2 = range(5)
    graph = NetworkGraph(5)
    graph.add_link(c1, s, a)
    graph.add_link(c2, s, a)
    graph.add_link(c1, s1, a - epsilon)
    graph.add_link(c2, s2, a - epsilon)
    return GadgetInstance(
        matrix=graph.to_latency_matrix(),
        servers=(s, s1, s2),
        clients=(c1, c2),
        notes=(
            f"Fig.4 gadget: NSA D = {6 * a - 4 * epsilon}, optimal D = {2 * a}; "
            "ratio -> 3 as epsilon -> 0"
        ),
    )


def lfb_gadget() -> GadgetInstance:
    """The paper's Fig. 5 network (LFB beats NSA).

    Nodes: ``c1=0, c2=1, s1=2, s2=3``. Link lengths follow Fig. 5:
    ``d(c1,s1)=5, d(c2,s1)=4, d(s1,s2)=4, d(c2,s2)=3, d(c1,c2)=7``.
    Nearest-Server assigns ``c1->s1, c2->s2`` with maximum interaction
    path length ``5+4+3 = 12``; Longest-First-Batch assigns both clients
    to ``s1`` with ``5+4 = 9``.
    """
    c1, c2, s1, s2 = range(4)
    graph = NetworkGraph(4)
    graph.add_link(c1, s1, 5.0)
    graph.add_link(c2, s1, 4.0)
    graph.add_link(s1, s2, 4.0)
    graph.add_link(c2, s2, 3.0)
    graph.add_link(c1, c2, 7.0)
    return GadgetInstance(
        matrix=graph.to_latency_matrix(),
        servers=(s1, s2),
        clients=(c1, c2),
        notes="Fig.5 gadget: NSA D = 12, LFB D = 9",
    )


# ----------------------------------------------------------------------
# Structured graphs
# ----------------------------------------------------------------------
def star_graph(n_leaves: int, spoke_latency: float = 1.0) -> NetworkGraph:
    """A star: node 0 is the hub, nodes ``1..n_leaves`` are leaves."""
    graph = NetworkGraph(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        graph.add_link(0, leaf, spoke_latency)
    return graph


def ring_graph(n: int, link_latency: float = 1.0) -> NetworkGraph:
    """A cycle of ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    graph = NetworkGraph(n)
    for u in range(n):
        graph.add_link(u, (u + 1) % n, link_latency)
    return graph


def line_graph(n: int, link_latency: float = 1.0) -> NetworkGraph:
    """A path of ``n >= 2`` nodes."""
    if n < 2:
        raise ValueError(f"a line needs at least 2 nodes, got {n}")
    graph = NetworkGraph(n)
    for u in range(n - 1):
        graph.add_link(u, u + 1, link_latency)
    return graph


def grid_graph(rows: int, cols: int, link_latency: float = 1.0) -> NetworkGraph:
    """A ``rows x cols`` 4-neighbor grid; node id is ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {rows}x{cols}")
    graph = NetworkGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                graph.add_link(u, u + 1, link_latency)
            if r + 1 < rows:
                graph.add_link(u, u + cols, link_latency)
    return graph


def waxman_graph(
    n: int,
    *,
    alpha: float = 0.4,
    beta: float = 0.2,
    scale: float = 100.0,
    seed: SeedLike = None,
) -> NetworkGraph:
    """A Waxman random graph over uniform points in the unit square.

    Nodes ``u, v`` are linked with probability
    ``alpha * exp(-dist(u, v) / (beta * L))`` where ``L`` is the maximum
    pairwise distance; link latency is the Euclidean distance times
    ``scale``. A spanning chain over the x-sorted nodes is added to
    guarantee connectivity (standard practice for Waxman topologies in
    simulation).
    """
    if n < 2:
        raise ValueError(f"waxman graph needs >= 2 nodes, got {n}")
    rng = ensure_rng(seed)
    coords = rng.uniform(0.0, 1.0, size=(n, 2))
    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    max_dist = float(dist.max()) or 1.0
    graph = NetworkGraph(n)
    prob = alpha * np.exp(-dist / (beta * max_dist))
    draws = rng.uniform(size=(n, n))
    for u in range(n):
        for v in range(u + 1, n):
            if draws[u, v] < prob[u, v]:
                graph.add_link(u, v, max(dist[u, v] * scale, 1e-6))
    order = np.argsort(coords[:, 0])
    for i in range(n - 1):
        u, v = int(order[i]), int(order[i + 1])
        if not graph.has_link(u, v):
            graph.add_link(u, v, max(dist[u, v] * scale, 1e-6))
    return graph


# ----------------------------------------------------------------------
# Clustered Euclidean point clouds (dataset backbone)
# ----------------------------------------------------------------------
def clustered_points(
    n: int,
    *,
    n_clusters: int = 5,
    dim: int = 5,
    cluster_spread: float = 0.08,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points grouped into Gaussian clusters in the unit hypercube.

    Models the continental/AS clustering of Internet hosts: cluster
    centers are uniform in the hypercube; members are normal around their
    center with standard deviation ``cluster_spread``. Cluster sizes are
    drawn from a symmetric Dirichlet so clusters are unequal, like real
    geographic regions.
    """
    if n < 1:
        raise ValueError(f"need at least 1 point, got {n}")
    if n_clusters < 1:
        raise ValueError(f"need at least 1 cluster, got {n_clusters}")
    rng = ensure_rng(seed)
    n_clusters = min(n_clusters, n)
    centers = rng.uniform(0.15, 0.85, size=(n_clusters, dim))
    weights = rng.dirichlet(np.full(n_clusters, 2.0))
    counts = np.floor(weights * n).astype(int)
    # Distribute the remainder to the largest clusters.
    remainder = n - counts.sum()
    for i in np.argsort(-weights)[:remainder]:
        counts[i] += 1
    points = []
    for center, count in zip(centers, counts):
        if count == 0:
            continue
        points.append(rng.normal(loc=center, scale=cluster_spread, size=(count, dim)))
    out = np.vstack(points)
    rng.shuffle(out, axis=0)
    return out


def clustered_euclidean_matrix(
    n: int,
    *,
    n_clusters: int = 5,
    dim: int = 5,
    cluster_spread: float = 0.08,
    scale: float = 150.0,
    seed: SeedLike = None,
) -> LatencyMatrix:
    """A metric latency matrix from clustered points.

    This is the noise-free core of the Meridian-like generator; the
    dataset layer adds the non-metric distortions on top.
    """
    points = clustered_points(
        n, n_clusters=n_clusters, dim=dim, cluster_spread=cluster_spread, seed=seed
    )
    return LatencyMatrix.from_coordinates(points, scale=scale, min_latency=0.1)
