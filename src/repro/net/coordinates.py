"""Network coordinate embedding (Vivaldi) for latency estimation.

The paper's heuristics consume measured client-server latencies
("obtained with existing tools like ping and King", §IV). Deployed
systems frequently avoid O(n^2) measurement by embedding hosts into a
low-dimensional coordinate space and *predicting* latencies — Vivaldi
(Dabek et al., SIGCOMM'04) is the standard decentralized algorithm and
was designed against the very same MIT King data set the paper uses.

This module implements Vivaldi with the height-vector extension so the
reproduction can answer a question the paper leaves open: **how much
interactivity do the assignment heuristics lose when they run on
estimated rather than measured latencies?** (See
:mod:`repro.experiments.ablations` for the experiment.)

The implementation follows the original paper's adaptive-timestep
algorithm: each node keeps a coordinate and a confidence weight; on each
"measurement" of a sampled neighbor, the node moves along the error
gradient with a step scaled by the relative confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class EmbeddingQuality:
    """Prediction-error statistics of a fitted embedding."""

    #: Median of |predicted - actual| / actual over off-diagonal pairs.
    median_relative_error: float
    #: 90th percentile of the relative error.
    p90_relative_error: float
    #: Mean absolute prediction error (ms).
    mean_absolute_error: float


class VivaldiEmbedding:
    """Decentralized spring-relaxation network coordinates.

    Parameters
    ----------
    dims:
        Euclidean dimensionality (Vivaldi's sweet spot is 2-5).
    use_height:
        Add the "height" component modelling access-link delay: predicted
        latency is ``|x_u - x_v| + h_u + h_v``. Matches the additive
        access-delay structure of real (and our synthetic) matrices.
    ce:
        Vivaldi's tuning constant for the adaptive timestep (0 < ce < 1).
    """

    def __init__(
        self,
        dims: int = 3,
        *,
        use_height: bool = True,
        ce: float = 0.25,
    ) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if not 0.0 < ce < 1.0:
            raise ValueError(f"ce must be in (0, 1), got {ce}")
        self.dims = dims
        self.use_height = use_height
        self.ce = ce
        self._coords: Optional[np.ndarray] = None
        self._heights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._coords is not None

    @property
    def coordinates(self) -> np.ndarray:
        """``(n, dims)`` fitted coordinates (read-only view)."""
        self._require_fitted()
        return self._coords

    @property
    def heights(self) -> np.ndarray:
        """Length-``n`` fitted heights (zeros when disabled)."""
        self._require_fitted()
        return self._heights

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("embedding is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def fit(
        self,
        matrix: LatencyMatrix,
        *,
        rounds: int = 50,
        neighbors: int = 16,
        seed: SeedLike = 0,
    ) -> "VivaldiEmbedding":
        """Fit coordinates to a latency matrix.

        Each round, every node samples ``neighbors`` random peers and
        performs one Vivaldi update per sample — mimicking the gossip
        pattern of the deployed protocol (a node never sees the full
        matrix).
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if neighbors < 1:
            raise ValueError(f"neighbors must be >= 1, got {neighbors}")
        rng = ensure_rng(seed)
        n = matrix.n_nodes
        d = matrix.values
        coords = rng.normal(0.0, 1.0, size=(n, self.dims))
        heights = np.zeros(n)
        weights = np.ones(n)  # local error estimates (1 = clueless)
        k = min(neighbors, max(n - 1, 1))

        for _ in range(rounds):
            order = rng.permutation(n)
            for u in order:
                peers = rng.choice(n - 1, size=k, replace=False)
                peers = np.where(peers >= u, peers + 1, peers)
                for v in peers:
                    rtt = d[u, v]
                    if rtt <= 0:
                        continue
                    diff = coords[u] - coords[v]
                    dist = float(np.linalg.norm(diff))
                    predicted = dist
                    if self.use_height:
                        predicted += heights[u] + heights[v]
                    # Relative confidence of u versus v.
                    w = weights[u] / (weights[u] + weights[v])
                    err = abs(predicted - rtt) / rtt
                    # Update local error estimate (exponential moving).
                    weights[u] = err * self.ce * w + weights[u] * (1 - self.ce * w)
                    # Move along the gradient.
                    delta = self.ce * w * (rtt - predicted)
                    if dist > 1e-12:
                        direction = diff / dist
                    else:
                        direction = rng.normal(size=self.dims)
                        direction /= np.linalg.norm(direction)
                    coords[u] += delta * direction
                    if self.use_height:
                        heights[u] = max(0.0, heights[u] + delta * 0.5)

        self._coords = coords
        self._coords.setflags(write=False)
        self._heights = heights
        self._heights.setflags(write=False)
        return self

    # ------------------------------------------------------------------
    def predict_matrix(self, *, min_latency: float = 0.1) -> LatencyMatrix:
        """The full predicted latency matrix from the fitted coordinates."""
        self._require_fitted()
        coords = self._coords
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        if self.use_height:
            dist = dist + self._heights[:, None] + self._heights[None, :]
        np.fill_diagonal(dist, 0.0)
        n = dist.shape[0]
        off = ~np.eye(n, dtype=bool)
        dist[off] = np.maximum(dist[off], min_latency)
        return LatencyMatrix(dist, validate=False)

    def predict(self, u: int, v: int) -> float:
        """Predicted latency for one pair."""
        self._require_fitted()
        if u == v:
            return 0.0
        dist = float(np.linalg.norm(self._coords[u] - self._coords[v]))
        if self.use_height:
            dist += float(self._heights[u] + self._heights[v])
        return max(dist, 0.0)

    def quality(self, matrix: LatencyMatrix) -> EmbeddingQuality:
        """Prediction-error statistics against the true matrix."""
        predicted = self.predict_matrix().values
        actual = matrix.values
        n = actual.shape[0]
        off = ~np.eye(n, dtype=bool)
        rel = np.abs(predicted[off] - actual[off]) / actual[off]
        return EmbeddingQuality(
            median_relative_error=float(np.median(rel)),
            p90_relative_error=float(np.percentile(rel, 90)),
            mean_absolute_error=float(np.abs(predicted[off] - actual[off]).mean()),
        )


def embed_latencies(
    matrix: LatencyMatrix,
    *,
    dims: int = 3,
    rounds: int = 50,
    neighbors: int = 16,
    use_height: bool = True,
    seed: SeedLike = 0,
) -> Tuple[LatencyMatrix, EmbeddingQuality]:
    """One-call helper: fit Vivaldi and return (estimated matrix, quality)."""
    embedding = VivaldiEmbedding(dims, use_height=use_height)
    embedding.fit(matrix, rounds=rounds, neighbors=neighbors, seed=seed)
    return embedding.predict_matrix(), embedding.quality(matrix)
