"""All-pairs latency matrices and their structural analysis.

A :class:`LatencyMatrix` wraps a square numpy array ``d`` where
``d[u, v]`` is the one-way network latency from node ``u`` to node ``v``
(milliseconds by convention). This is exactly the representation the
Meridian and MIT King data sets provide and the representation every
assignment algorithm in the paper consumes — the heuristics "are generic
and not tied to any particular routing strategy" (§IV).

Real Internet latencies famously violate the triangle inequality, which
is why the paper's 3-approximation bound for Nearest-Server Assignment
does not hold on the experimental data (§V-A, footnote 2).
:meth:`LatencyMatrix.triangle_inequality_report` quantifies the violation
rate so tests can assert that our synthetic data sets reproduce this
property of the real ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import InvalidLatencyMatrixError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TriangleInequalityReport:
    """Summary of triangle-inequality violations in a latency matrix.

    A triple ``(u, w, v)`` *violates* the triangle inequality when the
    detour through ``w`` is shorter than the direct latency:
    ``d[u, w] + d[w, v] < d[u, v]``.
    """

    #: Number of ordered triples sampled (or examined exhaustively).
    triples_examined: int
    #: Number of sampled triples that violate the triangle inequality.
    violations: int
    #: Mean relative severity ``(d_uv - (d_uw + d_wv)) / d_uv`` over
    #: violating triples (0.0 when there are none).
    mean_severity: float
    #: Maximum relative severity over violating triples.
    max_severity: float

    @property
    def violation_rate(self) -> float:
        """Fraction of examined triples that violate the inequality."""
        if self.triples_examined == 0:
            return 0.0
        return self.violations / self.triples_examined


#: Element types a latency matrix may carry. float64 is the default;
#: float32 halves the memory footprint of |C| >= 50k instances (the
#: dominant cost at scale) at ~1e-7 relative rounding on entry values.
ALLOWED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _check_dtype(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in ALLOWED_DTYPES:
        raise InvalidLatencyMatrixError(
            f"latency matrix dtype must be float32 or float64, got {dt}"
        )
    return dt


class LatencyMatrix:
    """An immutable all-pairs latency matrix over ``n`` nodes.

    Parameters
    ----------
    values:
        Square array of one-way latencies. The diagonal must be zero; all
        off-diagonal entries must be finite and strictly positive (the
        paper assumes ``d(u, v) > 0`` for ``u != v``).
    validate:
        Skip structural validation when ``False`` (used internally after
        operations that preserve validity by construction).
    dtype:
        Element type — ``numpy.float32`` or ``numpy.float64``. ``None``
        (default) preserves a float32/float64 input array's dtype and
        coerces anything else to float64, so pre-dtype callers see no
        change. See ``docs/performance.md`` for the float32 trade-offs.

    Notes
    -----
    The matrix need not be symmetric: King measurements are round-trip
    based and the loaders symmetrize them, but asymmetric inputs are
    legal. Convenience constructors cover the common sources.
    """

    __slots__ = ("_d",)

    def __init__(
        self, values: np.ndarray, *, validate: bool = True, dtype=None
    ) -> None:
        d = np.asarray(values)
        if dtype is not None:
            d = np.asarray(d, dtype=_check_dtype(dtype))
        elif d.dtype not in ALLOWED_DTYPES:
            d = np.asarray(d, dtype=np.float64)
        if validate:
            self._validate(d)
        d = d.copy()
        d.setflags(write=False)
        object.__setattr__(self, "_d", d)

    # Using __slots__ with object.__setattr__ keeps instances immutable in
    # spirit; the underlying array is marked read-only as well.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LatencyMatrix is immutable")

    @staticmethod
    def _validate(d: np.ndarray) -> None:
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise InvalidLatencyMatrixError(
                f"latency matrix must be square, got shape {d.shape}"
            )
        if d.shape[0] == 0:
            raise InvalidLatencyMatrixError("latency matrix must be non-empty")
        if not np.all(np.isfinite(d)):
            raise InvalidLatencyMatrixError(
                "latency matrix contains NaN or infinite entries"
            )
        if np.any(np.diag(d) != 0.0):
            raise InvalidLatencyMatrixError("latency matrix diagonal must be zero")
        off_diag = d[~np.eye(d.shape[0], dtype=bool)]
        if off_diag.size and np.any(off_diag <= 0.0):
            raise InvalidLatencyMatrixError(
                "off-diagonal latencies must be strictly positive"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coordinates(
        cls,
        coords: np.ndarray,
        *,
        scale: float = 1.0,
        min_latency: float = 1e-6,
        dtype=np.float64,
    ) -> "LatencyMatrix":
        """Build a (symmetric, metric) matrix from Euclidean coordinates.

        ``coords`` has shape ``(n, dim)``. Distances are scaled by
        ``scale`` and floored at ``min_latency`` to respect strict
        positivity. Distances are always computed in float64; ``dtype``
        selects the storage type of the result.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError(f"coords must be 2-D, got shape {coords.shape}")
        diff = coords[:, None, :] - coords[None, :, :]
        d = np.sqrt((diff**2).sum(axis=2)) * scale
        np.fill_diagonal(d, 0.0)
        n = d.shape[0]
        mask = ~np.eye(n, dtype=bool)
        d[mask] = np.maximum(d[mask], min_latency)
        return cls(d, dtype=dtype)

    @classmethod
    def wrap_readonly(cls, values: np.ndarray) -> "LatencyMatrix":
        """Zero-copy wrap of an existing read-only float array.

        The normal constructor defensively copies its input; this one
        adopts ``values`` directly so a matrix backed by shared memory
        (see :mod:`repro.parallel.shm`) is not duplicated into every
        worker process. The array must already be ``float32`` or
        ``float64``, C-ordered and marked non-writeable; structural
        validation is skipped — the publishing side validated the
        matrix once.
        """
        d = np.asarray(values)
        if d.dtype not in ALLOWED_DTYPES or d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise InvalidLatencyMatrixError(
                f"wrap_readonly needs a square float32/float64 array, got "
                f"dtype {d.dtype}, shape {d.shape}"
            )
        if d.flags.writeable:
            raise InvalidLatencyMatrixError(
                "wrap_readonly needs a non-writeable array "
                "(call arr.setflags(write=False) first)"
            )
        instance = object.__new__(cls)
        object.__setattr__(instance, "_d", d)
        return instance

    @classmethod
    def random_metric(
        cls, n: int, *, seed: SeedLike = None, dim: int = 2, scale: float = 100.0
    ) -> "LatencyMatrix":
        """A random metric matrix from uniform points in a unit hypercube.

        Handy for tests that need triangle-inequality-respecting inputs
        (e.g. verifying the 3-approximation bound of Theorem 2).
        """
        rng = ensure_rng(seed)
        coords = rng.uniform(0.0, 1.0, size=(n, dim))
        return cls.from_coordinates(coords, scale=scale)

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) ``(n, n)`` float array."""
        return self._d

    @property
    def dtype(self) -> np.dtype:
        """Element type of the stored matrix (float32 or float64)."""
        return self._d.dtype

    def astype(self, dtype) -> "LatencyMatrix":
        """The same matrix stored as ``dtype``; ``self`` when unchanged.

        Downcasting float64 → float32 rounds entries to ~7 significant
        digits; structural validity (zero diagonal, positive
        off-diagonals) is preserved by rounding for any realistic
        latency range, so no re-validation runs.
        """
        dt = _check_dtype(dtype)
        if dt == self._d.dtype:
            return self
        return LatencyMatrix(self._d, validate=False, dtype=dt)

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._d.shape[0]

    def __len__(self) -> int:
        return self.n_nodes

    def __getitem__(self, key):
        return self._d[key]

    def distance(self, u: int, v: int) -> float:
        """One-way latency ``d(u, v)``."""
        return float(self._d[u, v])

    def submatrix(self, nodes: Iterable[int]) -> "LatencyMatrix":
        """Restrict the matrix to the given nodes (in the given order)."""
        idx = np.asarray(list(nodes), dtype=np.int64)
        if idx.size == 0:
            raise InvalidLatencyMatrixError("cannot take an empty submatrix")
        return LatencyMatrix(self._d[np.ix_(idx, idx)], validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyMatrix):
            return NotImplemented
        return self._d.shape == other._d.shape and bool(np.all(self._d == other._d))

    def __hash__(self) -> int:
        return hash((self._d.shape, self._d.tobytes()))

    def __repr__(self) -> str:
        return (
            f"LatencyMatrix(n={self.n_nodes}, "
            f"mean={self.mean_latency():.2f}, max={self.max_latency():.2f})"
        )

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    def is_symmetric(self, *, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Whether ``d(u, v) == d(v, u)`` for all pairs (within tolerance)."""
        return bool(np.allclose(self._d, self._d.T, rtol=rtol, atol=atol))

    def symmetrized(self) -> "LatencyMatrix":
        """Return the symmetric matrix ``(d + d.T) / 2``."""
        return LatencyMatrix((self._d + self._d.T) / 2.0, validate=False)

    def mean_latency(self) -> float:
        """Mean of off-diagonal entries."""
        n = self.n_nodes
        if n == 1:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(self._d[mask].mean())

    def max_latency(self) -> float:
        """Maximum entry (network diameter in the all-pairs view)."""
        return float(self._d.max())

    def min_latency(self) -> float:
        """Minimum off-diagonal entry."""
        n = self.n_nodes
        if n == 1:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(self._d[mask].min())

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of off-diagonal latencies (``0<=q<=100``)."""
        n = self.n_nodes
        mask = ~np.eye(n, dtype=bool)
        return float(np.percentile(self._d[mask], q))

    def triangle_inequality_report(
        self,
        *,
        max_triples: int = 200_000,
        seed: SeedLike = 0,
    ) -> TriangleInequalityReport:
        """Measure triangle-inequality violations.

        Examines all ordered triples ``(u, w, v)`` of distinct nodes when
        their count does not exceed ``max_triples``; otherwise samples
        ``max_triples`` triples uniformly at random (with the given seed,
        so reports are reproducible).
        """
        n = self.n_nodes
        if n < 3:
            return TriangleInequalityReport(0, 0, 0.0, 0.0)
        total = n * (n - 1) * (n - 2)
        d = self._d
        if total <= max_triples:
            # Exhaustive: vectorize over w for each (u, v) pair.
            direct = d[:, None, :]  # d[u, v] broadcast over w -> (u, w, v)
            detour = d[:, :, None] + d[None, :, :]  # d[u,w] + d[w,v]
            sev = (direct - detour) / np.where(direct > 0, direct, 1.0)
            # Mask out triples with repeated nodes.
            idx = np.arange(n)
            valid = np.ones((n, n, n), dtype=bool)
            valid[idx, idx, :] = False  # u == w
            valid[idx, :, idx] = False  # u == v
            valid[:, idx, idx] = False  # w == v
            sev = np.where(valid, sev, -np.inf)
            viol = sev > 1e-12
            count = int(viol.sum())
            if count:
                vals = sev[viol]
                return TriangleInequalityReport(total, count, float(vals.mean()), float(vals.max()))
            return TriangleInequalityReport(total, 0, 0.0, 0.0)
        rng = ensure_rng(seed)
        u = rng.integers(0, n, size=max_triples)
        w = rng.integers(0, n, size=max_triples)
        v = rng.integers(0, n, size=max_triples)
        distinct = (u != w) & (u != v) & (w != v)
        u, w, v = u[distinct], w[distinct], v[distinct]
        direct = d[u, v]
        detour = d[u, w] + d[w, v]
        sev = (direct - detour) / direct
        viol = sev > 1e-12
        count = int(viol.sum())
        examined = int(u.size)
        if count:
            vals = sev[viol]
            return TriangleInequalityReport(examined, count, float(vals.mean()), float(vals.max()))
        return TriangleInequalityReport(examined, 0, 0.0, 0.0)

    def satisfies_triangle_inequality(self, *, tol: float = 1e-9) -> bool:
        """Exact check that no detour beats a direct latency.

        Uses one round of min-plus squaring: the matrix is metric iff
        ``min_w(d[u,w] + d[w,v]) >= d[u,v]`` for all pairs. O(n^3) via a
        blocked numpy loop — fine up to a few thousand nodes.
        """
        d = self._d
        n = self.n_nodes
        for u in range(n):
            best = np.min(d[u][:, None] + d, axis=0)  # min over w of d[u,w]+d[w,v]
            if np.any(best < d[u] - tol):
                return False
        return True

    def metric_closure(self) -> "LatencyMatrix":
        """Shortest-path (min-plus) closure of the matrix.

        Returns the matrix of shortest-path distances treating every
        entry as a direct link. The result always satisfies the triangle
        inequality. Uses repeated min-plus squaring, O(n^3 log n).
        """
        d = self._d.copy()
        n = self.n_nodes
        steps = max(1, int(np.ceil(np.log2(max(n - 1, 1)))))
        for _ in range(steps):
            new = d.copy()
            for u in range(n):
                new[u] = np.minimum(new[u], np.min(d[u][:, None] + d, axis=0))
            if np.array_equal(new, d):
                break
            d = new
        return LatencyMatrix(d, validate=False)

    # ------------------------------------------------------------------
    # Stacked views used by the problem/metrics layer
    # ------------------------------------------------------------------
    def client_server_distances(
        self, clients: np.ndarray, servers: np.ndarray
    ) -> np.ndarray:
        """The ``(len(clients), len(servers))`` slice ``d[c, s]``."""
        return self._d[np.ix_(np.asarray(clients), np.asarray(servers))]

    def server_client_distances(
        self, servers: np.ndarray, clients: np.ndarray
    ) -> np.ndarray:
        """The ``(len(servers), len(clients))`` slice ``d[s, c]``."""
        return self._d[np.ix_(np.asarray(servers), np.asarray(clients))]

    def server_server_distances(self, servers: np.ndarray) -> np.ndarray:
        """The ``(len(servers), len(servers))`` slice ``d[s, s']``."""
        s = np.asarray(servers)
        return self._d[np.ix_(s, s)]


def describe(matrix: LatencyMatrix) -> str:
    """One-line human-readable summary used by the CLI."""
    report = matrix.triangle_inequality_report(max_triples=50_000)
    return (
        f"{matrix.n_nodes} nodes, latency min/mean/p90/max = "
        f"{matrix.min_latency():.1f}/{matrix.mean_latency():.1f}/"
        f"{matrix.latency_percentile(90):.1f}/{matrix.max_latency():.1f} ms, "
        f"symmetric={matrix.is_symmetric()}, "
        f"triangle-violation-rate={report.violation_rate:.3f}"
    )
