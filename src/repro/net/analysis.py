"""Structural analytics for latency matrices.

Tools for characterizing a matrix the way the measurement literature
does — used to validate that the synthetic data sets have Internet-like
structure and to explain algorithm behaviour on a given input:

- :func:`asymmetry_report` — directional asymmetry statistics;
- :func:`cluster_nodes` — k-medoids clustering (PAM-lite) revealing the
  continental/AS grouping the generators plant;
- :func:`cluster_quality` — silhouette-style separation score;
- :func:`stretch_report` — how far the matrix deviates from its metric
  closure (routing inefficiency / detour availability), the quantity
  that drives the Nearest-Server penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class AsymmetryReport:
    """Directional asymmetry of a latency matrix."""

    #: Mean of |d(u,v) - d(v,u)| / max(d(u,v), d(v,u)) over pairs.
    mean_relative_asymmetry: float
    #: Maximum relative asymmetry over pairs.
    max_relative_asymmetry: float
    #: Fraction of pairs with relative asymmetry above 10%.
    fraction_above_10pct: float


def asymmetry_report(matrix: LatencyMatrix) -> AsymmetryReport:
    """Quantify directional asymmetry (0 everywhere for symmetric input)."""
    d = matrix.values
    n = matrix.n_nodes
    iu = np.triu_indices(n, k=1)
    forward = d[iu]
    backward = d.T[iu]
    denom = np.maximum(forward, backward)
    denom = np.where(denom > 0, denom, 1.0)
    rel = np.abs(forward - backward) / denom
    if rel.size == 0:
        return AsymmetryReport(0.0, 0.0, 0.0)
    return AsymmetryReport(
        mean_relative_asymmetry=float(rel.mean()),
        max_relative_asymmetry=float(rel.max()),
        fraction_above_10pct=float((rel > 0.10).mean()),
    )


@dataclass(frozen=True)
class StretchReport:
    """Deviation of a matrix from its shortest-path (metric) closure.

    ``stretch(u, v) = d(u, v) / closure(u, v) >= 1``; values above 1 mean
    a detour through other nodes beats the direct path — the situation
    that breaks Nearest-Server's approximation guarantee.
    """

    mean_stretch: float
    p95_stretch: float
    max_stretch: float
    #: Fraction of ordered pairs with stretch > 1 (detour available).
    fraction_stretched: float


def stretch_report(matrix: LatencyMatrix) -> StretchReport:
    """Compare the matrix against its metric closure."""
    closure = matrix.metric_closure().values
    d = matrix.values
    n = matrix.n_nodes
    off = ~np.eye(n, dtype=bool)
    ratio = d[off] / np.where(closure[off] > 0, closure[off], 1.0)
    return StretchReport(
        mean_stretch=float(ratio.mean()),
        p95_stretch=float(np.percentile(ratio, 95)),
        max_stretch=float(ratio.max()),
        fraction_stretched=float((ratio > 1.0 + 1e-9).mean()),
    )


def cluster_nodes(
    matrix: LatencyMatrix,
    k: int,
    *,
    max_iterations: int = 30,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """K-medoids clustering of the node set.

    Returns ``(labels, medoids)``: per-node cluster index in ``0..k-1``
    and the medoid node of each cluster. Uses the alternate
    assign/update iteration (PAM-lite): assign each node to its nearest
    medoid, then recenter each cluster on its internal medoid; repeats
    until stable. Deterministic given the seed (used for medoid
    initialization).
    """
    n = matrix.n_nodes
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = ensure_rng(seed)
    d = (matrix.values + matrix.values.T) / 2.0
    medoids = rng.choice(n, size=k, replace=False)
    labels = np.argmin(d[:, medoids], axis=1)
    for _ in range(max_iterations):
        new_medoids = medoids.copy()
        for c in range(k):
            members = np.flatnonzero(labels == c)
            if members.size == 0:
                continue
            within = d[np.ix_(members, members)].sum(axis=1)
            new_medoids[c] = members[int(np.argmin(within))]
        new_labels = np.argmin(d[:, new_medoids], axis=1)
        if np.array_equal(new_medoids, medoids) and np.array_equal(
            new_labels, labels
        ):
            break
        medoids, labels = new_medoids, new_labels
    return labels.astype(np.int64), np.asarray(medoids, dtype=np.int64)


def cluster_quality(matrix: LatencyMatrix, labels: np.ndarray) -> float:
    """Mean separation score in [-1, 1] (silhouette-style).

    For each node: ``(b - a) / max(a, b)`` where ``a`` is the mean
    distance to its own cluster and ``b`` the mean distance to the
    nearest other cluster. High values mean tight, well-separated
    clusters. Nodes in singleton clusters score 0.
    """
    labels = np.asarray(labels)
    n = matrix.n_nodes
    if labels.shape != (n,):
        raise ValueError(f"labels must have shape ({n},), got {labels.shape}")
    d = (matrix.values + matrix.values.T) / 2.0
    unique = np.unique(labels)
    scores = np.zeros(n)
    for u in range(n):
        own = labels[u]
        own_members = np.flatnonzero((labels == own) & (np.arange(n) != u))
        if own_members.size == 0:
            continue
        a = d[u, own_members].mean()
        b = np.inf
        for c in unique:
            if c == own:
                continue
            members = np.flatnonzero(labels == c)
            if members.size:
                b = min(b, d[u, members].mean())
        if not np.isfinite(b):
            continue
        scores[u] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
