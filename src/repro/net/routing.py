"""Shortest-path routing over link-level graphs.

The paper's NP-completeness construction assumes "messages are routed in
the network by shortest path routing" (§III); its gadget networks are
specified at the link level. These routines turn a link-level graph into
the all-pairs distance function ``d(u, v)`` used everywhere else.

Implementation notes
--------------------
``dijkstra`` is a textbook binary-heap implementation, O((V+E) log V).
``all_pairs_shortest_paths`` chooses between running Dijkstra from every
source (sparse graphs) and a vectorized Floyd–Warshall (dense graphs);
both return a dense ``(n, n)`` float array with ``inf`` for unreachable
pairs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

#: Adjacency representation: for each node, a list of (neighbor, weight).
AdjacencyList = Sequence[Sequence[Tuple[int, float]]]


def dijkstra(
    adjacency: AdjacencyList,
    source: int,
    *,
    target: Optional[int] = None,
) -> np.ndarray:
    """Single-source shortest path distances.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists ``(v, w)`` pairs for each edge ``u -> v``
        of weight ``w > 0``.
    source:
        Start node.
    target:
        Optional early-exit node: the search stops as soon as the target
        is settled. Distances of unsettled nodes are then upper bounds.

    Returns
    -------
    numpy.ndarray
        Length-``n`` array of distances; ``inf`` marks unreachable nodes.
    """
    n = len(adjacency)
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for {n} nodes")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        du, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if target is not None and u == target:
            break
        for v, w in adjacency[u]:
            if w <= 0:
                raise GraphError(f"nonpositive edge weight {w} on ({u}, {v})")
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def floyd_warshall(weights: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths on a dense weight matrix.

    ``weights[u, v]`` is the direct-link latency (``inf`` when no link,
    0 on the diagonal). Vectorized over the inner two loops; O(n^3) time,
    O(n^2) space.
    """
    d = np.asarray(weights, dtype=np.float64).copy()
    n = d.shape[0]
    if d.shape != (n, n):
        raise GraphError(f"weight matrix must be square, got {d.shape}")
    for k in range(n):
        # d[u, v] = min(d[u, v], d[u, k] + d[k, v]) for all u, v at once.
        np.minimum(d, d[:, k][:, None] + d[k, :][None, :], out=d)
    return d


def all_pairs_shortest_paths(
    adjacency: AdjacencyList,
    *,
    dense_threshold: float = 0.25,
) -> np.ndarray:
    """All-pairs shortest path distances for an adjacency-list graph.

    Uses Floyd–Warshall when edge density exceeds ``dense_threshold``
    and repeated Dijkstra otherwise.
    """
    n = len(adjacency)
    if n == 0:
        return np.zeros((0, 0))
    m = sum(len(nbrs) for nbrs in adjacency)
    density = m / max(n * n, 1)
    if density >= dense_threshold:
        weights = np.full((n, n), np.inf)
        np.fill_diagonal(weights, 0.0)
        for u, nbrs in enumerate(adjacency):
            for v, w in nbrs:
                if w <= 0:
                    raise GraphError(f"nonpositive edge weight {w} on ({u}, {v})")
                weights[u, v] = min(weights[u, v], w)
        return floyd_warshall(weights)
    out = np.empty((n, n))
    for u in range(n):
        out[u] = dijkstra(adjacency, u)
    return out


def shortest_path_tree(
    adjacency: AdjacencyList, source: int
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Distances plus predecessor map for path reconstruction."""
    n = len(adjacency)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    pred: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        du, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        for v, w in adjacency[u]:
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def reconstruct_path(pred: Dict[int, int], source: int, target: int) -> List[int]:
    """Node sequence from ``source`` to ``target`` given a predecessor map.

    Raises :class:`~repro.errors.GraphError` when no path exists.
    """
    if source == target:
        return [source]
    path = [target]
    node = target
    while node != source:
        if node not in pred:
            raise GraphError(f"no path from {source} to {target}")
        node = pred[node]
        path.append(node)
    path.reverse()
    return path
