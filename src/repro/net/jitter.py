"""Jitter models for latency variability (paper §II-E).

The paper's formulation stays valid under jitter by setting each link
length ``d(u, v)`` to a chosen *percentile* of the latency distribution
between ``u`` and ``v``: the higher the percentile, the lower the chance
that a late message causes an inconsistency, at the cost of a longer
synchronization lag. This module provides:

- parametric per-pair latency distributions (:class:`LogNormalJitter`,
  :class:`GammaJitter`, :class:`ShiftedExponentialJitter`,
  :class:`NoJitter`), all sharing the :class:`JitterModel` interface;
- :func:`percentile_matrix`, which maps a matrix of *base* (median-ish)
  latencies to the matrix of ``q``-th percentile latencies under a model;
- per-message sampling used by the discrete-event simulator to inject
  jitter and measure the resulting inconsistency rate.

All models treat the base latency as a scale: a sample for a pair with
base latency ``b`` is ``b * X`` (plus ``b`` for the shifted exponential)
where ``X`` is a nonnegative random factor with median approximately 1.
"""

from __future__ import annotations

import abc
import math
from typing import Union

import numpy as np



class JitterModel(abc.ABC):
    """Distribution of the multiplicative latency factor for one message."""

    @abc.abstractmethod
    def sample_factor(
        self, rng: np.random.Generator, size: Union[int, tuple] = 1
    ) -> np.ndarray:
        """Draw random latency factors (each > 0)."""

    @abc.abstractmethod
    def factor_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the latency factor."""

    def sample(
        self,
        base_latency: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample one latency per entry of ``base_latency``."""
        base = np.asarray(base_latency, dtype=np.float64)
        factors = self.sample_factor(rng, size=base.shape)
        return base * factors


class NoJitter(JitterModel):
    """Deterministic latencies — the factor is always exactly 1."""

    def sample_factor(self, rng: np.random.Generator, size: Union[int, tuple] = 1) -> np.ndarray:
        return np.ones(size)

    def factor_percentile(self, q: float) -> float:
        _check_percentile(q)
        return 1.0

    def __repr__(self) -> str:
        return "NoJitter()"


class LogNormalJitter(JitterModel):
    """Log-normal multiplicative jitter.

    ``factor = exp(N(0, sigma))`` — median exactly 1, right-skewed tail,
    the classic model for Internet delay variation.
    """

    def __init__(self, sigma: float = 0.2) -> None:
        if not sigma >= 0:
            raise ValueError(f"sigma must be nonnegative, got {sigma}")
        self.sigma = float(sigma)

    def sample_factor(self, rng: np.random.Generator, size: Union[int, tuple] = 1) -> np.ndarray:
        return rng.lognormal(mean=0.0, sigma=self.sigma, size=size)

    def factor_percentile(self, q: float) -> float:
        _check_percentile(q)
        if self.sigma == 0.0:
            return 1.0
        z = _normal_ppf(q / 100.0)
        return math.exp(self.sigma * z)

    def __repr__(self) -> str:
        return f"LogNormalJitter(sigma={self.sigma})"


class GammaJitter(JitterModel):
    """Gamma multiplicative jitter with unit mean.

    ``factor ~ Gamma(shape=k, scale=1/k)``; larger ``k`` means less
    variability. Mean is exactly 1 (median slightly below 1).
    """

    def __init__(self, shape: float = 20.0) -> None:
        if not shape > 0:
            raise ValueError(f"shape must be positive, got {shape}")
        self.shape = float(shape)

    def sample_factor(self, rng: np.random.Generator, size: Union[int, tuple] = 1) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.shape, size=size)

    def factor_percentile(self, q: float) -> float:
        _check_percentile(q)
        # No closed form; invert the CDF numerically by bisection on a
        # generous bracket. Gamma(k, 1/k) has mean 1 and std 1/sqrt(k).
        return _bisect_percentile(
            lambda x: _gamma_cdf(x * self.shape, self.shape), q / 100.0
        )

    def __repr__(self) -> str:
        return f"GammaJitter(shape={self.shape})"


class ShiftedExponentialJitter(JitterModel):
    """Base latency plus an exponential tail: ``factor = 1 + Exp(rate)``.

    Models a fixed propagation delay plus random queueing delay; commonly
    used for access-link congestion. ``mean_extra`` is the mean of the
    additive exponential component, as a fraction of the base latency.
    """

    def __init__(self, mean_extra: float = 0.1) -> None:
        if not mean_extra >= 0:
            raise ValueError(f"mean_extra must be nonnegative, got {mean_extra}")
        self.mean_extra = float(mean_extra)

    def sample_factor(self, rng: np.random.Generator, size: Union[int, tuple] = 1) -> np.ndarray:
        if self.mean_extra == 0.0:
            return np.ones(size)
        return 1.0 + rng.exponential(self.mean_extra, size=size)

    def factor_percentile(self, q: float) -> float:
        _check_percentile(q)
        if self.mean_extra == 0.0:
            return 1.0
        p = q / 100.0
        if p >= 1.0:
            raise ValueError("the 100th percentile of an exponential is unbounded")
        return 1.0 - self.mean_extra * math.log(1.0 - p)

    def __repr__(self) -> str:
        return f"ShiftedExponentialJitter(mean_extra={self.mean_extra})"


def percentile_matrix(
    base: np.ndarray, model: JitterModel, q: float = 90.0
) -> np.ndarray:
    """Matrix of ``q``-th percentile latencies under a jitter model.

    This is the paper's §II-E recipe: plan the assignment (and the lag δ)
    against a high percentile of the latency so that only a small
    fraction of messages arrive late.
    """
    base = np.asarray(base, dtype=np.float64)
    factor = model.factor_percentile(q)
    out = base * factor
    # Keep the diagonal at zero regardless of the factor.
    if out.ndim == 2 and out.shape[0] == out.shape[1]:
        np.fill_diagonal(out, 0.0)
    return out


# ----------------------------------------------------------------------
# Numeric helpers (kept dependency-free: scipy is an optional extra)
# ----------------------------------------------------------------------
def _check_percentile(q: float) -> None:
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")


def _normal_ppf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    if p <= 0.0:
        return -math.inf
    if p >= 1.0:
        return math.inf
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    e = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        qv = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * qv + c[1]) * qv + c[2]) * qv + c[3]) * qv + c[4]) * qv + c[5]) / (
            (((e[0] * qv + e[1]) * qv + e[2]) * qv + e[3]) * qv + 1.0
        )
    if p > 1.0 - p_low:
        qv = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * qv + c[1]) * qv + c[2]) * qv + c[3]) * qv + c[4]) * qv + c[5]) / (
            (((e[0] * qv + e[1]) * qv + e[2]) * qv + e[3]) * qv + 1.0
        )
    qv = p - 0.5
    r = qv * qv
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * qv / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def _gamma_cdf(x: float, k: float) -> float:
    """Regularized lower incomplete gamma P(k, x) via series/continued
    fraction (Numerical Recipes style)."""
    if x < 0:
        return 0.0
    if x == 0:
        return 0.0
    lg = math.lgamma(k)
    if x < k + 1.0:
        # Series expansion.
        term = 1.0 / k
        total = term
        a = k
        for _ in range(500):
            a += 1.0
            term *= x / a
            total += term
            if abs(term) < abs(total) * 1e-14:
                break
        return total * math.exp(-x + k * math.log(x) - lg)
    # Continued fraction for Q(k, x), then P = 1 - Q.
    tiny = 1e-300
    b = x + 1.0 - k
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - k)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    q = math.exp(-x + k * math.log(x) - lg) * h
    return 1.0 - q


def _bisect_percentile(cdf, p: float, *, lo: float = 0.0, hi: float = 64.0) -> float:
    """Invert a CDF by bisection on [lo, hi]."""
    if p <= 0.0:
        return lo
    while cdf(hi) < p:
        hi *= 2.0
        if hi > 1e9:
            raise ValueError("percentile bracket exploded; check the CDF")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)
