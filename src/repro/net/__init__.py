"""Network substrate: latency matrices, graphs, routing, jitter, topologies.

The paper models the network as a graph ``G = (V, E)`` with per-link
latencies and extends the distance function to all node pairs via routing
(§II-A). This subpackage provides both views:

- :class:`~repro.net.latency.LatencyMatrix` — the all-pairs view the
  assignment algorithms consume (this is also what the Meridian / MIT King
  data sets provide directly).
- :class:`~repro.net.graph.NetworkGraph` — the link-level view used by the
  NP-completeness gadgets and topology generators, converted to a
  ``LatencyMatrix`` through shortest-path routing
  (:mod:`repro.net.routing`).

Jitter modelling (§II-E) lives in :mod:`repro.net.jitter`; parametric
topology generators in :mod:`repro.net.topology`.
"""

from repro.net.analysis import (
    AsymmetryReport,
    StretchReport,
    asymmetry_report,
    cluster_nodes,
    cluster_quality,
    stretch_report,
)
from repro.net.coordinates import EmbeddingQuality, VivaldiEmbedding, embed_latencies
from repro.net.graph import NetworkGraph
from repro.net.jitter import (
    GammaJitter,
    JitterModel,
    LogNormalJitter,
    NoJitter,
    ShiftedExponentialJitter,
    percentile_matrix,
)
from repro.net.latency import LatencyMatrix, TriangleInequalityReport
from repro.net.provider import CoordinateProvider, LatencyProvider, provider_name
from repro.net.routing import all_pairs_shortest_paths, dijkstra
from repro.net.topology import (
    approx_ratio_gadget,
    clustered_euclidean_matrix,
    grid_graph,
    lfb_gadget,
    line_graph,
    ring_graph,
    star_graph,
    waxman_graph,
)

__all__ = [
    "AsymmetryReport",
    "StretchReport",
    "asymmetry_report",
    "stretch_report",
    "cluster_nodes",
    "cluster_quality",
    "VivaldiEmbedding",
    "EmbeddingQuality",
    "embed_latencies",
    "LatencyMatrix",
    "TriangleInequalityReport",
    "LatencyProvider",
    "CoordinateProvider",
    "provider_name",
    "NetworkGraph",
    "dijkstra",
    "all_pairs_shortest_paths",
    "JitterModel",
    "NoJitter",
    "LogNormalJitter",
    "GammaJitter",
    "ShiftedExponentialJitter",
    "percentile_matrix",
    "clustered_euclidean_matrix",
    "waxman_graph",
    "star_graph",
    "ring_graph",
    "line_graph",
    "grid_graph",
    "approx_ratio_gadget",
    "lfb_gadget",
]
