"""Link-level network graphs (the paper's ``G = (V, E)`` model).

A :class:`NetworkGraph` stores an undirected (or directed) weighted graph
and converts it to the all-pairs :class:`~repro.net.latency.LatencyMatrix`
via shortest-path routing — the paper's §II-A extension of the link
distance function to arbitrary node pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.net.latency import LatencyMatrix
from repro.net.routing import all_pairs_shortest_paths, dijkstra


class NetworkGraph:
    """A weighted graph with positive link latencies.

    Parameters
    ----------
    n_nodes:
        Number of nodes; node ids are ``0..n_nodes-1``.
    directed:
        When ``False`` (default, matching the paper), adding a link
        ``(u, v)`` also adds ``(v, u)`` with the same latency.
    """

    def __init__(self, n_nodes: int, *, directed: bool = False) -> None:
        if n_nodes <= 0:
            raise GraphError(f"graph needs at least one node, got {n_nodes}")
        self._n = n_nodes
        self._directed = directed
        self._adj: List[Dict[int, float]] = [dict() for _ in range(n_nodes)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(self, u: int, v: int, latency: float) -> None:
        """Add (or tighten) a link of the given positive latency.

        Re-adding an existing link keeps the smaller latency, which makes
        gadget construction idempotent.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError("self-loops are not allowed")
        if not latency > 0:
            raise GraphError(f"link latency must be positive, got {latency}")
        current = self._adj[u].get(v)
        if current is None or latency < current:
            self._adj[u][v] = latency
        if not self._directed:
            current = self._adj[v].get(u)
            if current is None or latency < current:
                self._adj[v][u] = latency

    def add_links(self, links: Iterable[Tuple[int, int, float]]) -> None:
        """Add many ``(u, v, latency)`` links."""
        for u, v, latency in links:
            self.add_link(u, v, latency)

    @classmethod
    def from_links(
        cls,
        n_nodes: int,
        links: Iterable[Tuple[int, int, float]],
        *,
        directed: bool = False,
    ) -> "NetworkGraph":
        """Build a graph from an edge list in one call."""
        graph = cls(n_nodes, directed=directed)
        graph.add_links(links)
        return graph

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def n_links(self) -> int:
        """Number of (directed) adjacency entries; an undirected link
        counts once."""
        total = sum(len(nbrs) for nbrs in self._adj)
        return total if self._directed else total // 2

    def neighbors(self, u: int) -> Dict[int, float]:
        """Mapping of neighbor -> link latency for node ``u`` (a copy)."""
        self._check_node(u)
        return dict(self._adj[u])

    def has_link(self, u: int, v: int) -> bool:
        """Whether a direct link ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def link_latency(self, u: int, v: int) -> float:
        """Latency of the direct link ``u -> v``; raises if absent."""
        if not self.has_link(u, v):
            raise GraphError(f"no link between {u} and {v}")
        return self._adj[u][v]

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise GraphError(f"node {u} out of range for {self._n} nodes")

    def _adjacency_lists(self) -> List[List[Tuple[int, float]]]:
        return [list(nbrs.items()) for nbrs in self._adj]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shortest_distances_from(self, source: int) -> np.ndarray:
        """Single-source shortest-path distances (``inf`` = unreachable)."""
        self._check_node(source)
        return dijkstra(self._adjacency_lists(), source)

    def is_connected(self) -> bool:
        """Whether every node is reachable from node 0 (undirected view
        for directed graphs is *not* taken; reachability is as-routed)."""
        return bool(np.all(np.isfinite(self.shortest_distances_from(0))))

    def to_latency_matrix(self) -> LatencyMatrix:
        """All-pairs shortest-path distances as a :class:`LatencyMatrix`.

        Raises :class:`~repro.errors.GraphError` when the graph is not
        strongly connected (some pair has no routing path), because the
        assignment problem requires finite ``d(u, v)`` for all pairs.
        """
        dist = all_pairs_shortest_paths(self._adjacency_lists())
        if not np.all(np.isfinite(dist)):
            raise GraphError(
                "graph is disconnected; latency matrix would contain inf"
            )
        return LatencyMatrix(dist, validate=False)
