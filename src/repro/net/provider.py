"""Pluggable latency providers: dense matrices and coordinate synthesis.

Every consumer in the package reads latencies through four views — the
``(|C|, |S|)`` client→server block, its ``(|S|, |C|)`` transpose-
direction twin, the ``(|S|, |S|)`` server block, and single-pair
lookups. :class:`LatencyProvider` names that contract as a structural
protocol so the *representation* behind it becomes pluggable:

- :class:`~repro.net.latency.LatencyMatrix` — the historical dense
  ``n x n`` array; slicing a view is a fancy-index, results are exactly
  what they always were.
- :class:`CoordinateProvider` (this module) — synthesizes any requested
  block on demand from Euclidean/Vivaldi coordinates, so a planet-scale
  instance never materializes the O(n^2) matrix. A provider built from
  the same coordinates a matrix was built from returns **byte-identical**
  blocks (same elementwise float operations in the same order as
  :meth:`LatencyMatrix.from_coordinates` /
  :meth:`VivaldiEmbedding.predict_matrix`), which is what lets the
  assignment layer treat the two interchangeably (test-enforced in
  ``tests/scale/test_provider.py``).

Block synthesis is instrumented through the observability registry
(``provider.coordinate.calls`` / ``.rows`` / ``.elements``) so
matrix-free runs remain observable — ``repro obs`` renders these in its
memory section (see docs/scaling.md).
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.latency import LatencyMatrix, _check_dtype
from repro.obs.metrics import registry


@runtime_checkable
class LatencyProvider(Protocol):
    """Structural protocol of a latency source over ``n_nodes`` nodes.

    :class:`~repro.net.latency.LatencyMatrix` satisfies it with array
    slices; :class:`CoordinateProvider` satisfies it by synthesizing
    blocks on demand. ``d(u, v)`` is the one-way latency from node ``u``
    to node ``v``; the diagonal is zero and off-diagonal entries are
    strictly positive, exactly as :class:`LatencyMatrix` validates.
    """

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the universe."""
        ...

    @property
    def dtype(self) -> np.dtype:
        """Element type of returned blocks (float32 or float64)."""
        ...

    def distance(self, u: int, v: int) -> float:
        """One-way latency ``d(u, v)``."""
        ...

    def client_server_distances(
        self, clients: np.ndarray, servers: np.ndarray
    ) -> np.ndarray:
        """The ``(len(clients), len(servers))`` block ``d[c, s]``."""
        ...

    def server_client_distances(
        self, servers: np.ndarray, clients: np.ndarray
    ) -> np.ndarray:
        """The ``(len(servers), len(clients))`` block ``d[s, c]``."""
        ...

    def server_server_distances(self, servers: np.ndarray) -> np.ndarray:
        """The ``(len(servers), len(servers))`` block ``d[s, s']``."""
        ...


class CoordinateProvider:
    """Latencies synthesized on demand from coordinate embeddings.

    Predicted latency between distinct nodes is
    ``max(|x_u - x_v| * scale + h_u + h_v, min_latency)`` — Euclidean
    distance, optional Vivaldi height terms, floored to respect strict
    positivity; the diagonal is zero. Any requested block is computed
    with the same elementwise float operations (in the same order) as
    :meth:`LatencyMatrix.from_coordinates` (``heights=None``) and
    :meth:`VivaldiEmbedding.predict_matrix` (``scale=1.0``), so a
    provider and a matrix built from the same inputs agree byte for
    byte on every view.

    Memory is O(n · dims): a million-node universe costs ~24 MB of
    coordinates instead of an 8 TB matrix.
    """

    __slots__ = ("_coords", "_heights", "_scale", "_min_latency", "_dtype")

    def __init__(
        self,
        coords: np.ndarray,
        *,
        heights: Optional[np.ndarray] = None,
        scale: float = 1.0,
        min_latency: float = 1e-6,
        dtype=np.float64,
    ) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[0] == 0:
            raise InvalidParameterError(
                f"coords must be a non-empty (n, dims) array, "
                f"got shape {coords.shape}"
            )
        if not np.all(np.isfinite(coords)):
            raise InvalidParameterError("coords contain NaN or infinite entries")
        if heights is not None:
            heights = np.asarray(heights, dtype=np.float64)
            if heights.shape != (coords.shape[0],):
                raise InvalidParameterError(
                    f"heights must have length n={coords.shape[0]}, "
                    f"got shape {heights.shape}"
                )
            if not np.all(np.isfinite(heights)) or np.any(heights < 0):
                raise InvalidParameterError(
                    "heights must be finite and nonnegative"
                )
            heights = heights.copy()
            heights.setflags(write=False)
        if not (np.isfinite(scale) and scale > 0):
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        if not (np.isfinite(min_latency) and min_latency > 0):
            raise InvalidParameterError(
                f"min_latency must be positive, got {min_latency}"
            )
        coords = coords.copy()
        coords.setflags(write=False)
        object.__setattr__(self, "_coords", coords)
        object.__setattr__(self, "_heights", heights)
        object.__setattr__(self, "_scale", float(scale))
        object.__setattr__(self, "_min_latency", float(min_latency))
        object.__setattr__(self, "_dtype", _check_dtype(dtype))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CoordinateProvider is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def from_embedding(
        cls, embedding, *, min_latency: float = 0.1, dtype=np.float64
    ) -> "CoordinateProvider":
        """Wrap a fitted :class:`~repro.net.coordinates.VivaldiEmbedding`.

        The default ``min_latency`` matches
        :meth:`~repro.net.coordinates.VivaldiEmbedding.predict_matrix`,
        so ``provider.server_server_distances(all_nodes)`` reproduces
        the predicted matrix byte for byte.
        """
        heights = embedding.heights if embedding.use_height else None
        return cls(
            embedding.coordinates,
            heights=heights,
            min_latency=min_latency,
            dtype=dtype,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the universe."""
        return int(self._coords.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """Element type of synthesized blocks."""
        return self._dtype

    @property
    def coordinates(self) -> np.ndarray:
        """The ``(n, dims)`` coordinates (read-only view)."""
        return self._coords

    @property
    def heights(self) -> Optional[np.ndarray]:
        """Per-node height terms, or ``None`` when disabled."""
        return self._heights

    def content_token(self) -> str:
        """Stable hash of everything latencies depend on.

        Two providers with equal coordinates, heights, scale, floor and
        dtype synthesize byte-identical blocks, so content-keyed caches
        (e.g. :class:`repro.parallel.cache.LowerBoundCache`) can share
        entries across independently built provider objects.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._coords).tobytes())
        if self._heights is not None:
            digest.update(np.ascontiguousarray(self._heights).tobytes())
        digest.update(np.float64(self._scale).tobytes())
        digest.update(np.float64(self._min_latency).tobytes())
        digest.update(str(np.dtype(self._dtype)).encode("ascii"))
        return digest.hexdigest()[:16]

    def astype(self, dtype) -> "CoordinateProvider":
        """The same provider emitting ``dtype`` blocks; ``self`` if equal."""
        dt = _check_dtype(dtype)
        if dt == self._dtype:
            return self
        return CoordinateProvider(
            self._coords,
            heights=self._heights,
            scale=self._scale,
            min_latency=self._min_latency,
            dtype=dt,
        )

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        h = "heights" if self._heights is not None else "no heights"
        return (
            f"CoordinateProvider(n={self.n_nodes}, "
            f"dims={self._coords.shape[1]}, {h}, dtype={self._dtype})"
        )

    # ------------------------------------------------------------------
    def _block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Synthesize the ``(len(rows), len(cols))`` latency block.

        Distances are computed in float64 and cast to the provider
        dtype at the end — the exact pipeline of
        :meth:`LatencyMatrix.from_coordinates`, which is what makes
        dense and synthesized views byte-identical.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        coords = self._coords
        diff = coords[rows][:, None, :] - coords[cols][None, :, :]
        d = np.sqrt((diff**2).sum(axis=2))
        if self._scale != 1.0:
            d = d * self._scale
        if self._heights is not None:
            d = d + self._heights[rows][:, None] + self._heights[cols][None, :]
        same = rows[:, None] == cols[None, :]
        off = ~same
        d[off] = np.maximum(d[off], self._min_latency)
        if same.any():
            d[same] = 0.0
        metrics = registry()
        metrics.counter("provider.coordinate.calls").inc()
        metrics.counter("provider.coordinate.rows").inc(int(rows.size))
        metrics.counter("provider.coordinate.elements").inc(
            int(rows.size) * int(cols.size)
        )
        return np.asarray(d, dtype=self._dtype)

    def distance(self, u: int, v: int) -> float:
        """One-way latency ``d(u, v)``."""
        return float(
            self._block(np.array([u], dtype=np.int64),
                        np.array([v], dtype=np.int64))[0, 0]
        )

    def client_server_distances(
        self, clients: np.ndarray, servers: np.ndarray
    ) -> np.ndarray:
        """The ``(len(clients), len(servers))`` block ``d[c, s]``."""
        return self._block(clients, servers)

    def server_client_distances(
        self, servers: np.ndarray, clients: np.ndarray
    ) -> np.ndarray:
        """The ``(len(servers), len(clients))`` block ``d[s, c]``."""
        return self._block(servers, clients)

    def server_server_distances(self, servers: np.ndarray) -> np.ndarray:
        """The ``(len(servers), len(servers))`` block ``d[s, s']``."""
        return self._block(servers, servers)

    # ------------------------------------------------------------------
    def materialize(
        self, nodes: Optional[np.ndarray] = None
    ) -> LatencyMatrix:
        """A dense :class:`LatencyMatrix` over ``nodes`` (default: all).

        Intended for small subsets (tests, reduced instances); asking
        for the full universe of a planet-scale provider defeats its
        purpose and costs O(n^2) memory.
        """
        if nodes is None:
            nodes = np.arange(self.n_nodes, dtype=np.int64)
        block = self._block(nodes, nodes)
        # Valid by construction: zero diagonal, positive off-diagonals.
        return LatencyMatrix(block, validate=False)


def provider_name(provider: LatencyProvider) -> str:
    """A short stable label for cache keys and manifests."""
    if isinstance(provider, LatencyMatrix):
        return "dense"
    if isinstance(provider, CoordinateProvider):
        return "coordinate"
    return type(provider).__name__
