"""Command-line interface: ``dia-cap`` / ``python -m repro``.

Subcommands:

- ``dataset``  — generate a synthetic latency matrix (and describe it).
- ``solve``    — run one assignment algorithm on a generated instance.
- ``fig``      — regenerate a paper figure's data series as a table.
- ``claims``   — run the §V claims checklist.
- ``simulate`` — run the DIA event simulation for a solved assignment.
- ``faults``   — fault-injection churn: crashes, failover, recovery.
- ``chaos``    — kill/recover/diff the durable runtime (WAL + checkpoints).
- ``serve``    — run the assignment service over TCP JSON-lines.
- ``loadgen``  — drive seeded churn through a live assignment server.
- ``scale``    — million-client solves: coreset + coordinate provider.
- ``obs``      — summarize a JSONL trace produced with ``--trace``.

Every subcommand runs under the observability harness: a run manifest
is built from the parsed arguments and installed as the ambient
manifest (picked up by ``save_result``), and ``--trace PATH`` (or
``REPRO_OBS_TRACE=PATH``) streams span/metrics/manifest events to a
JSONL file that ``repro obs PATH`` rolls up into a per-phase time
breakdown. Tracing never changes results — see docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

import numpy as np

from repro._version import __version__
from repro.errors import ReproError
from repro.kernels import BACKEND_CHOICES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dia-cap",
        description=(
            "Client assignment for continuous distributed interactive "
            "applications (Zhang & Tang, ICDCS 2011) — reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)

    # Shared by every trial-sweeping subcommand (fig/claims/report/ablate):
    # 0 = serial (deterministic default), -1 = one worker per CPU, N > 0 =
    # that many worker processes. Results are identical for any value —
    # see docs/parallel.md for the determinism contract.
    workers = argparse.ArgumentParser(add_help=False)
    workers.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "worker processes for trial execution "
            "(0 = serial, -1 = all CPUs; results are identical)"
        ),
    )
    # Span tracing for the sweep commands; "null" disables, "memory"
    # buffers in-process (tests), anything else is a JSONL file path.
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write span/metrics/manifest events to a JSONL trace file "
            "(also settable via REPRO_OBS_TRACE; never changes results)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="generate a synthetic latency matrix")
    p_dataset.add_argument("--nodes", type=int, default=400)
    p_dataset.add_argument("--kind", choices=("meridian", "mit"), default="meridian")
    p_dataset.add_argument("--seed", type=int, default=0)
    p_dataset.add_argument("--out", type=str, default=None, help=".npy or text path")

    p_analyze = sub.add_parser(
        "analyze", help="structural analytics of a latency matrix"
    )
    p_analyze.add_argument("--nodes", type=int, default=300)
    p_analyze.add_argument("--kind", choices=("meridian", "mit"), default="meridian")
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument(
        "--load", type=str, default=None, help="analyze a matrix file instead"
    )
    p_analyze.add_argument("--clusters", type=int, default=8)

    p_solve = sub.add_parser("solve", help="run one algorithm on an instance")
    p_solve.add_argument("--nodes", type=int, default=400)
    p_solve.add_argument("--kind", choices=("meridian", "mit"), default="meridian")
    p_solve.add_argument("--servers", type=int, default=80)
    p_solve.add_argument(
        "--placement", choices=("random", "k-center-a", "k-center-b"), default="random"
    )
    p_solve.add_argument("--algorithm", type=str, default="distributed-greedy")
    p_solve.add_argument("--capacity", type=int, default=None)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="kernel backend for the incremental engine "
        "(auto = numba when importable, else numpy)",
    )
    p_solve.add_argument(
        "--save-deployment",
        type=str,
        default=None,
        help="write the assignment + clock offsets as a JSON deployment plan",
    )

    p_fig = sub.add_parser(
        "fig",
        help="regenerate a paper figure's data",
        parents=[workers, tracing],
    )
    p_fig.add_argument("figure", choices=("7", "8", "9", "10"))
    p_fig.add_argument(
        "--placement",
        choices=("random", "k-center-a", "k-center-b"),
        default="random",
        help="panel for figures 7 and 10",
    )
    p_fig.add_argument("--profile", type=str, default="default")
    p_fig.add_argument(
        "--save", type=str, default=None, help="write the series to a JSON file"
    )
    p_fig.add_argument(
        "--load",
        type=str,
        default=None,
        help="render a previously saved series instead of recomputing",
    )

    p_claims = sub.add_parser(
        "claims",
        help="run the §V claims checklist",
        parents=[workers, tracing],
    )
    p_claims.add_argument("--profile", type=str, default="default")

    p_report = sub.add_parser(
        "report",
        help="regenerate the full evaluation (all figures + claims)",
        parents=[workers, tracing],
    )
    p_report.add_argument("--profile", type=str, default="default")
    p_report.add_argument(
        "--out", type=str, default=None, help="directory for JSON series + report.txt"
    )
    p_report.add_argument(
        "--ablations", action="store_true", help="include the ablation studies"
    )

    p_ablate = sub.add_parser(
        "ablate", help="run an ablation study", parents=[workers, tracing]
    )
    p_ablate.add_argument(
        "study",
        choices=(
            "dga-initial",
            "greedy-cost",
            "triangle",
            "estimated-latencies",
            "measurement-error",
            "placement",
        ),
    )
    p_ablate.add_argument("--nodes", type=int, default=200)
    p_ablate.add_argument("--servers", type=int, default=20)
    p_ablate.add_argument("--runs", type=int, default=5)
    p_ablate.add_argument("--seed", type=int, default=0)

    p_churn = sub.add_parser(
        "churn", help="simulate online client churn with/without rebalancing"
    )
    p_churn.add_argument("--nodes", type=int, default=200)
    p_churn.add_argument("--servers", type=int, default=16)
    p_churn.add_argument("--events", type=int, default=300)
    p_churn.add_argument("--rebalance-every", type=int, default=20)
    p_churn.add_argument("--seed", type=int, default=0)

    p_faults = sub.add_parser(
        "faults",
        help="fault-injection churn: server crashes, failover, recovery",
    )
    p_faults.add_argument("--nodes", type=int, default=200)
    p_faults.add_argument("--servers", type=int, default=16)
    p_faults.add_argument("--events", type=int, default=300)
    p_faults.add_argument(
        "--mttf", type=float, default=120.0,
        help="mean time to failure per server (in churn-event ticks)",
    )
    p_faults.add_argument(
        "--mttr", type=float, default=40.0,
        help="mean time to recovery (in churn-event ticks)",
    )
    p_faults.add_argument("--capacity", type=int, default=None)
    p_faults.add_argument("--rebalance-every", type=int, default=None)
    p_faults.add_argument(
        "--readmit-moves", type=int, default=8,
        help="Distributed-Greedy move budget on each server recovery",
    )
    p_faults.add_argument("--seed", type=int, default=0)

    p_chaos = sub.add_parser(
        "chaos",
        help="kill/recover/diff the durable online runtime",
    )
    p_chaos.add_argument("--nodes", type=int, default=120)
    p_chaos.add_argument("--servers", type=int, default=8)
    p_chaos.add_argument("--events", type=int, default=120)
    p_chaos.add_argument(
        "--kill-at", type=int, nargs="*", default=None, metavar="K",
        help=(
            "event indices to kill the runtime after "
            "(default: three points spread across the workload)"
        ),
    )
    p_chaos.add_argument("--capacity", type=int, default=None)
    p_chaos.add_argument(
        "--max-backlog", type=int, default=32,
        help="degraded-mode join backlog before rejection",
    )
    p_chaos.add_argument("--checkpoint-every", type=int, default=20)
    p_chaos.add_argument(
        "--fsync-every", type=int, default=8,
        help="WAL group-commit size (1 = fsync every record)",
    )
    p_chaos.add_argument(
        "--no-torn-tail", action="store_true",
        help="skip appending a torn partial record to each killed WAL",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--dir", type=str, default=None,
        help=(
            "working directory for WALs/checkpoints "
            "(default: a temp dir, removed on exit)"
        ),
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the assignment service over TCP JSON-lines",
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7690,
        help="listen port (0 = pick an ephemeral port)",
    )
    p_serve.add_argument(
        "--base-dir", type=str, default=None,
        help=(
            "directory for WAL-backed session state "
            "(default: a temp dir, removed on shutdown)"
        ),
    )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive seeded churn through a live assignment server",
    )
    p_loadgen.add_argument("--host", type=str, default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=7690)
    p_loadgen.add_argument(
        "--spawn", action="store_true",
        help="start an in-process server on an ephemeral port instead",
    )
    p_loadgen.add_argument("--events", type=int, default=10_000)
    p_loadgen.add_argument("--batch-size", type=int, default=200)
    p_loadgen.add_argument("--pipeline-depth", type=int, default=8)
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--nodes", type=int, default=120)
    p_loadgen.add_argument(
        "--kind", choices=("meridian", "mit"), default="meridian"
    )
    p_loadgen.add_argument("--servers", type=int, default=8)
    p_loadgen.add_argument("--capacity", type=int, default=None)
    p_loadgen.add_argument(
        "--durability", choices=("off", "wal"), default="off",
        help="session durability mode (wal persists state server-side)",
    )
    p_loadgen.add_argument("--fault-every", type=int, default=0)
    p_loadgen.add_argument("--partition-every", type=int, default=0)
    p_loadgen.add_argument("--rebalance-every", type=int, default=0)
    p_loadgen.add_argument(
        "--verify", action="store_true",
        help=(
            "replay the events in-process and assert the wire and "
            "library paths are byte-identical"
        ),
    )
    p_loadgen.add_argument(
        "--min-throughput", type=float, default=None, metavar="EVENTS_PER_SEC",
        help="exit non-zero below this sustained event rate",
    )

    p_obs = sub.add_parser(
        "obs", help="summarize a JSONL trace produced with --trace"
    )
    p_obs.add_argument("trace_file", type=str, help="JSONL trace file path")
    p_obs.add_argument(
        "--top", type=int, default=10,
        help="number of hottest spans to show (by self time)",
    )

    p_scale = sub.add_parser(
        "scale",
        help="million-client solves via coresets and coordinate providers",
        parents=[tracing],
    )
    scale_sub = p_scale.add_subparsers(dest="scale_command", required=True)
    p_scale_solve = scale_sub.add_parser(
        "solve",
        help="coreset-solve a planet-scale coordinate instance",
        parents=[tracing],
    )
    p_scale_solve.add_argument(
        "--clients", type=int, default=100_000,
        help="client count (coordinate provider: no dense matrix, any size)",
    )
    p_scale_solve.add_argument("--servers", type=int, default=32)
    p_scale_solve.add_argument(
        "--clusters", type=int, default=64,
        help="metro clusters in the generated geometry",
    )
    p_scale_solve.add_argument(
        "--cell-size", type=float, default=None,
        help="coreset quantization cell in ms (default: geometry-derived)",
    )
    p_scale_solve.add_argument("--algorithm", type=str, default="distributed-greedy")
    p_scale_solve.add_argument("--seed", type=int, default=0)
    p_scale_solve.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="kernel backend for the reduced solve",
    )
    p_scale_solve.add_argument(
        "--save", type=str, default=None,
        help="write the scale-solve summary as JSON",
    )

    p_scen = sub.add_parser(
        "scenarios",
        help="adversarial workloads + empirical competitive-ratio harness",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser("list", help="list the bundled scenarios")

    scen_shared = argparse.ArgumentParser(add_help=False)
    scen_shared.add_argument(
        "--scenario", type=str, default="flash-crowd",
        help="bundled scenario name (see `scenarios list`)",
    )
    scen_shared.add_argument(
        "--file", type=str, default=None, metavar="PATH",
        help="load a scenario JSON document instead of a bundled one",
    )
    scen_shared.add_argument(
        "--path", choices=("library", "sharded", "wire"), default="library",
        help="execution path: plain manager, region-sharded, or live TCP",
    )
    scen_shared.add_argument(
        "--shards", type=int, default=4, help="shard count for --path sharded"
    )
    scen_shared.add_argument(
        "--checkpoint-every", type=int, default=32,
        help="events between competitive-ratio checkpoints",
    )
    scen_shared.add_argument(
        "--maintain-moves", type=int, default=1,
        help="policy.maintain move budget after each event (0 disables)",
    )
    scen_shared.add_argument(
        "--offline", type=str, default="nearest-server", metavar="ALGO",
        help="offline reference algorithm at checkpoints ('none' disables)",
    )
    scen_shared.add_argument(
        "--json", action="store_true", help="emit the JSON document instead"
    )
    scen_shared.add_argument(
        "--out", type=str, default=None, help="write the JSON document here"
    )

    p_scen_run = scen_sub.add_parser(
        "run",
        help="replay one scenario through one policy",
        parents=[scen_shared, tracing],
    )
    p_scen_run.add_argument(
        "--policy", type=str, default="greedy",
        help="online policy (see repro.algorithms.policies)",
    )
    p_scen_run.add_argument(
        "--show", action="store_true",
        help="print the scenario JSON document and exit without replaying",
    )

    p_scen_cmp = scen_sub.add_parser(
        "compare",
        help="replay one scenario through several policies",
        parents=[scen_shared, workers, tracing],
    )
    p_scen_cmp.add_argument(
        "--policies", type=str, default="greedy,nearest,threshold,spread",
        help="comma-separated policy names",
    )

    p_sim = sub.add_parser("simulate", help="run the DIA event simulation")
    p_sim.add_argument("--nodes", type=int, default=120)
    p_sim.add_argument("--servers", type=int, default=10)
    p_sim.add_argument("--algorithm", type=str, default="greedy")
    p_sim.add_argument("--ops-rate", type=float, default=0.01)
    p_sim.add_argument("--horizon", type=float, default=500.0)
    p_sim.add_argument("--jitter-sigma", type=float, default=0.0)
    p_sim.add_argument(
        "--percentile", type=float, default=None,
        help="plan the lag against this latency percentile (with jitter)",
    )
    p_sim.add_argument("--seed", type=int, default=0)
    return parser


def _make_matrix(kind: str, nodes: int, seed: int):
    from repro.datasets import synthesize_meridian_like, synthesize_mit_like

    if kind == "mit":
        return synthesize_mit_like(nodes, seed=seed)
    return synthesize_meridian_like(nodes, seed=seed)


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets.io import write_matrix_npy, write_matrix_text
    from repro.net.latency import describe

    matrix = _make_matrix(args.kind, args.nodes, args.seed)
    print(describe(matrix))
    if args.out:
        if args.out.endswith(".npy"):
            write_matrix_npy(args.out, matrix.values)
        else:
            write_matrix_text(args.out, matrix.values)
        print(f"wrote {matrix.n_nodes}x{matrix.n_nodes} matrix to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.datasets import drop_incomplete_nodes
    from repro.datasets.io import load_matrix_auto
    from repro.net.analysis import (
        asymmetry_report,
        cluster_nodes,
        cluster_quality,
        stretch_report,
    )
    from repro.net.latency import describe

    if args.load:
        raw = load_matrix_auto(args.load)
        matrix, report = drop_incomplete_nodes(raw)
        if report.dropped:
            print(
                f"cleaned: {report.n_before} -> {report.n_after} nodes "
                f"({len(report.dropped)} dropped)"
            )
    else:
        matrix = _make_matrix(args.kind, args.nodes, args.seed)
    print(describe(matrix))
    asym = asymmetry_report(matrix)
    print(
        f"asymmetry: mean {asym.mean_relative_asymmetry:.2%}, "
        f"max {asym.max_relative_asymmetry:.2%}, "
        f">10%: {asym.fraction_above_10pct:.2%} of pairs"
    )
    stretch = stretch_report(matrix)
    print(
        f"stretch vs metric closure: mean {stretch.mean_stretch:.3f}, "
        f"p95 {stretch.p95_stretch:.3f}, max {stretch.max_stretch:.3f}, "
        f"detour available for {stretch.fraction_stretched:.1%} of pairs"
    )
    k = min(args.clusters, matrix.n_nodes)
    labels, medoids = cluster_nodes(matrix, k, seed=args.seed)
    quality = cluster_quality(matrix, labels)
    import numpy as np

    sizes = np.bincount(labels, minlength=k)
    print(
        f"k-medoids (k={k}): separation score {quality:.3f}, "
        f"cluster sizes {sorted(sizes.tolist(), reverse=True)}"
    )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.algorithms import run_algorithm
    from repro.core import ClientAssignmentProblem, interaction_lower_bound
    from repro.experiments.runner import PLACEMENTS

    matrix = _make_matrix(args.kind, args.nodes, args.seed)
    servers = PLACEMENTS[args.placement](matrix, args.servers, seed=args.seed)
    problem = ClientAssignmentProblem(matrix, servers, capacities=args.capacity)
    result = run_algorithm(
        args.algorithm, problem, seed=args.seed, backend=args.backend
    )
    assignment = result.assignment
    d = result.d
    lb = interaction_lower_bound(problem.uncapacitated())
    loads = assignment.loads()
    print(f"instance: {problem}")
    print(
        f"algorithm: {args.algorithm} ({result.elapsed_seconds*1000:.1f} ms, "
        f"{result.n_evaluations} candidate evaluations)"
    )
    print(f"max interaction path length D = {d:.2f} ms")
    print(f"lower bound = {lb:.2f} ms, normalized interactivity = {d/lb:.3f}")
    print(
        f"servers used: {assignment.used_servers().size}/{problem.n_servers}, "
        f"max load: {int(loads.max())}"
    )
    if args.save_deployment:
        from repro.core import DeploymentPlan

        plan = DeploymentPlan.from_assignment(assignment)
        plan.save(args.save_deployment)
        print(
            f"wrote deployment plan (delta={plan.delta:.2f} ms, "
            f"{len(plan.server_offsets)} servers, "
            f"{len(plan.client_assignments)} clients) to {args.save_deployment}"
        )
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.experiments import (
        dataset_for,
        fig7,
        fig8,
        fig9,
        fig10,
        profile,
        render_fig7,
        render_fig8,
        render_fig9,
        render_fig10,
    )

    from repro.experiments import load_result, save_result

    from repro.parallel import TrialPool

    renderers = {"7": render_fig7, "8": render_fig8, "9": render_fig9, "10": render_fig10}
    if args.load is not None:
        result = load_result(args.load)
    else:
        prof = profile(args.profile)
        matrix = dataset_for(prof)
        with TrialPool(args.workers) as pool:
            if args.figure == "7":
                result = fig7(prof, args.placement, matrix=matrix, pool=pool)
            elif args.figure == "8":
                result = fig8(prof, matrix=matrix, pool=pool)
            elif args.figure == "9":
                result = fig9(prof, matrix=matrix, pool=pool)
            else:
                result = fig10(prof, args.placement, matrix=matrix, pool=pool)
    print(renderers[args.figure](result))
    if args.save is not None:
        save_result(args.save, result)
        print(f"saved series to {args.save}")
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.experiments import (
        dataset_for,
        profile,
        render_claims,
        run_claims_for_profile,
    )
    from repro.parallel import TrialPool

    prof = profile(args.profile)
    matrix = dataset_for(prof)
    with TrialPool(args.workers) as pool:
        claims = run_claims_for_profile(prof, matrix=matrix, pool=pool)
    print(render_claims(claims))
    return 0 if all(c.holds for c in claims) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import profile, run_full_evaluation

    bundle = run_full_evaluation(
        profile(args.profile),
        out_dir=args.out,
        include_ablations=args.ablations,
        progress=lambda msg: print(f"[report] {msg}"),
        workers=args.workers,
    )
    print()
    print(bundle.render())
    return 0 if bundle.all_claims_hold else 1


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import (
        ablation_dga_initial,
        ablation_estimated_latencies,
        ablation_greedy_cost,
        ablation_placement_strategies,
        ablation_triangle_violations,
    )
    from repro.parallel import TrialPool

    if args.study == "triangle":
        result = ablation_triangle_violations(
            n_nodes=args.nodes,
            n_servers=args.servers,
            n_runs=args.runs,
            seed=args.seed,
        )
    else:
        matrix = _make_matrix("meridian", args.nodes, args.seed)
        if args.study == "dga-initial":
            with TrialPool(args.workers) as pool:
                result = ablation_dga_initial(
                    matrix,
                    n_servers=args.servers,
                    n_runs=args.runs,
                    seed=args.seed,
                    pool=pool,
                )
        elif args.study == "greedy-cost":
            with TrialPool(args.workers) as pool:
                result = ablation_greedy_cost(
                    matrix,
                    n_servers=args.servers,
                    n_runs=args.runs,
                    seed=args.seed,
                    pool=pool,
                )
        elif args.study == "estimated-latencies":
            result = ablation_estimated_latencies(
                matrix, n_servers=args.servers, seed=args.seed
            )
        elif args.study == "measurement-error":
            from repro.experiments.ablations import ablation_measurement_error

            result = ablation_measurement_error(
                matrix, n_servers=args.servers, seed=args.seed
            )
        else:
            with TrialPool(args.workers) as pool:
                result = ablation_placement_strategies(
                    matrix,
                    n_servers=args.servers,
                    n_runs=args.runs,
                    seed=args.seed,
                    pool=pool,
                )
    print(result.render())
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    from repro.algorithms.online import simulate_churn
    from repro.placement import kcenter_b

    matrix = _make_matrix("meridian", args.nodes, args.seed)
    servers = kcenter_b(matrix, args.servers, seed=args.seed)
    nearest = simulate_churn(
        matrix,
        servers,
        n_events=args.events,
        rebalance_every=None,
        join_policy="nearest",
        seed=args.seed,
    )
    greedy_joins = simulate_churn(
        matrix,
        servers,
        n_events=args.events,
        rebalance_every=None,
        join_policy="greedy",
        seed=args.seed,
    )
    managed = simulate_churn(
        matrix,
        servers,
        n_events=args.events,
        rebalance_every=args.rebalance_every,
        join_policy="greedy",
        seed=args.seed,
    )
    print(
        f"{args.events} join/leave events over {args.servers} servers "
        f"({args.nodes}-node network)"
    )
    print(
        f"nearest-server joins:      mean D = {nearest.mean_d():8.1f} ms, "
        f"final D = {nearest.final_d():8.1f} ms"
    )
    print(
        f"greedy joins:              mean D = {greedy_joins.mean_d():8.1f} ms, "
        f"final D = {greedy_joins.final_d():8.1f} ms"
    )
    print(
        f"greedy + rebalance/{args.rebalance_every:<3}:    mean D = "
        f"{managed.mean_d():8.1f} ms, final D = {managed.final_d():8.1f} ms "
        f"({managed.moves_by_rebalance} repair moves)"
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultSchedule, simulate_churn_with_faults
    from repro.placement import kcenter_b

    matrix = _make_matrix("meridian", args.nodes, args.seed)
    servers = kcenter_b(matrix, args.servers, seed=args.seed)
    # Keep a strict majority of servers up so evacuation always has a
    # target; the failover controller sheds only on capacity pressure.
    schedule = FaultSchedule.generate(
        args.servers,
        float(args.events),
        mttf=args.mttf,
        mttr=args.mttr,
        seed=args.seed,
        max_concurrent_down=max(1, args.servers // 2),
    )
    n_crashes = len(schedule.down_intervals)
    print(
        f"{args.events} churn events, {args.servers} servers, "
        f"{n_crashes} crash(es) (MTTF {args.mttf:g}, MTTR {args.mttr:g})"
    )
    for label, policy in (("nearest joins", "nearest"), ("greedy joins", "greedy")):
        result = simulate_churn_with_faults(
            matrix,
            servers,
            schedule,
            n_events=args.events,
            join_policy=policy,
            rebalance_every=args.rebalance_every,
            capacity=args.capacity,
            readmit_moves=args.readmit_moves,
            seed=args.seed,
        )
        print(
            f"{label:<14} mean D = {result.mean_d():8.1f} ms, "
            f"peak D = {result.peak_d():8.1f} ms, "
            f"final D = {result.final_d():8.1f} ms, "
            f"shed clients = {result.total_shed()}"
        )
        for cycle in result.cycles():
            recovered = (
                "not recovered"
                if cycle.recovery_ratio is None
                else f"recovered to {cycle.recovery_ratio:.2f}x pre-fault"
            )
            print(
                f"    server {cycle.server:>2} down at t={cycle.crash_time:7.1f}: "
                f"{cycle.n_evacuated} evacuated, {cycle.n_shed} shed, "
                f"degraded {cycle.inflation:.2f}x, {recovered} "
                f"({cycle.rebalance_moves} readmit moves)"
            )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from repro.placement import kcenter_b
    from repro.resilience import DegradePolicy, run_chaos

    matrix = _make_matrix("meridian", args.nodes, args.seed)
    servers = kcenter_b(matrix, args.servers, seed=args.seed)
    base_dir = args.dir or tempfile.mkdtemp(prefix="repro-chaos-")
    cleanup = args.dir is None
    try:
        report = run_chaos(
            matrix,
            servers,
            base_dir,
            n_events=args.events,
            kill_points=tuple(args.kill_at or ()),
            seed=args.seed,
            capacity=args.capacity,
            policy=DegradePolicy(max_backlog=args.max_backlog),
            checkpoint_every=args.checkpoint_every,
            fsync_every=args.fsync_every,
            tear_tail=not args.no_torn_tail,
        )
    finally:
        if cleanup:
            shutil.rmtree(base_dir, ignore_errors=True)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.algorithms import run_algorithm
    from repro.core import ClientAssignmentProblem, OffsetSchedule
    from repro.net.jitter import LogNormalJitter, NoJitter
    from repro.placement import random_placement
    from repro.sim import poisson_workload, simulate_assignment
    from repro.sim.dia import percentile_schedule

    matrix = _make_matrix("meridian", args.nodes, args.seed)
    servers = random_placement(matrix, args.servers, seed=args.seed)
    problem = ClientAssignmentProblem(matrix, servers)
    result = run_algorithm(args.algorithm, problem, seed=args.seed)
    assignment = result.assignment
    jitter = LogNormalJitter(args.jitter_sigma) if args.jitter_sigma > 0 else NoJitter()
    if args.percentile is not None and args.jitter_sigma > 0:
        schedule = percentile_schedule(assignment, jitter, args.percentile)
    else:
        schedule = OffsetSchedule(assignment)
    ops = poisson_workload(
        problem.n_clients, rate=args.ops_rate, horizon=args.horizon, seed=args.seed
    )
    report = simulate_assignment(
        schedule,
        ops,
        jitter=jitter,
        seed=args.seed,
        allow_late=args.jitter_sigma > 0,
        base_matrix=matrix.values,
    )
    d = result.d
    print(f"assignment D = {d:.2f} ms, planned lag delta = {schedule.delta:.2f} ms")
    print(
        f"operations: {report.n_operations}, messages: {report.n_messages}, "
        f"healthy: {report.healthy}"
    )
    print(
        f"late at servers: {report.late_server_arrivals}, "
        f"late at clients: {report.late_client_updates}, "
        f"timewarp repairs: {report.repairs}"
    )
    print(
        f"interaction time min/max: {report.min_interaction_time:.2f} / "
        f"{report.max_interaction_time:.2f} ms "
        f"(servers consistent: {report.servers_consistent}, fair: {report.fair})"
    )
    return 0 if report.servers_consistent and report.fair else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import AssignmentServer, AssignmentService

    service = AssignmentService(base_dir=args.base_dir)
    server = AssignmentServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        host, port = await server.start()
        print(f"assignment service listening on {host}:{port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import ServerThread, run_loadgen

    session_params = {
        "nodes": args.nodes,
        "kind": args.kind,
        "n_servers": args.servers,
        "capacity": args.capacity,
        "durability": args.durability,
    }

    def _run(host: str, port: int):
        return run_loadgen(
            host,
            port,
            n_events=args.events,
            batch_size=args.batch_size,
            pipeline_depth=args.pipeline_depth,
            seed=args.seed,
            session_params=session_params,
            fault_every=args.fault_every,
            partition_every=args.partition_every,
            rebalance_every=args.rebalance_every,
            verify=args.verify,
        )

    if args.spawn:
        with ServerThread() as (host, port):
            report = _run(host, port)
    else:
        report = _run(args.host, args.port)
    print(report.render())
    if (
        args.min_throughput is not None
        and report.events_per_second < args.min_throughput
    ):
        print(
            f"FAIL: {report.events_per_second:,.0f} events/s is below the "
            f"required {args.min_throughput:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.datasets import coreset_cell_size_hint, planet_instance
    from repro.obs import format_bytes, peak_rss_bytes
    from repro.scale import solve_at_scale

    instance = planet_instance(
        args.clients, args.servers, n_clusters=args.clusters, seed=args.seed
    )
    cell = args.cell_size
    if cell is None:
        cell = coreset_cell_size_hint(instance)
    result = solve_at_scale(
        instance.provider,
        instance.servers,
        instance.clients,
        cell_size=cell,
        algorithm=args.algorithm,
        seed=args.seed,
        backend=args.backend,
    )
    coreset = result.coreset
    print(
        f"instance: {args.clients} clients, {args.servers} servers, "
        f"{args.clusters} clusters (coordinate provider, no dense matrix)"
    )
    print(
        f"coreset: {coreset.n_clients} -> {coreset.n_representatives} "
        f"super-clients ({coreset.reduction_ratio:.1f}x, cell {cell:.2f} ms, "
        f"epsilon {coreset.epsilon:.2f} ms)"
    )
    print(
        f"reduced D = {result.d_reduced:.2f} ms "
        f"({args.algorithm}, {result.reduced.elapsed_seconds*1000:.1f} ms solve)"
    )
    print(
        f"expanded D = {result.d_expanded:.2f} ms "
        f"<= bound {result.bound:.2f} ms (reduced + 2*epsilon)"
    )
    print(
        f"total {result.elapsed_seconds:.2f} s, "
        f"peak RSS {format_bytes(peak_rss_bytes())}"
    )
    if args.save:
        import json

        with open(args.save, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote scale-solve summary to {args.save}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, summarize_file

    print(render_summary(summarize_file(args.trace_file, top=args.top)))
    return 0


def _load_scenario(args: argparse.Namespace):
    from repro.scenarios import Scenario, bundled_scenario

    if args.file:
        with open(args.file, "r", encoding="utf-8") as fh:
            return Scenario.loads(fh.read())
    return bundled_scenario(args.scenario)


def _replay_options(args: argparse.Namespace):
    from repro.scenarios import ReplayOptions

    offline = args.offline
    if offline in (None, "", "none"):
        offline = None
    return ReplayOptions(
        path=args.path,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        maintain_moves=args.maintain_moves,
        offline_algorithm=offline,
    )


def _write_json_doc(doc: dict, args: argparse.Namespace) -> None:
    import json

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote JSON report to {args.out}")
    if args.json:
        print(text)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        bundled_scenario,
        check_ratios,
        compare_to_dict,
        render_compare_report,
        render_run_report,
        scenario_names,
    )

    if args.scenarios_command == "list":
        for name in scenario_names():
            scenario = bundled_scenario(name)
            spec = scenario.instance
            print(
                f"{name:<18} {spec.kind:<9} |C|={spec.n_clients:<5} "
                f"|S|={spec.n_servers:<3} "
                f"cap={spec.capacity if spec.capacity is not None else '-':<4} "
                f"{scenario.description}"
            )
        return 0

    scenario = _load_scenario(args)
    options = _replay_options(args)

    if args.scenarios_command == "run":
        if args.show:
            print(scenario.dumps())
            return 0
        from repro.scenarios import replay_scenario

        result = replay_scenario(scenario, args.policy, options=options)
        if not (args.json and not args.out):
            print(render_run_report(result))
        _write_json_doc(result.to_dict(), args)
        check_ratios(result)
        return 0

    # compare
    from repro.parallel import TrialPool
    from repro.scenarios import compare_policies

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    with TrialPool(args.workers) as pool:
        results = compare_policies(
            scenario, policies, options=options, pool=pool
        )
    if not (args.json and not args.out):
        print(render_compare_report(results))
    _write_json_doc(compare_to_dict(results), args)
    for result in results:
        check_ratios(result)
    return 0


# Arguments that steer execution mechanics or output locations, not the
# computed result. They go in the manifest's volatile section — putting
# them in the deterministic config would make otherwise byte-identical
# runs (e.g. --workers 0 vs 4, different --save paths) disagree.
_NON_RESULT_ARGS = frozenset(
    {
        "command", "scale_command", "scenarios_command", "trace", "workers",
        "save", "load", "out", "save_deployment", "dir", "host", "port",
        "base_dir", "spawn", "min_throughput", "json", "file", "show",
    }
)


def _manifest_config(args: argparse.Namespace) -> dict:
    """JSON-able view of the result-shaping arguments for the manifest."""
    config = {}
    for key, value in sorted(vars(args).items()):
        if key in _NON_RESULT_ARGS:
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            config[key] = value
    return config


@contextmanager
def _run_observability(args: argparse.Namespace, command: str) -> Iterator[None]:
    """Observability harness around one CLI command.

    Installs a trace sink (from ``--trace`` or ``REPRO_OBS_TRACE``;
    the null sink when neither is set) and an ambient run manifest,
    wraps the command in a root ``cli.<command>`` span, and on exit
    emits the process metrics snapshot plus the finalized manifest as
    trailing trace events. Purely additive: the command's results are
    identical with tracing on or off.
    """
    from repro import obs

    spec = getattr(args, "trace", None) or obs.sink_spec_from_env()
    sink = obs.open_sink(spec)
    manifest = obs.build_manifest(
        command=command, config=_manifest_config(args),
        seeds={"seed": getattr(args, "seed", None)},
        workers=getattr(args, "workers", None),
    )
    previous_manifest = obs.set_current_manifest(manifest)
    obs.install_sink(sink)
    started = time.perf_counter()
    try:
        with obs.span(f"cli.{command}"):
            yield
    finally:
        manifest.finalize(wall_seconds=time.perf_counter() - started)
        obs.record_peak_rss()
        obs.emit_event("metrics", metrics=obs.registry().snapshot())
        obs.emit_event(
            "manifest", manifest=manifest.to_dict(include_volatile=True)
        )
        obs.uninstall_sink(close=True)
        obs.set_current_manifest(previous_manifest)
        if isinstance(sink, obs.JsonlSink):
            print(f"[obs] trace written to {sink.path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "dataset": _cmd_dataset,
        "analyze": _cmd_analyze,
        "solve": _cmd_solve,
        "fig": _cmd_fig,
        "claims": _cmd_claims,
        "report": _cmd_report,
        "ablate": _cmd_ablate,
        "churn": _cmd_churn,
        "faults": _cmd_faults,
        "chaos": _cmd_chaos,
        "scale": _cmd_scale,
        "simulate": _cmd_simulate,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "scenarios": _cmd_scenarios,
        "obs": _cmd_obs,
    }
    try:
        if args.command == "obs":
            return _cmd_obs(args)
        with _run_observability(args, args.command):
            return handlers[args.command](args)
    except ReproError as exc:
        # Package errors carry a stable code (e.g.
        # "kernel-backend-unavailable" for --backend numba without
        # numba); surface it instead of a traceback.
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
