"""Incremental maintenance of the objective D under single-client moves.

Every heuristic in the package evaluates candidate moves of the form
"relocate client ``c`` to server ``s``". Recomputing the maximum
interaction path length from scratch per candidate costs O(|C| + |S|^2);
:class:`IncrementalObjective` brings the amortized per-candidate cost
down to O(|S|) by maintaining, per server and per direction, the top-k
farthest assigned clients plus cached server-level reductions:

- ``l_out[s] = max_c d(c, s)`` and ``l_in[s] = max_c d(s, c)`` over the
  clients assigned to ``s`` (the paper's ``l(s)``, split by direction
  for asymmetric matrices), each backed by a small sorted top-k list so
  removing a client rarely needs a full member scan;
- per-server best completions ``best_in[s'] = max_s (d(s', s) + l_in[s])``
  and ``best_out[s'] = max_s (l_out[s] + d(s, s'))`` with their top-2
  contributors, so excluding one server's column costs O(1) per row.

With those caches a :meth:`batch_delta_D` call scores *all* |S|
candidate destinations of one client in a handful of O(|S|) vectorized
passes, :meth:`apply` commits a move with O(k) heap work plus one
O(|S|^2) objective refresh (performed lazily), and :meth:`undo` restores
the previous state exactly. Top-k lists are rebuilt lazily from the
ground-truth assignment when removals drain them.

The maxima the engine maintains are exact (maxima of the same floating
point numbers the from-scratch pass would inspect), so its cached D is
bit-identical to :func:`repro.core.metrics.max_interaction_path_length`
on the same assignment. Candidate scores can differ from a from-scratch
recomputation by a few ULPs because additions associate differently;
every consumer in the package compares with tolerances far above that.

The engine also supports *partial* assignments (``server_of[i] == -1``
means client ``i`` is currently unassigned) so constructive algorithms
(Greedy, Longest-First-Batch) and the online manager (joins/leaves) run
on the same substrate as the local-search family.

The four hot loops — fused candidate scoring, the best-completion
top-2 reduction, top-k selection for lazy rebuilds, and the O(|S|^2)
objective refresh — are dispatched through a :mod:`repro.kernels`
backend selected by the ``backend=`` knob (``"auto"`` picks numba when
importable and otherwise the pure-numpy twin, which reproduces the
historical inline engine byte for byte). Latency matrices may be
float32 (see :class:`~repro.net.latency.LatencyMatrix`): the big
``(C, S)``/``(S, C)`` views stay in the matrix dtype for cache density
while every S-sized accumulator remains float64, so float32 values —
exactly representable in float64 — never lose precision inside the
engine; only the matrix itself is rounded.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidAssignmentError, InvalidParameterError
from repro.kernels import resolve_backend
from repro.obs.metrics import registry
from repro.types import IndexArrayLike

#: Clients retained per server and direction before lazy rebuilds kick in.
DEFAULT_TOP_K = 8

_UNASSIGNED = -1


# ----------------------------------------------------------------------
# Candidate-evaluation accounting
# ----------------------------------------------------------------------
class EvaluationCounter:
    """Counts candidate (client, server) objective evaluations."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


_COUNTER_STACK: List[EvaluationCounter] = []


@contextmanager
def count_evaluations() -> Iterator[EvaluationCounter]:
    """Context manager collecting candidate-evaluation counts.

    Every :class:`IncrementalObjective` delta query (and every algorithm
    that scores candidates without going through an engine, via
    :func:`record_candidate_evaluations`) adds to all active counters,
    so nesting works: an outer experiment harness sees the sum of its
    inner runs.
    """
    counter = EvaluationCounter()
    _COUNTER_STACK.append(counter)
    try:
        yield counter
    finally:
        _COUNTER_STACK.remove(counter)


def record_candidate_evaluations(n: int) -> None:
    """Credit ``n`` candidate evaluations to all active counters.

    Algorithms whose candidate scoring is a bespoke vectorized pass
    (e.g. Greedy's full (|S|, |C|) cost matrix) call this so
    :func:`~repro.algorithms.base.run_algorithm` still reports a faithful
    evaluation count.
    """
    for counter in _COUNTER_STACK:
        counter.count += n


class _TopList:
    """Sorted (descending) list of up to ``k`` (distance, client) pairs.

    Invariant: every member *not* in the list has distance <= ``bound``,
    the largest distance ever skipped or evicted since the last rebuild.
    The head is therefore the true per-server maximum whenever
    ``head() >= bound``; when churn pushes the usable entries below the
    watermark the owner rebuilds the list from ground truth. (Tracking
    the watermark — rather than only handling the fully-drained case —
    matters because after a partial drain ``add`` may insert values
    *below* distances that were skipped while the list was full.)
    """

    __slots__ = ("k", "neg_dists", "clients", "bound")

    def __init__(self, k: int) -> None:
        self.k = k
        # Stored ascending by -distance so bisect keeps descending order.
        self.neg_dists: List[float] = []
        self.clients: List[int] = []
        #: Upper bound on the distance of any unlisted member.
        self.bound: float = -np.inf

    def head(self) -> float:
        return -self.neg_dists[0]

    def second(self) -> float:
        return -self.neg_dists[1]

    def __len__(self) -> int:
        return len(self.neg_dists)

    def add(self, dist: float, client: int) -> None:
        if len(self.neg_dists) >= self.k and -dist >= self.neg_dists[-1]:
            self.bound = max(self.bound, dist)
            return  # not among the retained top-k
        pos = bisect.bisect_left(self.neg_dists, -dist)
        self.neg_dists.insert(pos, -dist)
        self.clients.insert(pos, client)
        if len(self.neg_dists) > self.k:
            self.bound = max(self.bound, -self.neg_dists.pop())
            self.clients.pop()

    def discard(self, client: int) -> None:
        try:
            pos = self.clients.index(client)
        except ValueError:
            return  # unlisted member: cannot have been the maximum
        self.neg_dists.pop(pos)
        self.clients.pop(pos)

    def rebuild(self, dists: np.ndarray, clients: np.ndarray) -> None:
        from repro.kernels.numpy_backend import topk_select

        order, bound = topk_select(dists, self.k)
        self.load(dists[order], clients[order], bound)

    def load(
        self, dists_desc: np.ndarray, clients: np.ndarray, bound: float
    ) -> None:
        """Adopt a ready-made top-k selection (descending distances)."""
        self.bound = float(bound)
        self.neg_dists = [-float(d) for d in dists_desc]
        self.clients = [int(c) for c in clients]

    def snapshot(self) -> Tuple[List[float], List[int], float]:
        return list(self.neg_dists), list(self.clients), self.bound

    def restore(self, state: Tuple[List[float], List[int], float]) -> None:
        self.neg_dists, self.clients = list(state[0]), list(state[1])
        self.bound = state[2]


class _MoveContext:
    """Per-client cache of the quantities every destination shares."""

    __slots__ = ("client", "home", "l_out_home", "l_in_home", "d_rest", "paths")

    def __init__(
        self,
        client: int,
        home: int,
        l_out_home: float,
        l_in_home: float,
        d_rest: float,
        paths: np.ndarray,
    ) -> None:
        self.client = client
        self.home = home
        self.l_out_home = l_out_home
        self.l_in_home = l_in_home
        self.d_rest = d_rest
        self.paths = paths


class IncrementalObjective:
    """Incrementally maintained maximum interaction path length.

    Parameters
    ----------
    problem:
        The instance. Capacities (when present) are consulted by
        :meth:`batch_delta_D`'s feasibility masking but never enforced on
        :meth:`apply` — algorithms own their feasibility logic, exactly
        as they did against the from-scratch metric.
    server_of:
        Initial assignment; length ``|C|`` with ``-1`` marking
        unassigned clients. ``None`` starts fully unassigned.
    k:
        Per-server, per-direction top-k retention (default
        ``DEFAULT_TOP_K``). Larger values trade memory for fewer lazy
        rebuilds under heavy churn.
    history:
        When True (default), :meth:`apply` / :meth:`assign` /
        :meth:`unassign` push undo records so :meth:`undo` can roll the
        state back. Long-running consumers (the online manager) disable
        it to bound memory.
    backend:
        Kernel backend for the hot loops: ``"auto"`` (default; numba
        when importable, else the pure-numpy twin), ``"numba"``
        (required — raises :class:`~repro.errors.KernelBackendError`
        when numba is absent) or ``"numpy"``. Within one matrix dtype
        the backends keep the engine state bit-identical; see
        :mod:`repro.kernels` and ``docs/performance.md``.
    """

    def __init__(
        self,
        problem: ClientAssignmentProblem,
        server_of: Optional[IndexArrayLike] = None,
        *,
        k: int = DEFAULT_TOP_K,
        history: bool = True,
        backend: str = "auto",
    ) -> None:
        if k < 2:
            raise InvalidParameterError(f"top-k retention must be >= 2, got {k}")
        self._problem = problem
        self._cs = problem.client_server  # (C, S), matrix dtype
        self._ss = problem.server_server  # (S, S), matrix dtype
        self._sc = problem.server_client  # (S, C), matrix dtype
        # The kernels accumulate in float64; the S x S view is tiny, so
        # a float64 shadow costs nothing even for float32 matrices (and
        # is free — no copy — for float64 ones).
        self._ss64 = np.asarray(self._ss, dtype=np.float64)
        self._kernels = resolve_backend(backend)
        self._k = int(k)
        self._history = bool(history)
        n_clients, n_servers = problem.n_clients, problem.n_servers

        if server_of is None:
            arr = np.full(n_clients, _UNASSIGNED, dtype=np.int64)
        else:
            arr = np.asarray(server_of, dtype=np.int64).copy()
            if arr.shape != (n_clients,):
                raise InvalidAssignmentError(
                    f"server_of must have length |C|={n_clients}, "
                    f"got shape {arr.shape}"
                )
            if arr.size and (arr.min() < _UNASSIGNED or arr.max() >= n_servers):
                raise InvalidAssignmentError(
                    f"server_of entries must be -1 or in [0, {n_servers})"
                )
        self._server_of = arr
        assigned = arr >= 0
        self._n_assigned = int(assigned.sum())
        self._loads = np.bincount(arr[assigned], minlength=n_servers).astype(
            np.int64
        )
        # Weighted (coreset super-client) instances keep a second load
        # array holding total weight per server; it feeds only the
        # capacity masking in batch_delta_D. The member-*count* loads
        # above stay authoritative for membership logic (`_l_excluding`,
        # `_detach`), so unweighted instances are entirely unaffected.
        self._weights = problem.client_weights
        self._wloads: Optional[np.ndarray] = (
            None
            if self._weights is None
            else self._kernels.weighted_loads(arr, self._weights, n_servers)
        )

        self._top_out: List[_TopList] = [_TopList(self._k) for _ in range(n_servers)]
        self._top_in: List[_TopList] = [_TopList(self._k) for _ in range(n_servers)]
        self._l_out = np.full(n_servers, -np.inf)
        self._l_in = np.full(n_servers, -np.inf)
        for s in np.flatnonzero(self._loads > 0):
            self._rebuild_server(int(s))

        # Lazily (re)built caches.
        self._d: Optional[float] = None
        self._reductions: Optional[Tuple[np.ndarray, ...]] = None
        self._ctx: Optional[_MoveContext] = None
        self._undo_stack: List[tuple] = []
        self._n_evaluations = 0

        # Telemetry: instruments are fetched once per engine so the hot
        # paths pay a single attribute-add each; fetched at construction
        # time (not import time) so a swapped registry is honored.
        metrics = registry()
        metrics.counter("engine.builds").inc()
        self._m_apply = metrics.counter("engine.apply")
        self._m_undo = metrics.counter("engine.undo")
        self._m_assign_many = metrics.counter("engine.assign_many")
        self._m_unassign = metrics.counter("engine.unassign")
        self._m_batch_sizes = metrics.histogram("engine.candidate_batch_size")

    # ------------------------------------------------------------------
    # Read-only state
    # ------------------------------------------------------------------
    @property
    def problem(self) -> ClientAssignmentProblem:
        """The problem instance."""
        return self._problem

    @property
    def backend(self) -> str:
        """The resolved kernel backend name (``"numpy"`` or ``"numba"``)."""
        return self._kernels.name

    @property
    def server_of(self) -> np.ndarray:
        """Current mapping (length ``|C|``, ``-1`` = unassigned). Copy."""
        return self._server_of.copy()

    @property
    def loads(self) -> np.ndarray:
        """Per-server assigned-client counts. Copy."""
        return self._loads.copy()

    @property
    def weighted_loads(self) -> np.ndarray:
        """Per-server total assigned client weight. Copy.

        Equals :attr:`loads` for unweighted problems.
        """
        if self._wloads is None:
            return self._loads.copy()
        return self._wloads.copy()

    @property
    def n_assigned(self) -> int:
        """Number of currently assigned clients."""
        return self._n_assigned

    @property
    def n_evaluations(self) -> int:
        """Candidate (client, server) evaluations served by this engine."""
        return self._n_evaluations

    def l_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(l_out, l_in)`` per-server farthest-client legs (copies).

        Unused servers hold ``-inf``, matching
        :func:`repro.core.metrics._directional_farthest`.
        """
        return self._l_out.copy(), self._l_in.copy()

    def assignment(self, *, validate: bool = True) -> Assignment:
        """Freeze the current (complete) state into an Assignment.

        Raises :class:`~repro.errors.InvalidAssignmentError` when any
        client is still unassigned.
        """
        if self._n_assigned != self._problem.n_clients:
            raise InvalidAssignmentError(
                f"{self._problem.n_clients - self._n_assigned} client(s) "
                f"still unassigned"
            )
        return Assignment(self._problem, self._server_of, validate=validate)

    # ------------------------------------------------------------------
    # Top-k list maintenance
    # ------------------------------------------------------------------
    def _members(self, server: int) -> np.ndarray:
        return np.flatnonzero(self._server_of == server)

    def _rebuild_server(self, server: int) -> None:
        members = self._members(server)
        if members.size == 0:
            self._top_out[server] = _TopList(self._k)
            self._top_in[server] = _TopList(self._k)
            self._l_out[server] = -np.inf
            self._l_in[server] = -np.inf
            return
        out = self._cs[members, server]
        inn = self._sc[server, members]
        order, bound = self._kernels.topk_select(out, self._k)
        self._top_out[server].load(out[order], members[order], bound)
        order, bound = self._kernels.topk_select(inn, self._k)
        self._top_in[server].load(inn[order], members[order], bound)
        self._l_out[server] = self._top_out[server].head()
        self._l_in[server] = self._top_in[server].head()

    def _ensure_head(self, server: int) -> None:
        """Rebuild a server whose top-k heads are no longer trustworthy.

        A head below the eviction watermark means some unlisted member
        may exceed every listed one; rebuild from ground truth.
        """
        if self._loads[server] <= 0:
            return
        for top in (self._top_out[server], self._top_in[server]):
            if len(top) == 0 or top.head() < top.bound:
                self._rebuild_server(server)
                return

    def _l_excluding(self, server: int, client: int) -> Tuple[float, float]:
        """``(l_out, l_in)`` of ``server`` with ``client`` removed."""
        if self._loads[server] <= 1:
            # client is (at most) the only member.
            return -np.inf, -np.inf
        self._ensure_head(server)
        values = []
        for top, dists in (
            (self._top_out[server], self._cs[:, server]),
            (self._top_in[server], self._sc[server, :]),
        ):
            if top.clients[0] != client:
                values.append(top.head())
            elif len(top) >= 2 and top.second() >= top.bound:
                values.append(top.second())
            else:
                # The list held only the departing maximum: scan the
                # remaining members (rare; amortized by the k retention).
                members = self._members(server)
                members = members[members != client]
                values.append(float(dists[members].max()))
        return values[0], values[1]

    # ------------------------------------------------------------------
    # Cached server-level reductions
    # ------------------------------------------------------------------
    def _server_reduction_cache(self) -> Tuple[np.ndarray, ...]:
        """Top-2 contributions of ``best_in`` / ``best_out`` per server.

        ``best_in[s'] = max_s d(s', s) + l_in[s]`` (the best completion
        of an outgoing path arriving at ``s'``'s candidate client) and
        ``best_out[s'] = max_s l_out[s] + d(s, s')``; retaining the top-2
        terms with their argmax lets a delta query exclude one server's
        contribution in O(1) per row.
        """
        if self._reductions is None:
            n_servers = self._problem.n_servers
            if self._n_assigned == 0:
                neg = np.full(n_servers, -np.inf)
                none = np.full(n_servers, -1, dtype=np.int64)
                self._reductions = (neg, neg, none, neg, neg, none)
                return self._reductions
            self._reductions = self._kernels.reduction_top2(
                self._ss64, self._l_in, self._l_out
            )
        return self._reductions

    def server_reductions(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(best_in, best_out)`` completions over the full assignment.

        ``best_in[s']`` is the longest continuation ``d(s', s) + l_in(s)``
        of a path leaving a client at ``s'``; ``best_out[s']`` the longest
        prefix ``l_out(s) + d(s, s')`` of a path arriving at ``s'``.
        Greedy's ``m`` terms (Fig. 6, line 11) are exactly these. Copies.
        """
        cache = self._server_reduction_cache()
        return cache[0].copy(), cache[3].copy()

    # ------------------------------------------------------------------
    # Objective queries
    # ------------------------------------------------------------------
    def d(self) -> float:
        """Current maximum interaction path length (0.0 when empty).

        Served from cache; recomputed in O(|S_used|^2) from the cached
        ``l`` vectors after a committed change, with the same reduction
        (and the same floating point evaluation order) as
        :func:`repro.core.metrics.max_interaction_path_length`.
        """
        if self._n_assigned == 0:
            return 0.0
        if self._d is None:
            self._d = float(
                self._kernels.objective_refresh(
                    self._l_out, self._l_in, self._ss64
                )
            )
        return self._d

    def _context(self, client: int) -> _MoveContext:
        """The per-client quantities shared by every destination."""
        ctx = self._ctx
        if ctx is not None and ctx.client == client:
            return ctx
        home = int(self._server_of[client])
        reductions = self._server_reduction_cache()
        if home >= 0:
            l_out_home, l_in_home = self._l_excluding(home, client)
        else:
            l_out_home = l_in_home = -np.inf
        # The client's legs as float64 rows: a no-copy pass-through for
        # float64 matrices, an S-sized (tiny) exact upcast for float32.
        out_leg = np.ascontiguousarray(self._cs[client, :], dtype=np.float64)
        in_leg = np.ascontiguousarray(self._sc[:, client], dtype=np.float64)
        # Fused kernel: home-server exclusion via the top-2 reductions
        # (O(1) per row), d_rest, and the candidate path length through
        # the client at each destination — its outgoing leg + the best
        # continuation, the best prefix + its incoming leg, and its own
        # round trip (the self-pair).
        paths, d_rest = self._kernels.move_context(
            self._ss64,
            self._l_out,
            self._l_in,
            *reductions,
            out_leg,
            in_leg,
            home,
            l_out_home,
            l_in_home,
            self._n_assigned > 0,
        )
        ctx = _MoveContext(
            client, home, l_out_home, l_in_home, float(d_rest), paths
        )
        self._ctx = ctx
        return ctx

    def candidate_paths(self, client: int) -> Tuple[np.ndarray, float]:
        """``(L, d_rest)`` for relocating ``client`` anywhere.

        ``L[s']`` is the longest interaction path *through the client* if
        it were (re)assigned to ``s'`` — Distributed-Greedy's reply
        ``L(s')`` (§IV-D step 2) — and ``d_rest`` the objective of the
        assignment with the client removed. The post-move objective is
        ``max(d_rest, L[s'])``. O(|S|) on warm caches.
        """
        ctx = self._context(client)
        n = self._problem.n_servers
        self._n_evaluations += n
        record_candidate_evaluations(n)
        self._m_batch_sizes.observe(n)
        return ctx.paths.copy(), ctx.d_rest

    def delta_D(self, client: int, new_server: int) -> float:
        """The objective after moving ``client`` to ``new_server``.

        Exact (up to floating point association) — not a bound. O(|S|)
        on warm caches, O(|S|^2) when a committed change invalidated
        them; scoring several destinations of one client amortizes to
        O(1) each via the shared per-client context.
        """
        ctx = self._context(client)
        self._n_evaluations += 1
        record_candidate_evaluations(1)
        return max(ctx.d_rest, float(ctx.paths[new_server]))

    def batch_delta_D(
        self,
        client: int,
        candidate_servers: Optional[IndexArrayLike] = None,
        *,
        respect_capacities: bool = True,
    ) -> np.ndarray:
        """Post-move objectives for every candidate destination at once.

        Returns ``out[j] = D after moving client to candidate j``
        (``candidate_servers=None`` scores all |S| destinations, in
        server order). With ``respect_capacities`` (default) saturated
        servers of a capacitated problem score ``inf`` — except the
        client's current server, which is always feasible.
        """
        ctx = self._context(client)
        paths = ctx.paths
        if candidate_servers is None:
            cand = None
            scores = np.maximum(paths, ctx.d_rest)
        else:
            cand = np.asarray(candidate_servers, dtype=np.int64)
            scores = np.maximum(paths[cand], ctx.d_rest)
        n = int(scores.size)
        self._n_evaluations += n
        record_candidate_evaluations(n)
        self._m_batch_sizes.observe(n)
        if respect_capacities and self._problem.is_capacitated:
            capacities = self._problem.capacities
            if self._weights is None:
                saturated = self._loads >= capacities
            else:
                # A weight-w client fits where the weighted load plus w
                # stays within capacity (its own home never counts: the
                # mask below forces the home feasible, and w is already
                # included in the home's weighted load anyway).
                saturated = (
                    self._wloads + self._weights[client] > capacities
                )
            if ctx.home >= 0:
                saturated[ctx.home] = False
            mask = saturated if cand is None else saturated[cand]
            scores = np.where(mask, np.inf, scores)
        return scores

    # ------------------------------------------------------------------
    # Commits
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._d = None
        self._reductions = None
        self._ctx = None

    def _push_undo(self, client: int, old_server: int, new_server: int) -> None:
        if not self._history:
            return
        record = (client, old_server, new_server, self._d)
        snapshots = []
        for s in (old_server, new_server):
            if s >= 0:
                snapshots.append(
                    (
                        s,
                        self._top_out[s].snapshot(),
                        self._top_in[s].snapshot(),
                        float(self._l_out[s]),
                        float(self._l_in[s]),
                    )
                )
        self._undo_stack.append((record, snapshots))

    def _detach(self, client: int, server: int) -> None:
        self._top_out[server].discard(client)
        self._top_in[server].discard(client)
        self._loads[server] -= 1
        if self._wloads is not None:
            self._wloads[server] -= self._weights[client]
        if self._loads[server] == 0:
            self._l_out[server] = -np.inf
            self._l_in[server] = -np.inf
        else:
            self._ensure_head(server)
            self._l_out[server] = self._top_out[server].head()
            self._l_in[server] = self._top_in[server].head()

    def _attach(self, client: int, server: int) -> None:
        out = float(self._cs[client, server])
        inn = float(self._sc[server, client])
        self._top_out[server].add(out, client)
        self._top_in[server].add(inn, client)
        self._loads[server] += 1
        if self._wloads is not None:
            self._wloads[server] += self._weights[client]
        self._l_out[server] = max(self._l_out[server], out)
        self._l_in[server] = max(self._l_in[server], inn)

    def apply(self, client: int, new_server: int) -> None:
        """Commit ``client -> new_server`` (assigning if unassigned).

        O(k) list maintenance; the cached objective and reductions are
        invalidated and rebuilt lazily on the next query.
        """
        if not 0 <= new_server < self._problem.n_servers:
            raise InvalidAssignmentError(
                f"server index {new_server} out of range "
                f"[0, {self._problem.n_servers})"
            )
        if not 0 <= client < self._problem.n_clients:
            raise InvalidAssignmentError(
                f"client index {client} out of range "
                f"[0, {self._problem.n_clients})"
            )
        old_server = int(self._server_of[client])
        self._push_undo(client, old_server, new_server)
        if old_server == new_server:
            return  # no-op move; the undo record keeps apply/undo paired
        # Update the mapping *before* detaching: a lazy rebuild inside
        # _detach derives membership from server_of and must not see the
        # departing client.
        self._server_of[client] = new_server
        if old_server >= 0:
            self._detach(client, old_server)
        else:
            self._n_assigned += 1
        self._attach(client, new_server)
        self._m_apply.inc()
        self._touch()

    def assign(self, client: int, server: int) -> None:
        """Alias of :meth:`apply` for initially-unassigned clients."""
        self.apply(client, server)

    def assign_many(self, clients: IndexArrayLike, server: int) -> None:
        """Commit a batch of clients onto one server (one undo record).

        The Longest-First-Batch closure and Greedy's batch selection
        assign whole groups at once; batching the commit keeps the list
        maintenance a single merge instead of ``len(clients)`` inserts.
        """
        batch = np.asarray(clients, dtype=np.int64)
        if batch.size == 0:
            return
        if not 0 <= server < self._problem.n_servers:
            raise InvalidAssignmentError(
                f"server index {server} out of range "
                f"[0, {self._problem.n_servers})"
            )
        homes = self._server_of[batch]
        if np.any(homes >= 0):
            raise InvalidAssignmentError(
                "assign_many only accepts currently-unassigned clients"
            )
        if self._history:
            self._undo_stack.append(
                (
                    ("batch", batch.copy(), server, self._d),
                    [
                        (
                            server,
                            self._top_out[server].snapshot(),
                            self._top_in[server].snapshot(),
                            float(self._l_out[server]),
                            float(self._l_in[server]),
                        )
                    ],
                )
            )
        self._server_of[batch] = server
        self._loads[server] += batch.size
        if self._wloads is not None:
            self._wloads[server] += int(self._weights[batch].sum())
        self._n_assigned += int(batch.size)
        out = self._cs[batch, server]
        inn = self._sc[server, batch]
        # Merge the batch into the retained top-k lists.
        top_out, top_in = self._top_out[server], self._top_in[server]
        if batch.size > self._k:
            keep = np.argpartition(-out, self._k - 1)[: self._k]
            for i in keep:
                top_out.add(float(out[i]), int(batch[i]))
            keep = np.argpartition(-inn, self._k - 1)[: self._k]
            for i in keep:
                top_in.add(float(inn[i]), int(batch[i]))
        else:
            for i in range(batch.size):
                top_out.add(float(out[i]), int(batch[i]))
                top_in.add(float(inn[i]), int(batch[i]))
        self._l_out[server] = max(self._l_out[server], float(out.max()))
        self._l_in[server] = max(self._l_in[server], float(inn.max()))
        self._m_assign_many.inc()
        self._touch()

    def unassign(self, client: int) -> None:
        """Remove ``client`` from the assignment (online ``leave``)."""
        if not 0 <= client < self._problem.n_clients:
            raise InvalidAssignmentError(
                f"client index {client} out of range "
                f"[0, {self._problem.n_clients})"
            )
        server = int(self._server_of[client])
        if server < 0:
            raise InvalidAssignmentError(f"client {client} is not assigned")
        self._push_undo(client, server, _UNASSIGNED)
        # Mapping first, for the same reason as in apply(): rebuilds
        # inside _detach read membership from server_of.
        self._server_of[client] = _UNASSIGNED
        self._detach(client, server)
        self._n_assigned -= 1
        self._m_unassign.inc()
        self._touch()

    def undo(self) -> None:
        """Revert the most recent commit exactly.

        Raises :class:`~repro.errors.InvalidParameterError` when there is
        nothing to undo (or history tracking is disabled).
        """
        if not self._undo_stack:
            raise InvalidParameterError("nothing to undo")
        record, snapshots = self._undo_stack.pop()
        if record[0] == "batch":
            _, batch, server, old_d = record
            self._server_of[batch] = _UNASSIGNED
            self._loads[server] -= batch.size
            if self._wloads is not None:
                self._wloads[server] -= int(self._weights[batch].sum())
            self._n_assigned -= int(batch.size)
        else:
            client, old_server, new_server, old_d = record
            weight = 0 if self._weights is None else int(self._weights[client])
            if new_server >= 0:
                self._loads[new_server] -= 1
                if self._wloads is not None:
                    self._wloads[new_server] -= weight
            else:
                self._n_assigned += 1
            if old_server >= 0:
                self._loads[old_server] += 1
                if self._wloads is not None:
                    self._wloads[old_server] += weight
            else:
                self._n_assigned -= 1
            self._server_of[client] = old_server
        for server, out_state, in_state, l_out, l_in in snapshots:
            self._top_out[server].restore(out_state)
            self._top_in[server].restore(in_state)
            self._l_out[server] = l_out
            self._l_in[server] = l_in
        self._m_undo.inc()
        self._touch()
        self._d = old_d

    # ------------------------------------------------------------------
    def verify(self, *, rtol: float = 1e-9) -> bool:
        """Check the cached state against a from-scratch recomputation."""
        server_of = self._server_of
        assigned = server_of >= 0
        loads = np.bincount(
            server_of[assigned], minlength=self._problem.n_servers
        )
        if not np.array_equal(loads, self._loads):
            return False
        if self._wloads is not None:
            from repro.kernels.numpy_backend import weighted_loads

            expected = weighted_loads(
                server_of, self._weights, self._problem.n_servers
            )
            if not np.array_equal(expected, self._wloads):
                return False
        idx = np.flatnonzero(assigned)
        l_out = np.full(self._problem.n_servers, -np.inf)
        l_in = np.full(self._problem.n_servers, -np.inf)
        if idx.size:
            np.maximum.at(l_out, server_of[idx], self._cs[idx, server_of[idx]])
            np.maximum.at(l_in, server_of[idx], self._sc[server_of[idx], idx])
        if not (
            np.allclose(l_out, self._l_out, rtol=rtol, equal_nan=True)
            and np.allclose(l_in, self._l_in, rtol=rtol, equal_nan=True)
        ):
            return False
        if idx.size == 0:
            return self.d() == 0.0
        used = np.flatnonzero(np.isfinite(l_out))
        ss = self._ss[np.ix_(used, used)]
        exact = float(
            (l_out[used][:, None] + ss + l_in[used][None, :]).max()
        )
        return bool(np.isclose(exact, self.d(), rtol=rtol))

    def __repr__(self) -> str:
        return (
            f"IncrementalObjective({self._n_assigned}/"
            f"{self._problem.n_clients} clients assigned, "
            f"k={self._k}, D={self.d():.3f})"
        )
