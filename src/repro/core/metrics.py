"""Interaction-path metrics (paper §II-A, §II-D and §V).

The central quantity is the **maximum interaction path length**

.. math::

   D = \\max_{c_i, c_j \\in C} \\; d(c_i, s_A(c_i)) + d(s_A(c_i), s_A(c_j))
       + d(s_A(c_j), c_j)

which §II-C proves is the minimum achievable interaction time under the
consistency and fairness requirements. Note the max ranges over *ordered*
pairs including ``c_i = c_j`` (a client interacting with itself through
its server round trip, length ``2 d(c, s_A(c))``) — with a symmetric
matrix the ordered/unordered distinction is immaterial, and the self-pair
is subsumed by ``i = j``.

Computing D naively is O(|C|^2); we use the standard server-level
reduction: with ``l(s)`` the farthest assigned-client distance of server
``s`` (only servers that have clients),

.. math::

   D = \\max_{s_1, s_2 \\; used} \\; l(s_1) + d(s_1, s_2) + l(s_2)

which is O(|C| + |S|^2). For asymmetric matrices the reduction uses the
two directional farthest-client vectors; see
:func:`max_interaction_path_length`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.types import InteractionPath


def interaction_path_length(
    assignment: Assignment, client_a: int, client_b: int
) -> float:
    """Length of the interaction path between two clients (local indices).

    ``d(ca, s(ca)) + d(s(ca), s(cb)) + d(s(cb), cb)``; for
    ``client_a == client_b`` this is the client's server round trip.
    """
    problem = assignment.problem
    sa = assignment.server_of_client(client_a)
    sb = assignment.server_of_client(client_b)
    return float(
        problem.client_server[client_a, sa]
        + problem.server_server[sa, sb]
        + problem.client_server[client_b, sb]
    )


def interaction_path(
    assignment: Assignment, client_a: int, client_b: int
) -> InteractionPath:
    """The interaction path between two clients as a value object.

    Node ids in the returned object are *global* node ids.
    """
    problem = assignment.problem
    sa = assignment.server_of_client(client_a)
    sb = assignment.server_of_client(client_b)
    return InteractionPath(
        client_a=int(problem.clients[client_a]),
        server_a=int(problem.servers[sa]),
        server_b=int(problem.servers[sb]),
        client_b=int(problem.clients[client_b]),
        length=interaction_path_length(assignment, client_a, client_b),
    )


def _directional_farthest(assignment: Assignment) -> Tuple[np.ndarray, np.ndarray]:
    """Per-server farthest client distances, in both directions.

    Returns ``(l_out, l_in)`` where ``l_out[s] = max_c d(c, s)`` over
    clients assigned to ``s`` (client-to-server leg) and
    ``l_in[s] = max_c d(s, c)`` (server-to-client leg). They coincide
    for symmetric matrices. Unused servers hold ``-inf``.
    """
    problem = assignment.problem
    server_of = assignment.server_of
    n_servers = problem.n_servers
    idx = np.arange(problem.n_clients)
    out_dist = problem.client_server[idx, server_of]  # d(c, s_A(c))
    # d(s_A(c), c): the server->client direction view.
    sc = problem.server_client[server_of, idx]
    l_out = np.full(n_servers, -np.inf)
    l_in = np.full(n_servers, -np.inf)
    np.maximum.at(l_out, server_of, out_dist)
    np.maximum.at(l_in, server_of, sc)
    return l_out, l_in


def max_interaction_path_length(assignment: Assignment) -> float:
    """The objective D: maximum interaction path length over all pairs.

    O(|C| + |S|^2) via the server-level reduction. Handles asymmetric
    matrices by pairing the outgoing leg of the issuing client's server
    with the incoming leg of the receiving client's server.
    """
    l_out, l_in = _directional_farthest(assignment)
    used = np.flatnonzero(np.isfinite(l_out))
    ss = assignment.problem.server_server[np.ix_(used, used)]
    # D = max over used (s1, s2) of l_out[s1] + d(s1, s2) + l_in[s2].
    totals = l_out[used][:, None] + ss + l_in[used][None, :]
    return float(totals.max())


def argmax_interaction_path(assignment: Assignment) -> InteractionPath:
    """One interaction path achieving the maximum length D.

    Useful for Distributed-Greedy (which perturbs clients on longest
    paths) and for explanatory output. O(|C| + |S|^2).
    """
    problem = assignment.problem
    l_out, l_in = _directional_farthest(assignment)
    used = np.flatnonzero(np.isfinite(l_out))
    ss = problem.server_server[np.ix_(used, used)]
    totals = l_out[used][:, None] + ss + l_in[used][None, :]
    flat = int(np.argmax(totals))
    i, j = divmod(flat, used.size)
    s1, s2 = int(used[i]), int(used[j])
    # Recover witnesses: the farthest clients of s1 (outgoing) and s2
    # (incoming).
    members1 = np.flatnonzero(assignment.server_of == s1)
    members2 = np.flatnonzero(assignment.server_of == s2)
    d_out = problem.client_server[members1, s1]
    ca = int(members1[int(np.argmax(d_out))])
    d_in = problem.server_client[s2, members2]
    cb = int(members2[int(np.argmax(d_in))])
    return interaction_path(assignment, ca, cb)


def clients_on_longest_paths(
    assignment: Assignment, *, tol: float = 1e-9
) -> np.ndarray:
    """Local indices of all clients involved in some longest path.

    A client ``c`` is involved when there exists another endpoint ``c'``
    with path length ``>= D - tol`` in either direction. O(|C| |S|) using
    per-server reductions: the best completion of a path starting (or
    ending) at ``c`` is precomputed per server.
    """
    problem = assignment.problem
    d_max = max_interaction_path_length(assignment)
    l_out, l_in = _directional_farthest(assignment)
    server_of = assignment.server_of
    idx = np.arange(problem.n_clients)
    d_cs = problem.client_server[idx, server_of]  # d(c, s_A(c))
    d_sc = problem.server_client[server_of, idx]

    ss = problem.server_server
    finite_out = np.where(np.isfinite(l_out), l_out, -np.inf)
    finite_in = np.where(np.isfinite(l_in), l_in, -np.inf)
    # best_to[s] = max_{s2 used} d(s, s2) + l_in[s2]
    best_to = (ss + finite_in[None, :]).max(axis=1)
    # best_from[s] = max_{s1 used} l_out[s1] + d(s1, s)
    best_from = (finite_out[:, None] + ss).max(axis=0)

    as_issuer = d_cs + best_to[server_of]
    as_receiver = best_from[server_of] + d_sc
    involved = (as_issuer >= d_max - tol) | (as_receiver >= d_max - tol)
    return np.flatnonzero(involved)


def average_interaction_path_length(assignment: Assignment) -> float:
    """Mean interaction path length over all ordered client pairs.

    Secondary diagnostic (the paper's objective is the max). O(|S|^2 +
    |C|) by aggregating per-server sums.
    """
    problem = assignment.problem
    server_of = assignment.server_of
    n = problem.n_clients
    idx = np.arange(n)
    d_cs = problem.client_server[idx, server_of]
    d_sc = problem.server_client[server_of, idx]
    counts = np.bincount(server_of, minlength=problem.n_servers).astype(np.float64)
    sum_out = np.bincount(server_of, weights=d_cs, minlength=problem.n_servers)
    sum_in = np.bincount(server_of, weights=d_sc, minlength=problem.n_servers)
    ss = problem.server_server
    # Sum over ordered pairs (i, j):
    #   d(ci, s_i) appears (n) times for each i (all j) -> n * sum_out
    #   d(s_j, cj) appears (n) times for each j -> n * sum_in
    #   d(s_i, s_j) appears count[s_i] * count[s_j] times.
    total = n * float(sum_out.sum()) + n * float(sum_in.sum())
    total += float(counts @ ss @ counts)
    return total / (n * n)


def normalized_interactivity(assignment: Assignment, lower_bound: float) -> float:
    """D divided by the super-optimal lower bound (paper §V).

    Values close to 1 mean near-optimal interactivity; the paper's
    headline claim is that the greedy algorithms stay within ~10% of the
    bound (ratio <= 1.1) in typical settings.
    """
    if not lower_bound > 0:
        raise ValueError(f"lower bound must be positive, got {lower_bound}")
    return max_interaction_path_length(assignment) / lower_bound


def max_interaction_path_length_bruteforce(assignment: Assignment) -> float:
    """O(|C|^2) reference implementation of D (tests only)."""
    problem = assignment.problem
    server_of = assignment.server_of
    idx = np.arange(problem.n_clients)
    d_cs = problem.client_server[idx, server_of]
    d_sc = problem.server_client[server_of, idx]
    ss = problem.server_server[np.ix_(server_of, server_of)]
    totals = d_cs[:, None] + ss + d_sc[None, :]
    return float(totals.max())


def per_client_interactivity(assignment: Assignment) -> np.ndarray:
    """Each client's worst interaction path length (length ``|C|``).

    ``out[c] = max over partners c' (either direction) of the
    interaction path length`` — the per-client experience behind the
    global D (``out.max() == D``). O(|C| |S| + |S|^2) via the same
    per-server reductions as :func:`clients_on_longest_paths`. Useful
    for identifying which clients pay for a bad assignment and for
    per-client SLA reporting.
    """
    problem = assignment.problem
    l_out, l_in = _directional_farthest(assignment)
    server_of = assignment.server_of
    idx = np.arange(problem.n_clients)
    d_cs = problem.client_server[idx, server_of]
    d_sc = problem.server_client[server_of, idx]
    ss = problem.server_server
    finite_out = np.where(np.isfinite(l_out), l_out, -np.inf)
    finite_in = np.where(np.isfinite(l_in), l_in, -np.inf)
    best_to = (ss + finite_in[None, :]).max(axis=1)
    best_from = (finite_out[:, None] + ss).max(axis=0)
    as_issuer = d_cs + best_to[server_of]
    as_receiver = best_from[server_of] + d_sc
    return np.maximum(as_issuer, as_receiver)
