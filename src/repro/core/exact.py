"""Exact solvers for small instances: brute force and branch-and-bound.

The client assignment problem is NP-complete (Theorem 1), so exact
solving is exponential in general; these solvers exist to calibrate the
heuristics ("near optimal" claims) on instances of up to ~a dozen
clients, and as ground truth in tests.

:func:`solve_bruteforce` enumerates all ``|S|^|C|`` assignments.

:func:`solve_branch_and_bound` assigns clients one at a time
(largest-minimum-distance clients first), maintaining:

- the incremental maximum interaction path length of the partial
  assignment (which only grows as clients are added — pruning is
  admissible);
- per-branch lower bounds: a client's best-case contribution
  ``2 * min_s d(c, s)`` and the pairwise super-optimal bound between
  unassigned clients and assigned ones.

Both return an :class:`ExactResult` carrying the optimal assignment, its
objective value, and search statistics. Capacitated problems are
supported (branches exceeding capacity are cut).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.assignment import Assignment
from repro.core.metrics import max_interaction_path_length
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidProblemError


@dataclass(frozen=True)
class ExactResult:
    """Outcome of an exact search."""

    assignment: Assignment
    #: The optimal maximum interaction path length.
    objective: float
    #: Number of complete assignments evaluated (brute force) or search
    #: nodes expanded (branch and bound).
    nodes_explored: int


def solve_bruteforce(
    problem: ClientAssignmentProblem, *, max_assignments: int = 5_000_000
) -> ExactResult:
    """Enumerate every assignment; return the best.

    Raises :class:`~repro.errors.InvalidProblemError` when the search
    space exceeds ``max_assignments``.
    """
    n_clients = problem.n_clients
    n_servers = problem.n_servers
    space = n_servers**n_clients
    if space > max_assignments:
        raise InvalidProblemError(
            f"brute force space {n_servers}^{n_clients} = {space} exceeds "
            f"limit {max_assignments}; use solve_branch_and_bound"
        )
    capacities = problem.capacities
    best_obj = np.inf
    best: Optional[np.ndarray] = None
    explored = 0
    for combo in itertools.product(range(n_servers), repeat=n_clients):
        arr = np.asarray(combo, dtype=np.int64)
        if capacities is not None:
            loads = np.bincount(arr, minlength=n_servers)
            if np.any(loads > capacities):
                continue
        explored += 1
        candidate = Assignment(problem, arr, validate=False)
        obj = max_interaction_path_length(candidate)
        if obj < best_obj:
            best_obj = obj
            best = arr
    if best is None:
        raise InvalidProblemError("no feasible assignment exists (capacities)")
    return ExactResult(Assignment(problem, best), best_obj, explored)


def solve_branch_and_bound(
    problem: ClientAssignmentProblem,
    *,
    initial_upper_bound: Optional[float] = None,
    max_nodes: int = 50_000_000,
) -> ExactResult:
    """Depth-first branch and bound over client-by-client assignment.

    Parameters
    ----------
    initial_upper_bound:
        An incumbent objective (e.g. from a heuristic) to prune against
        from the start. The search still returns an actual assignment
        achieving the optimum (which may equal the incumbent only if a
        matching assignment is found; pass a heuristic's D *plus* its
        assignment cost when warm-starting, or leave ``None``).
    max_nodes:
        Safety valve; raises when exceeded.
    """
    cs = problem.client_server
    ss = problem.server_server
    # Server->client leg (asymmetric-safe).
    sc = problem.server_client
    n_clients = problem.n_clients
    n_servers = problem.n_servers
    capacities = problem.capacities

    # Order clients by decreasing distance to their nearest server: the
    # most constrained clients first tightens bounds early.
    order = np.argsort(-cs.min(axis=1), kind="stable")

    # Per-client admissible bound: any complete assignment has
    # D >= 2 * min_s max(d(c, s), d(s, c)) ... actually D includes the
    # round trip d(c, s) + d(s, c); use the per-client best round trip.
    round_trip = cs + sc.T  # (C, S): d(c, s) + d(s, c)
    client_floor = round_trip.min(axis=1)
    global_floor = float(client_floor.max()) if n_clients else 0.0

    best_obj = np.inf if initial_upper_bound is None else float(initial_upper_bound)
    best_arr: Optional[np.ndarray] = None
    nodes = 0

    server_of = np.full(n_clients, -1, dtype=np.int64)
    loads = np.zeros(n_servers, dtype=np.int64)
    # Incremental per-server farthest distances for assigned clients.
    l_out = np.full(n_servers, -np.inf)
    l_in = np.full(n_servers, -np.inf)

    def recurse(depth: int, current_d: float) -> None:
        nonlocal best_obj, best_arr, nodes
        nodes += 1
        if nodes > max_nodes:
            raise InvalidProblemError(
                f"branch and bound exceeded max_nodes={max_nodes}"
            )
        if current_d >= best_obj:
            return
        if depth == n_clients:
            best_obj = current_d
            best_arr = server_of.copy()
            return
        c = int(order[depth])
        # Candidate servers sorted by the client's round trip — cheap
        # moves first gives better incumbents sooner.
        candidates = np.argsort(round_trip[c], kind="stable")
        for s in candidates:
            s = int(s)
            if capacities is not None and loads[s] >= capacities[s]:
                continue
            # New objective if c joins s: paths between c and every
            # currently used server's farthest clients, plus c's round
            # trip through s, plus the unchanged current_d.
            new_d = current_d
            rt = cs[c, s] + sc[s, c]
            if rt > new_d:
                new_d = rt
            used = np.flatnonzero(np.isfinite(l_out))
            if used.size:
                outgoing = cs[c, s] + ss[s, used] + l_in[used]
                incoming = l_out[used] + ss[used, s] + sc[s, c]
                new_d = max(new_d, float(outgoing.max()), float(incoming.max()))
            # Admissible future bound: every unassigned client's best
            # round trip is a floor on the final D.
            future = client_floor[order[depth + 1 :]]
            bound = max(new_d, float(future.max()) if future.size else 0.0)
            if bound >= best_obj:
                continue
            server_of[c] = s
            loads[s] += 1
            old_out, old_in = l_out[s], l_in[s]
            l_out[s] = max(l_out[s], cs[c, s])
            l_in[s] = max(l_in[s], sc[s, c])
            recurse(depth + 1, new_d)
            l_out[s], l_in[s] = old_out, old_in
            loads[s] -= 1
            server_of[c] = -1

    recurse(0, global_floor)
    if best_arr is None:
        if initial_upper_bound is not None:
            raise InvalidProblemError(
                "no assignment beats the initial upper bound; rerun with "
                "initial_upper_bound=None to obtain the optimum"
            )
        raise InvalidProblemError("no feasible assignment exists (capacities)")
    return ExactResult(Assignment(problem, best_arr), best_obj, nodes)


def optimal_objective(problem: ClientAssignmentProblem) -> float:
    """Convenience: the optimal D by branch and bound."""
    return solve_branch_and_bound(problem).objective
