"""The super-optimal lower bound on D (paper §V).

For any assignment, the interaction path between clients ``c, c'`` is at
least ``min_{s, s' in S} d(c, s) + d(s, s') + d(s', c')`` — as if each
client could pick a *different* best server for every interaction.
Hence

.. math::

   LB = \\max_{c, c' \\in C} \\; \\min_{s, s' \\in S}
        \\{ d(c, s) + d(s, s') + d(s', c') \\}

is a lower bound on the optimum (generally unachievable — a
super-optimum). The paper normalizes every algorithm's D by this bound
("normalized interactivity").

Complexity
----------
The naive form is O(|C|^2 |S|^2). We factor it into two min-plus
products:

1. ``A[c, s'] = min_s (d(c, s) + d(s, s'))`` — O(|C| |S|^2), vectorized.
2. ``LB = max_{c,c'} min_{s'} (A[c, s'] + d(s', c'))`` — O(|C|^2 |S|),
   blocked over clients to bound memory.

For the paper's full scale (|C| = 1796, |S| = 100) this runs in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import ClientAssignmentProblem


def interaction_lower_bound(
    problem: ClientAssignmentProblem, *, block_size: int = 256
) -> float:
    """The super-optimal lower bound LB for a problem instance.

    ``block_size`` controls the client blocking of the second min-plus
    product (memory is O(block_size * |C|)).
    """
    cs = problem.client_server  # d(c, s), shape (C, S)
    ss = problem.server_server  # d(s, s'), shape (S, S)
    # Server-to-client direction for the receiving leg.
    sc = problem.server_client  # (S, C)

    # A[c, s'] = min over s of d(c, s) + d(s, s').
    # cs[:, :, None] + ss[None, :, :] would be (C, S, S); block over
    # clients to keep memory modest.
    n_clients = problem.n_clients
    n_servers = problem.n_servers
    a = np.empty((n_clients, n_servers))
    for start in range(0, n_clients, block_size):
        stop = min(start + block_size, n_clients)
        block = cs[start:stop, :, None] + ss[None, :, :]
        a[start:stop] = block.min(axis=1)

    # LB = max over (c, c') of min over s' of A[c, s'] + d(s', c').
    # The temporary here is (block, S, C); cap it at ~2e7 elements so the
    # full-scale instance stays within a few hundred MB.
    pair_block = max(1, min(block_size, int(2e7 / max(n_servers * n_clients, 1))))
    best = -np.inf
    for start in range(0, n_clients, pair_block):
        stop = min(start + pair_block, n_clients)
        # (block, S, 1) + (1, S, C) -> per client-pair min over s'.
        totals = a[start:stop, :, None] + sc[None, :, :]
        pair_min = totals.min(axis=1)  # (block, C)
        block_max = float(pair_min.max())
        if block_max > best:
            best = block_max
    return best


def interaction_lower_bound_bruteforce(problem: ClientAssignmentProblem) -> float:
    """O(|C|^2 |S|^2) reference implementation (tests only)."""
    cs = problem.client_server
    ss = problem.server_server
    sc = problem.server_client
    best = -np.inf
    for ci in range(problem.n_clients):
        for cj in range(problem.n_clients):
            # min over (s, s') of d(ci, s) + d(s, s') + d(s', cj)
            totals = cs[ci][:, None] + ss + sc[:, cj][None, :]
            pair = float(totals.min())
            if pair > best:
                best = pair
    return best


def single_pair_lower_bound(
    problem: ClientAssignmentProblem, client_a: int, client_b: int
) -> float:
    """``min_{s,s'} d(c_a, s) + d(s, s') + d(s', c_b)`` for one pair."""
    cs = problem.client_server
    ss = problem.server_server
    sc = problem.server_client
    totals = cs[client_a][:, None] + ss + sc[:, client_b][None, :]
    return float(totals.min())
