"""Client-to-server assignments (the decision variable ``s_A``).

An :class:`Assignment` maps each client (local index) to a server (local
index) for a given :class:`~repro.core.problem.ClientAssignmentProblem`.
It validates against the problem (range checks, capacity checks) and
provides the derived quantities the paper's analysis is built on —
per-server farthest-client distances ``l(s)``, server load counts, and
the set of servers actually used.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import InvalidAssignmentError
from repro.core.problem import ClientAssignmentProblem
from repro.types import IndexArrayLike


class Assignment:
    """An immutable mapping from clients to servers (local indices).

    Parameters
    ----------
    problem:
        The problem instance this assignment answers.
    server_of:
        Length-``|C|`` integer array; ``server_of[i]`` is the local index
        of the server client ``i`` is assigned to.
    validate:
        Check ranges and (when the problem is capacitated) capacities.
    """

    __slots__ = ("_problem", "_server_of")

    def __init__(
        self,
        problem: ClientAssignmentProblem,
        server_of: IndexArrayLike,
        *,
        validate: bool = True,
    ) -> None:
        arr = np.asarray(server_of, dtype=np.int64).copy()
        if validate:
            if arr.shape != (problem.n_clients,):
                raise InvalidAssignmentError(
                    f"assignment must map all {problem.n_clients} clients, "
                    f"got shape {arr.shape}"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= problem.n_servers):
                raise InvalidAssignmentError(
                    f"assignment refers to servers outside [0, {problem.n_servers})"
                )
            if problem.is_capacitated:
                loads = self._capacity_loads(problem, arr)
                over = np.flatnonzero(loads > problem.capacities)
                if over.size:
                    details = ", ".join(
                        f"server {int(s)}: load {int(loads[s])} > capacity "
                        f"{int(problem.capacities[s])}"
                        for s in over[:5]
                    )
                    raise InvalidAssignmentError(
                        f"capacity violated at {over.size} server(s): {details}"
                    )
        arr.setflags(write=False)
        object.__setattr__(self, "_problem", problem)
        object.__setattr__(self, "_server_of", arr)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Assignment is immutable")

    @staticmethod
    def _capacity_loads(
        problem: ClientAssignmentProblem, arr: np.ndarray
    ) -> np.ndarray:
        """The load each server's capacity is charged for.

        Client counts on plain instances; total client weight on
        weighted (coreset super-client) instances.
        """
        if problem.client_weights is None:
            return np.bincount(arr, minlength=problem.n_servers)
        return np.bincount(
            arr,
            weights=problem.client_weights,
            minlength=problem.n_servers,
        ).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def problem(self) -> ClientAssignmentProblem:
        """The problem instance."""
        return self._problem

    @property
    def server_of(self) -> np.ndarray:
        """Length-``|C|`` array of local server indices (read-only)."""
        return self._server_of

    def server_of_client(self, client: int) -> int:
        """Local server index for one client (local index)."""
        return int(self._server_of[client])

    def global_server_of(self) -> np.ndarray:
        """Length-``|C|`` array of *global node ids* of assigned servers."""
        return self._problem.servers[self._server_of]

    def as_mapping(self) -> Dict[int, int]:
        """``{global client node id: global server node id}``."""
        servers = self.global_server_of()
        return {
            int(c): int(s) for c, s in zip(self._problem.clients, servers)
        }

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Number of clients assigned to each server (length ``|S|``)."""
        return np.bincount(self._server_of, minlength=self._problem.n_servers)

    def used_servers(self) -> np.ndarray:
        """Local indices of servers with at least one client."""
        return np.flatnonzero(self.loads() > 0)

    def farthest_client_distance(self) -> np.ndarray:
        """Per-server ``l(s) = max_{c: s_A(c)=s} d(c, s)``.

        Servers with no clients get ``-inf`` so they never dominate a
        max; this matches how ``l(s)`` enters the paper's D computation
        ``D = max_{s1, s2 used} l(s1) + d(s1, s2) + l(s2)``.
        """
        cs = self._problem.client_server
        n_servers = self._problem.n_servers
        dists = cs[np.arange(self._problem.n_clients), self._server_of]
        out = np.full(n_servers, -np.inf)
        np.maximum.at(out, self._server_of, dists)
        return out

    def client_distances(self) -> np.ndarray:
        """Per-client distance to its assigned server (length ``|C|``)."""
        cs = self._problem.client_server
        return cs[np.arange(self._problem.n_clients), self._server_of]

    def weighted_loads(self) -> np.ndarray:
        """Total client weight assigned to each server (length ``|S|``).

        Equals :meth:`loads` on unweighted problems.
        """
        return self._capacity_loads(self._problem, self._server_of)

    def respects_capacities(self) -> bool:
        """Whether loads are within the problem's capacities (vacuously
        true for uncapacitated problems)."""
        if not self._problem.is_capacitated:
            return True
        return bool(
            np.all(
                self._capacity_loads(self._problem, self._server_of)
                <= self._problem.capacities
            )
        )

    # ------------------------------------------------------------------
    def replace(self, client: int, server: int) -> "Assignment":
        """A copy with one client moved to a different server."""
        arr = self._server_of.copy()
        arr[client] = server
        return Assignment(self._problem, arr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._problem is other._problem and bool(
            np.array_equal(self._server_of, other._server_of)
        )

    def __hash__(self) -> int:
        return hash((id(self._problem), self._server_of.tobytes()))

    def __repr__(self) -> str:
        used = self.used_servers().size
        return (
            f"Assignment({self._problem.n_clients} clients over "
            f"{used}/{self._problem.n_servers} servers)"
        )
