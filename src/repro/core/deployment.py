"""Deployable configuration: assignment + clock offsets as JSON.

Solving the client assignment problem produces two artifacts a DIA
deployment actually consumes:

1. the **client-to-server mapping** (which server each client connects
   to), and
2. the **per-server simulation clock offsets** and the lag δ (how far
   ahead each server must run so every interaction lands after exactly
   δ, §II-C).

:class:`DeploymentPlan` bundles both with enough metadata to validate
against the network it was computed for, and serializes to plain JSON.
``dia-cap solve --save-deployment plan.json`` writes one from the CLI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.core.assignment import Assignment
from repro.core.metrics import max_interaction_path_length
from repro.core.offsets import OffsetSchedule
from repro.core.problem import ClientAssignmentProblem
from repro.errors import DatasetError, InvalidAssignmentError
from repro.net.latency import LatencyMatrix

PathLike = Union[str, os.PathLike]

#: Bump on incompatible schema changes.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DeploymentPlan:
    """The full deployable output of one solve.

    All node identifiers are *global* node ids of the latency matrix the
    plan was computed for.
    """

    #: Constant execution lag δ (ms); the interaction time every client
    #: pair experiences.
    delta: float
    #: Global server node -> simulation-clock offset (ms ahead of the
    #: shared client clock).
    server_offsets: Dict[int, float]
    #: Global client node -> global server node.
    client_assignments: Dict[int, int]
    #: Number of nodes in the matrix the plan was computed against
    #: (sanity check on load).
    n_nodes: int

    @classmethod
    def from_schedule(cls, schedule: OffsetSchedule) -> "DeploymentPlan":
        """Build a plan from a solved assignment's offset schedule."""
        assignment = schedule.assignment
        problem = assignment.problem
        return cls(
            delta=schedule.delta,
            server_offsets={
                int(node): float(offset)
                for node, offset in zip(problem.servers, schedule.server_offsets)
            },
            client_assignments=assignment.as_mapping(),
            n_nodes=problem.matrix.n_nodes,
        )

    @classmethod
    def from_assignment(cls, assignment: Assignment) -> "DeploymentPlan":
        """Build a minimal-lag (δ = D) plan from an assignment."""
        return cls.from_schedule(OffsetSchedule(assignment))

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "deployment-plan",
            "delta_ms": self.delta,
            "n_nodes": self.n_nodes,
            "server_offsets_ms": {
                str(k): v for k, v in sorted(self.server_offsets.items())
            },
            "client_assignments": {
                str(k): v for k, v in sorted(self.client_assignments.items())
            },
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "DeploymentPlan":
        """Parse the JSON form (raises ``DatasetError`` on bad input)."""
        if not isinstance(data, dict):
            raise DatasetError("deployment plan must be a JSON object")
        if data.get("schema_version") != SCHEMA_VERSION:
            raise DatasetError(
                f"unsupported deployment schema version "
                f"{data.get('schema_version')!r}"
            )
        if data.get("kind") != "deployment-plan":
            raise DatasetError(f"not a deployment plan: kind={data.get('kind')!r}")
        try:
            return cls(
                delta=float(data["delta_ms"]),
                n_nodes=int(data["n_nodes"]),
                server_offsets={
                    int(k): float(v)
                    for k, v in data["server_offsets_ms"].items()
                },
                client_assignments={
                    int(k): int(v)
                    for k, v in data["client_assignments"].items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed deployment plan: {exc}") from exc

    def save(self, path: PathLike) -> None:
        """Write the plan as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_jsonable(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: PathLike) -> "DeploymentPlan":
        """Read a plan written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_jsonable(data)

    # ------------------------------------------------------------------
    def to_assignment(self, matrix: LatencyMatrix) -> Assignment:
        """Rebuild the Assignment against the original matrix.

        Validates that the plan's topology fits the matrix and that
        every client maps to a known server.
        """
        if matrix.n_nodes != self.n_nodes:
            raise InvalidAssignmentError(
                f"plan was computed for {self.n_nodes} nodes; matrix has "
                f"{matrix.n_nodes}"
            )
        servers = np.array(sorted(self.server_offsets), dtype=np.int64)
        clients = np.array(sorted(self.client_assignments), dtype=np.int64)
        server_index = {int(s): i for i, s in enumerate(servers)}
        try:
            server_of = np.array(
                [
                    server_index[self.client_assignments[int(c)]]
                    for c in clients
                ],
                dtype=np.int64,
            )
        except KeyError as exc:
            raise InvalidAssignmentError(
                f"plan assigns a client to unknown server {exc}"
            ) from exc
        problem = ClientAssignmentProblem(matrix, servers, clients=clients)
        return Assignment(problem, server_of)

    def validate_against(self, matrix: LatencyMatrix) -> bool:
        """Whether δ is still feasible on (possibly updated) latencies.

        Returns ``True`` when the plan's lag is at least the current
        minimum achievable interaction time D of its assignment — i.e.
        the deployment still meets consistency and fairness if latencies
        changed since the plan was computed.
        """
        assignment = self.to_assignment(matrix)
        return self.delta >= max_interaction_path_length(assignment) - 1e-9
