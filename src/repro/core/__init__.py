"""Core of the reproduction: problem, assignment, metrics, analysis.

This package implements the paper's primary contribution:

- :class:`~repro.core.problem.ClientAssignmentProblem` /
  :class:`~repro.core.assignment.Assignment` — Definition 1's instance
  and decision variable;
- :mod:`repro.core.metrics` — interaction path lengths and the objective
  D (§II-A, §II-D);
- :mod:`repro.core.incremental` — incremental maintenance of D under
  single-client moves, the candidate-evaluation hot path shared by every
  heuristic;
- :mod:`repro.core.results` — the unified
  :class:`~repro.core.results.AssignmentResult` record returned by
  :func:`repro.algorithms.base.run_algorithm`;
- :mod:`repro.core.offsets` — the simulation-time offset schedule
  achieving δ = D (§II-C);
- :mod:`repro.core.lower_bound` — the super-optimal lower bound used for
  normalization (§V);
- :mod:`repro.core.npc` — Theorem 1's set-cover reduction (§III);
- :mod:`repro.core.exact` — brute force / branch-and-bound optima for
  calibrating the heuristics.
"""

from repro.core.assignment import Assignment
from repro.core.deployment import DeploymentPlan
from repro.core.exact import ExactResult, solve_branch_and_bound, solve_bruteforce
from repro.core.incremental import (
    DEFAULT_TOP_K,
    EvaluationCounter,
    IncrementalObjective,
    count_evaluations,
    record_candidate_evaluations,
)
from repro.core.lower_bound import (
    interaction_lower_bound,
    interaction_lower_bound_bruteforce,
    single_pair_lower_bound,
)
from repro.core.metrics import (
    argmax_interaction_path,
    average_interaction_path_length,
    clients_on_longest_paths,
    interaction_path,
    interaction_path_length,
    max_interaction_path_length,
    max_interaction_path_length_bruteforce,
    normalized_interactivity,
    per_client_interactivity,
)
from repro.core.npc import (
    REDUCTION_BOUND,
    ReductionLayout,
    SetCoverInstance,
    assignment_from_cover,
    cover_from_assignment,
    reduce_set_cover_to_cap,
    solve_gadget_bruteforce,
    verify_reduction_roundtrip,
)
from repro.core.offsets import ConstraintReport, OffsetSchedule
from repro.core.problem import ClientAssignmentProblem
from repro.core.results import AssignmentResult

__all__ = [
    "ClientAssignmentProblem",
    "Assignment",
    "AssignmentResult",
    "IncrementalObjective",
    "EvaluationCounter",
    "count_evaluations",
    "record_candidate_evaluations",
    "DEFAULT_TOP_K",
    "interaction_path_length",
    "interaction_path",
    "max_interaction_path_length",
    "max_interaction_path_length_bruteforce",
    "argmax_interaction_path",
    "clients_on_longest_paths",
    "average_interaction_path_length",
    "normalized_interactivity",
    "per_client_interactivity",
    "interaction_lower_bound",
    "interaction_lower_bound_bruteforce",
    "single_pair_lower_bound",
    "OffsetSchedule",
    "ConstraintReport",
    "DeploymentPlan",
    "SetCoverInstance",
    "ReductionLayout",
    "REDUCTION_BOUND",
    "reduce_set_cover_to_cap",
    "assignment_from_cover",
    "cover_from_assignment",
    "solve_gadget_bruteforce",
    "verify_reduction_roundtrip",
    "ExactResult",
    "solve_bruteforce",
    "solve_branch_and_bound",
]
