"""NP-completeness machinery: the set-cover reduction of Theorem 1.

The paper proves the client assignment problem NP-complete by reducing
**minimum set cover** to its decision version with bound ``L = 3``:

Given a set-cover instance ``R`` with ``n`` elements and ``m`` subsets
and a budget ``K``, build a network with:

- one client ``c_i`` per element ``p_i``;
- ``K`` groups of ``m`` servers each; server ``s^l_j`` (group ``l``,
  position ``j``) corresponds to subset ``Q_j``;
- a unit-length link ``(c_i, s^l_j)`` for every group ``l`` iff
  ``p_i ∈ Q_j``;
- unit-length links between every pair of servers in *different* groups
  (servers in the same group are **not** linked — their shortest-path
  distance is 2 via another group);
- shortest-path routing.

Then ``R`` has a cover of size ≤ K **iff** the constructed instance has
an assignment with maximum interaction path length ≤ 3.

This module builds the gadget (:func:`reduce_set_cover_to_cap`),
converts witnesses in both directions
(:func:`assignment_from_cover`, :func:`cover_from_assignment`), and
provides brute-force solvers for small instances so tests can verify the
iff on exhaustive families. A greedy ln(n)-approximate set-cover solver
is included for use as a comparison point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.metrics import max_interaction_path_length
from repro.core.problem import ClientAssignmentProblem
from repro.errors import InvalidProblemError
from repro.net.graph import NetworkGraph

#: The decision bound used by the reduction.
REDUCTION_BOUND = 3.0


@dataclass(frozen=True)
class SetCoverInstance:
    """An instance of minimum set cover.

    ``universe`` is the element count ``n`` (elements are ``0..n-1``);
    ``subsets`` is the collection ``Q`` as tuples of element indices.
    """

    universe: int
    subsets: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        if self.universe < 1:
            raise ValueError(f"universe must have >= 1 element, got {self.universe}")
        if not self.subsets:
            raise ValueError("need at least one subset")
        for i, q in enumerate(self.subsets):
            if not q:
                raise ValueError(f"subset {i} is empty")
            if min(q) < 0 or max(q) >= self.universe:
                raise ValueError(f"subset {i} contains out-of-range elements")
        covered = frozenset().union(*self.subsets)
        if len(covered) != self.universe:
            missing = sorted(set(range(self.universe)) - covered)
            raise ValueError(f"elements {missing} are not covered by any subset")

    @classmethod
    def from_lists(
        cls, universe: int, subsets: Sequence[Sequence[int]]
    ) -> "SetCoverInstance":
        """Convenience constructor from plain lists."""
        return cls(universe, tuple(frozenset(q) for q in subsets))

    @property
    def n_subsets(self) -> int:
        """``m = |Q|``."""
        return len(self.subsets)

    def is_cover(self, selection: Sequence[int]) -> bool:
        """Whether the selected subset indices cover the universe."""
        covered: set = set()
        for j in selection:
            covered |= self.subsets[j]
        return len(covered) == self.universe

    def minimum_cover_bruteforce(self) -> Tuple[int, ...]:
        """Smallest cover by exhaustive search (tests / tiny instances)."""
        for size in range(1, self.n_subsets + 1):
            for combo in itertools.combinations(range(self.n_subsets), size):
                if self.is_cover(combo):
                    return combo
        raise AssertionError("validated instance must have a cover")

    def greedy_cover(self) -> Tuple[int, ...]:
        """The classical ln(n)-approximate greedy cover."""
        uncovered = set(range(self.universe))
        chosen: List[int] = []
        while uncovered:
            best = max(
                range(self.n_subsets),
                key=lambda j: (len(self.subsets[j] & uncovered), -j),
            )
            gain = self.subsets[best] & uncovered
            if not gain:
                raise AssertionError("validated instance must be coverable")
            chosen.append(best)
            uncovered -= gain
        return tuple(chosen)


@dataclass(frozen=True)
class ReductionLayout:
    """Index bookkeeping of the constructed CAP gadget.

    Nodes are laid out clients-first: client ``i`` is node ``i``; server
    ``s^l_j`` (group ``l`` in ``0..K-1``, subset position ``j`` in
    ``0..m-1``) is node ``n + l * m + j``.
    """

    instance: SetCoverInstance
    k: int

    @property
    def n_clients(self) -> int:
        return self.instance.universe

    @property
    def m(self) -> int:
        return self.instance.n_subsets

    @property
    def n_servers(self) -> int:
        return self.k * self.m

    @property
    def n_nodes(self) -> int:
        return self.n_clients + self.n_servers

    def server_node(self, group: int, subset: int) -> int:
        """Global node id of server ``s^group_subset``."""
        if not 0 <= group < self.k:
            raise IndexError(f"group {group} out of range [0, {self.k})")
        if not 0 <= subset < self.m:
            raise IndexError(f"subset {subset} out of range [0, {self.m})")
        return self.n_clients + group * self.m + subset

    def server_local_index(self, group: int, subset: int) -> int:
        """Local (problem) server index of ``s^group_subset``."""
        return group * self.m + subset

    def decode_server(self, local_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`server_local_index` -> ``(group, subset)``."""
        return divmod(local_index, self.m)


def reduce_set_cover_to_cap(
    instance: SetCoverInstance, k: int
) -> Tuple[ClientAssignmentProblem, ReductionLayout]:
    """Build the Theorem 1 gadget for budget ``K = k``.

    Returns the CAP instance (all link lengths 1, shortest-path routing)
    and the layout for witness conversion. The construction is
    polynomial: O((n + mK)^2) nodes-squared work for routing.
    """
    if not 1 <= k <= instance.n_subsets:
        raise ValueError(
            f"budget k={k} must be in [1, m={instance.n_subsets}]"
        )
    layout = ReductionLayout(instance, k)
    graph = NetworkGraph(layout.n_nodes)
    # Client-to-server links: c_i -- s^l_j iff p_i in Q_j, for every group l.
    for j, subset in enumerate(instance.subsets):
        for element in subset:
            for group in range(k):
                graph.add_link(element, layout.server_node(group, j), 1.0)
    # Inter-group server links: all pairs in different groups.
    for g1 in range(k):
        for g2 in range(g1 + 1, k):
            for j1 in range(layout.m):
                for j2 in range(layout.m):
                    graph.add_link(
                        layout.server_node(g1, j1),
                        layout.server_node(g2, j2),
                        1.0,
                    )
    # With k = 1 there are no inter-group links, so the gadget can be
    # disconnected when the subset hypergraph is; to_latency_matrix then
    # raises GraphError, mirroring that Theorem 1's construction is only
    # meaningful for connected gadgets.
    matrix = graph.to_latency_matrix()
    servers = np.array(
        [layout.server_node(g, j) for g in range(k) for j in range(layout.m)],
        dtype=np.int64,
    )
    clients = np.arange(layout.n_clients, dtype=np.int64)
    problem = ClientAssignmentProblem(matrix, servers, clients)
    return problem, layout


def assignment_from_cover(
    problem: ClientAssignmentProblem,
    layout: ReductionLayout,
    cover: Sequence[int],
) -> Assignment:
    """Forward witness: a cover of size ≤ K -> an assignment with D ≤ 3.

    Follows the proof's construction: process each chosen subset ``Q_j``
    in its own fresh server group; assign every not-yet-assigned client
    whose element lies in ``Q_j`` to that group's ``j``-th server.
    """
    if len(cover) > layout.k:
        raise ValueError(
            f"cover has {len(cover)} subsets but the gadget was built "
            f"for budget K={layout.k}"
        )
    if not layout.instance.is_cover(cover):
        raise ValueError("the given selection does not cover the universe")
    server_of = np.full(layout.n_clients, -1, dtype=np.int64)
    for group, j in enumerate(cover):
        for element in layout.instance.subsets[j]:
            if server_of[element] == -1:
                server_of[element] = layout.server_local_index(group, j)
    assert np.all(server_of >= 0), "a cover must assign every client"
    return Assignment(problem, server_of)


def cover_from_assignment(
    layout: ReductionLayout, assignment: Assignment
) -> Tuple[int, ...]:
    """Backward witness: an assignment with D ≤ 3 -> a cover of size ≤ K.

    Selects subset ``Q_j`` iff some server at position ``j`` (any group)
    is assigned at least one client. Per the proof, when D ≤ 3 (a) at
    most one server per group is used, so at most K subsets are chosen,
    and (b) every client sits on a direct link to its server, so the
    chosen subsets cover the universe. This function performs the
    syntactic extraction; use :func:`verify_reduction_roundtrip` (or the
    tests) for the semantic guarantees.
    """
    chosen = sorted(
        {layout.decode_server(int(s))[1] for s in np.unique(assignment.server_of)}
    )
    return tuple(chosen)


def solve_gadget_bruteforce(
    problem: ClientAssignmentProblem, *, bound: float = REDUCTION_BOUND
) -> Optional[Assignment]:
    """Exhaustively search for an assignment with D ≤ bound.

    Exponential — only for the tiny instances used in tests. Returns a
    witnessing assignment or ``None``.
    """
    n_clients = problem.n_clients
    n_servers = problem.n_servers
    if n_servers**n_clients > 2_000_000:
        raise InvalidProblemError(
            "gadget too large for brute force "
            f"({n_servers}^{n_clients} assignments)"
        )
    for combo in itertools.product(range(n_servers), repeat=n_clients):
        candidate = Assignment(problem, np.array(combo, dtype=np.int64))
        if max_interaction_path_length(candidate) <= bound + 1e-9:
            return candidate
    return None


def verify_reduction_roundtrip(instance: SetCoverInstance, k: int) -> bool:
    """Check both directions of Theorem 1 on one instance (exhaustively).

    Returns ``True`` when: (cover of size ≤ k exists) iff (assignment
    with D ≤ 3 exists), with witnesses converted and re-verified in both
    directions. Intended for small instances in tests.
    """
    problem, layout = reduce_set_cover_to_cap(instance, k)
    minimum = instance.minimum_cover_bruteforce()
    cover_exists = len(minimum) <= k
    witness = solve_gadget_bruteforce(problem)
    assignment_exists = witness is not None
    if cover_exists != assignment_exists:
        return False
    if cover_exists:
        forward = assignment_from_cover(problem, layout, minimum)
        if max_interaction_path_length(forward) > REDUCTION_BOUND + 1e-9:
            return False
        back = cover_from_assignment(layout, witness)
        if len(back) > k or not instance.is_cover(back):
            return False
    return True
