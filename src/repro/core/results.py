"""Unified result object for algorithm runs.

Historically each entry point hand-rolled its own bookkeeping: the CLI
timed runs with a Stopwatch and recomputed D, the experiment runner kept
an ``AlgorithmScore``, Distributed-Greedy returned its own result class,
and benchmarks did all three again. :class:`AssignmentResult` is the one
record every run produces, and
:func:`repro.algorithms.base.run_algorithm` is the one place that fills
it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.assignment import Assignment


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one algorithm run on one problem instance.

    Attributes
    ----------
    assignment:
        The produced client-to-server mapping.
    d:
        The maximum interaction path length of ``assignment`` (the
        paper's objective D), computed once by the facade.
    algorithm:
        Registry name the run was dispatched under (e.g. ``"greedy"``).
    seed:
        The seed forwarded to the algorithm, or ``None``.
    elapsed_seconds:
        Wall-clock duration of the algorithm call itself (excludes the
        facade's final D computation).
    n_evaluations:
        Candidate (client, server) objective evaluations performed, as
        counted by :func:`repro.core.incremental.count_evaluations`.
        ``0`` for algorithms that never score candidates against D
        (e.g. nearest-server).
    trace:
        Optional modification trace for algorithms that expose one
        (Distributed-Greedy's per-move D trajectory); ``None`` otherwise.
    extras:
        Algorithm-specific extras (message counts, convergence flags...).
        Empty for most algorithms.
    """

    assignment: Assignment
    d: float
    algorithm: str
    seed: Optional[int] = None
    elapsed_seconds: float = 0.0
    n_evaluations: int = 0
    trace: Optional[Tuple[float, ...]] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def problem(self):
        """The problem instance the assignment was produced for."""
        return self.assignment.problem

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            f"{self.algorithm}: D={self.d:.4f}",
            f"{self.elapsed_seconds * 1e3:.1f} ms",
            f"{self.n_evaluations} evaluations",
        ]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "  ".join(parts)
