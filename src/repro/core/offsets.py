"""Simulation-time offsets achieving the minimum lag δ = D (paper §II-C/D).

Given a client assignment, the paper constructs a concrete schedule of
simulation-time offsets under which the constant execution lag δ equals
the maximum interaction path length D:

- all client simulation times are synchronized: ``Δ_{c,c'} = 0``;
- each server ``s`` runs ahead of the clients by

  .. math::

     Δ_{s,c} = D - \\max_{c'} \\{ d(c', s_A(c')) + d(s_A(c'), s) \\}

  (the second term is the longest time for any operation to reach ``s``
  through its issuer's server).

Under this schedule constraints (i) and (ii) hold and **every** pairwise
interaction time equals D. :class:`OffsetSchedule` computes the offsets,
verifies the constraints, and exposes the per-pair interaction times so
the discrete-event simulator can be checked against the analysis.

Offsets are represented relative to the shared client simulation time:
``offset[u] = Δ_{u, c}`` for any client ``c`` (positive = ahead of the
clients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.assignment import Assignment
from repro.core.metrics import max_interaction_path_length
from repro.errors import InfeasibleScheduleError


@dataclass(frozen=True)
class ConstraintReport:
    """Result of checking the paper's feasibility constraints (i)/(ii).

    Constraint (i): every server receives every operation before its
    simulation time reaches issuance + δ, i.e.
    ``d(c, s_A(c)) + d(s_A(c), s) + Δ_{s,c} <= δ`` for all ``c, s``.

    Constraint (ii): every client receives the state update in time, i.e.
    ``d(s_A(c), c) + Δ_{c, s_A(c)} <= 0`` for all ``c``.
    """

    feasible: bool
    #: Worst slack of constraint (i): max over (c, s) of LHS - δ
    #: (<= 0 when feasible).
    worst_slack_i: float
    #: Worst slack of constraint (ii): max over c of LHS (<= 0 when
    #: feasible).
    worst_slack_ii: float


class OffsetSchedule:
    """Simulation-time offsets for an assignment and a lag δ.

    Parameters
    ----------
    assignment:
        A valid client assignment.
    delta:
        The constant execution lag; defaults to the minimum achievable
        value D for the assignment. Values below D raise
        :class:`~repro.errors.InfeasibleScheduleError` (Theorem of
        §II-C: no offset setting can satisfy the constraints).
    strict:
        Pass ``False`` to permit an infeasible ``delta < D`` anyway —
        the offsets are still computed by the same formula, constraints
        (i)/(ii) will report violations, and a simulation will produce
        late messages. Exists for the δ-sweep experiment that
        demonstrates D is exactly the feasibility knee
        (:func:`repro.experiments.delta_sweep.delta_sweep`); never use
        it in a deployment.
    """

    def __init__(
        self,
        assignment: Assignment,
        delta: Optional[float] = None,
        *,
        strict: bool = True,
    ) -> None:
        self._assignment = assignment
        problem = assignment.problem
        self._d_max = max_interaction_path_length(assignment)
        if delta is None:
            delta = self._d_max
        if strict and delta < self._d_max - 1e-9:
            raise InfeasibleScheduleError(
                f"lag delta={delta:.6g} is below the minimum achievable "
                f"interaction time D={self._d_max:.6g}"
            )
        if delta <= 0:
            raise InfeasibleScheduleError(
                f"lag delta must be positive, got {delta}"
            )
        self._delta = float(delta)

        # reach[c, s] = d(c, s_A(c)) + d(s_A(c), s): time for an operation
        # issued by client c to reach server s.
        server_of = assignment.server_of
        idx = np.arange(problem.n_clients)
        d_c_home = problem.client_server[idx, server_of]
        d_home_s = problem.server_server[server_of, :]
        self._reach = d_c_home[:, None] + d_home_s

        # Server offsets: Δ_{s, clients} = delta - max_c reach[c, s].
        # (The paper states the scheme for delta = D; using the actual
        # delta keeps the schedule tight for any feasible lag.)
        self._server_offsets = self._delta - self._reach.max(axis=0)

    # ------------------------------------------------------------------
    @property
    def assignment(self) -> Assignment:
        """The underlying assignment."""
        return self._assignment

    @property
    def delta(self) -> float:
        """The constant execution lag δ."""
        return self._delta

    @property
    def min_achievable_delta(self) -> float:
        """D — the smallest feasible lag for this assignment."""
        return self._d_max

    @property
    def server_offsets(self) -> np.ndarray:
        """Length-``|S|`` offsets ``Δ_{s, c}`` of each server's simulation
        time relative to the (shared) client simulation time."""
        return self._server_offsets

    def client_offsets(self) -> np.ndarray:
        """Length-``|C|`` client offsets (all zero — clients are
        synchronized)."""
        return np.zeros(self._assignment.problem.n_clients)

    # ------------------------------------------------------------------
    def check_constraints(self) -> ConstraintReport:
        """Verify feasibility constraints (i) and (ii).

        Returns a report rather than raising, so tests can assert on the
        slack magnitudes.
        """
        problem = self._assignment.problem
        server_of = self._assignment.server_of
        idx = np.arange(problem.n_clients)

        # (i): reach[c, s] + Δ_{s,c} <= delta for all c, s.
        slack_i = self._reach + self._server_offsets[None, :] - self._delta
        worst_i = float(slack_i.max())

        # (ii): d(s_A(c), c) + Δ_{c, s_A(c)} <= 0. With client offsets 0,
        # Δ_{c, s} = -Δ_{s, c} = -server_offsets[s].
        d_home_c = problem.server_client[server_of, idx]
        slack_ii = d_home_c - self._server_offsets[server_of]
        worst_ii = float(slack_ii.max())

        tol = 1e-9 * max(1.0, self._delta)
        return ConstraintReport(
            feasible=(worst_i <= tol and worst_ii <= tol),
            worst_slack_i=worst_i,
            worst_slack_ii=worst_ii,
        )

    def interaction_times(self) -> np.ndarray:
        """Pairwise interaction times under this schedule.

        ``out[i, j]`` is the simulation-time duration for client ``j`` to
        see the effect of client ``i``'s operation: with synchronized
        client clocks this equals δ + Δ_{c_i, c_j} = δ for every pair —
        the paper's §II-D conclusion. Returned as a full matrix so tests
        can assert uniformity without special cases.
        """
        n = self._assignment.problem.n_clients
        return np.full((n, n), self._delta)

    def wall_clock_view(self) -> np.ndarray:
        """Wall-clock lateness budget of each server for each client.

        ``out[c, s] = delta - reach[c, s] - Δ_{s,c}`` — how much wall
        clock slack remains when client ``c``'s operation arrives at
        server ``s``. Nonnegative everywhere iff constraint (i) holds.
        """
        return self._delta - self._reach - self._server_offsets[None, :]
