"""The client assignment problem instance (paper Definition 1).

A :class:`ClientAssignmentProblem` bundles everything Definition 1
needs: the all-pairs distance function (any
:class:`~repro.net.provider.LatencyProvider` — the dense
:class:`~repro.net.latency.LatencyMatrix` or an on-demand
:class:`~repro.net.provider.CoordinateProvider`), the server set ``S``,
the client set ``C``, and — for §IV-E — optional per-server capacities.

For efficiency the instance precomputes the two distance views every
algorithm uses:

- ``client_server`` — shape ``(|C|, |S|)``, entry ``[i, j] = d(c_i, s_j)``
  (client-to-server direction);
- ``server_server`` — shape ``(|S|, |S|)``, entry ``[j, j'] = d(s_j, s_j')``.

The reverse-direction ``server_client`` view (``(|S|, |C|)``, entry
``[j, i] = d(s_j, c_i)``) is built lazily on first access — only the
incremental engine and the exact metrics need it.

Clients may carry positive integer **weights** (the coreset layer of
:mod:`repro.scale` collapses many real clients into one weighted
super-client): weights never change the objective D (a maximum, not a
sum) but a weight-``w`` client consumes ``w`` capacity slots, both in
the total-capacity feasibility check here and in the engine's
saturation masking.

Algorithms and metrics work in *local* index space (client index
``0..|C|-1``, server index ``0..|S|-1``); conversion to global node ids
is available via :attr:`clients` / :attr:`servers`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import CapacityError, InvalidProblemError
from repro.net.provider import LatencyProvider
from repro.types import IndexArrayLike, as_index_array


class ClientAssignmentProblem:
    """An instance of the client assignment problem.

    Parameters
    ----------
    matrix:
        Latency source over the node set ``V`` — a dense
        :class:`~repro.net.latency.LatencyMatrix` or any other
        :class:`~repro.net.provider.LatencyProvider`.
    servers:
        Distinct node indices forming ``S``.
    clients:
        Distinct node indices forming ``C``. Defaults to *all* nodes
        (the paper's setup: "a client is located at each node").
    capacities:
        Optional per-server client capacity: a scalar (uniform capacity)
        or a length-``|S|`` sequence. ``None`` means uncapacitated.
    client_weights:
        Optional positive integer weight per client (length ``|C|``).
        ``None`` (the default) means unit weights. A weight-``w`` client
        occupies ``w`` capacity slots; the objective is unaffected.

    Raises
    ------
    InvalidProblemError
        On malformed inputs.
    CapacityError
        When total capacity is below the total client weight.
    """

    def __init__(
        self,
        matrix: LatencyProvider,
        servers: IndexArrayLike,
        clients: Optional[IndexArrayLike] = None,
        *,
        capacities: Union[None, int, Sequence[int]] = None,
        client_weights: Optional[Sequence[int]] = None,
    ) -> None:
        self._matrix = matrix
        self._servers = as_index_array(servers, "servers")
        if self._servers.size == 0:
            raise InvalidProblemError("the server set S must be non-empty")
        if np.unique(self._servers).size != self._servers.size:
            raise InvalidProblemError("servers must be distinct")
        if clients is None:
            self._clients = np.arange(matrix.n_nodes, dtype=np.int64)
        else:
            self._clients = as_index_array(clients, "clients")
        if self._clients.size == 0:
            raise InvalidProblemError("the client set C must be non-empty")
        if np.unique(self._clients).size != self._clients.size:
            raise InvalidProblemError("clients must be distinct")
        n = matrix.n_nodes
        for name, arr in (("servers", self._servers), ("clients", self._clients)):
            if arr.min() < 0 or arr.max() >= n:
                raise InvalidProblemError(
                    f"{name} contain indices outside [0, {n})"
                )
        self._servers.setflags(write=False)
        self._clients.setflags(write=False)

        self._client_weights = self._normalize_weights(client_weights)
        self._capacities = self._normalize_capacities(capacities)

        # Precomputed distance views (read-only).
        self._cs = matrix.client_server_distances(self._clients, self._servers).copy()
        self._ss = matrix.server_server_distances(self._servers).copy()
        self._cs.setflags(write=False)
        self._ss.setflags(write=False)
        # Reverse-direction view, built lazily by `server_client`.
        self._sc: Optional[np.ndarray] = None

    def _normalize_weights(
        self, client_weights: Optional[Sequence[int]]
    ) -> Optional[np.ndarray]:
        if client_weights is None:
            return None
        weights = np.asarray(client_weights, dtype=np.int64).copy()
        if weights.shape != (self.n_clients,):
            raise InvalidProblemError(
                f"client_weights must have length |C|={self.n_clients}, "
                f"got shape {weights.shape}"
            )
        if np.any(weights < 1):
            raise InvalidProblemError("client weights must be >= 1")
        weights.setflags(write=False)
        return weights

    def _normalize_capacities(
        self, capacities: Union[None, int, Sequence[int]]
    ) -> Optional[np.ndarray]:
        if capacities is None:
            return None
        if np.isscalar(capacities):
            cap = np.full(self.n_servers, int(capacities), dtype=np.int64)
        else:
            cap = np.asarray(capacities, dtype=np.int64).copy()
            if cap.shape != (self.n_servers,):
                raise InvalidProblemError(
                    f"capacities must have length |S|={self.n_servers}, "
                    f"got shape {cap.shape}"
                )
        if np.any(cap < 0):
            raise InvalidProblemError("capacities must be nonnegative")
        total_demand = self.total_client_weight
        if cap.sum() < total_demand:
            raise CapacityError(
                f"total capacity {int(cap.sum())} is below the total "
                f"client demand {total_demand}"
            )
        cap.setflags(write=False)
        return cap

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> LatencyProvider:
        """The underlying latency provider (dense matrix or synthetic)."""
        return self._matrix

    @property
    def servers(self) -> np.ndarray:
        """Global node ids of the servers (read-only, length ``|S|``)."""
        return self._servers

    @property
    def clients(self) -> np.ndarray:
        """Global node ids of the clients (read-only, length ``|C|``)."""
        return self._clients

    @property
    def n_servers(self) -> int:
        """``|S|``."""
        return int(self._servers.size)

    @property
    def n_clients(self) -> int:
        """``|C|``."""
        return int(self._clients.size)

    @property
    def capacities(self) -> Optional[np.ndarray]:
        """Per-server capacities in local server index space, or ``None``."""
        return self._capacities

    @property
    def is_capacitated(self) -> bool:
        """Whether server capacities are in force."""
        return self._capacities is not None

    @property
    def client_weights(self) -> Optional[np.ndarray]:
        """Per-client positive integer weights, or ``None`` (= all 1)."""
        return self._client_weights

    @property
    def is_weighted(self) -> bool:
        """Whether non-unit client weights are in force."""
        return self._client_weights is not None

    @property
    def total_client_weight(self) -> int:
        """Sum of client weights (``|C|`` when unweighted)."""
        if self._client_weights is None:
            return self.n_clients
        return int(self._client_weights.sum())

    @property
    def client_server(self) -> np.ndarray:
        """``(|C|, |S|)`` distances ``d(c_i, s_j)`` (read-only)."""
        return self._cs

    @property
    def server_client(self) -> np.ndarray:
        """``(|S|, |C|)`` distances ``d(s_j, c_i)`` (read-only, lazy).

        Built from the provider on first access and cached, so repeated
        consumers (engine, metrics, lower bounds) share one array
        instead of re-slicing the matrix.
        """
        if self._sc is None:
            sc = self._matrix.server_client_distances(
                self._servers, self._clients
            ).copy()
            sc.setflags(write=False)
            self._sc = sc
        return self._sc

    @property
    def server_server(self) -> np.ndarray:
        """``(|S|, |S|)`` distances ``d(s_j, s_j')`` (read-only)."""
        return self._ss

    @property
    def dtype(self) -> np.dtype:
        """Element type of the distance views (the provider's dtype)."""
        return self._matrix.dtype

    def astype(self, dtype) -> "ClientAssignmentProblem":
        """This instance over the provider cast to ``dtype``.

        Returns ``self`` when the dtype already matches; see
        :meth:`repro.net.latency.LatencyMatrix.astype` for the rounding
        contract of a float64 → float32 downcast.
        """
        matrix = self._matrix.astype(dtype)
        if matrix is self._matrix:
            return self
        return ClientAssignmentProblem(
            matrix,
            self._servers,
            self._clients,
            capacities=self._capacities,
            client_weights=self._client_weights,
        )

    def uncapacitated(self) -> "ClientAssignmentProblem":
        """A copy of this instance with capacities removed."""
        if not self.is_capacitated:
            return self
        return ClientAssignmentProblem(
            self._matrix,
            self._servers,
            self._clients,
            client_weights=self._client_weights,
        )

    def with_capacity(
        self, capacities: Union[int, Sequence[int]]
    ) -> "ClientAssignmentProblem":
        """A copy of this instance with the given capacities."""
        return ClientAssignmentProblem(
            self._matrix,
            self._servers,
            self._clients,
            capacities=capacities,
            client_weights=self._client_weights,
        )

    def with_weights(
        self, client_weights: Optional[Sequence[int]]
    ) -> "ClientAssignmentProblem":
        """A copy of this instance with the given client weights."""
        return ClientAssignmentProblem(
            self._matrix,
            self._servers,
            self._clients,
            capacities=self._capacities,
            client_weights=client_weights,
        )

    def __repr__(self) -> str:
        cap = "capacitated" if self.is_capacitated else "uncapacitated"
        w = ", weighted" if self.is_weighted else ""
        return (
            f"ClientAssignmentProblem(|C|={self.n_clients}, "
            f"|S|={self.n_servers}, {cap}{w})"
        )
