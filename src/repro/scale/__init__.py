"""Million-client scaling layer: coresets, pipelines, region shards.

The paper's heuristics are O(|C| |S|) and beyond in time but — more
restrictively — O(|C| |S|) in *memory* through the dense distance views
every :class:`~repro.core.problem.ClientAssignmentProblem` precomputes.
This package breaks that barrier in three composable stages:

- :mod:`repro.scale.coreset` — collapse clients with near-identical
  latency profiles into weighted **super-clients**, with an explicit
  additive quality bound: the expanded assignment's D exceeds the
  reduced instance's D by at most ``2 * epsilon`` (Coreset.epsilon, the
  achieved profile deviation — test-enforced).
- :mod:`repro.scale.pipeline` — :func:`~repro.scale.pipeline.solve_at_scale`
  chains coreset → reduced solve (any registered algorithm) → expansion
  back to every client, evaluating the exact expanded D in O(|S|^2)
  memory by streaming clients in chunks. Combined with a
  :class:`~repro.net.provider.CoordinateProvider`, a 10^6-client
  instance solves end to end without ever allocating a dense
  ``|C| x |S|`` block.
- :mod:`repro.scale.sharded` — a region-sharded online manager routing
  joins/leaves to per-shard
  :class:`~repro.algorithms.online.OnlineAssignmentManager` instances
  and recovering the exact global D by merging per-shard farthest-client
  vectors.

See ``docs/scaling.md`` for the guarantees and the deployment model.
"""

from repro.scale.coreset import Coreset, build_coreset
from repro.scale.pipeline import (
    ScaleResult,
    expanded_objective,
    publish_reduced_views,
    solve_at_scale,
)
from repro.scale.sharded import ShardedOnlineManager

__all__ = [
    "Coreset",
    "build_coreset",
    "ScaleResult",
    "solve_at_scale",
    "expanded_objective",
    "publish_reduced_views",
    "ShardedOnlineManager",
]
