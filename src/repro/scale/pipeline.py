"""Coreset → reduced solve → expansion: the million-client pipeline.

:func:`solve_at_scale` is the facade: build a
:class:`~repro.scale.coreset.Coreset` over the client set, solve the
reduced weighted instance with any registered algorithm through
:func:`~repro.algorithms.base.run_algorithm`, expand the result back to
every client, and evaluate the **exact** expanded objective by
streaming clients through the provider in chunks (per-server
farthest-leg maxima, then the O(|S|^2) server reduction — never a dense
``|C| x |S|`` block). The additive guarantee

    ``D_expanded <= D_reduced + 2 * coreset.epsilon``

is re-checked on every run and a violation raises — it would mean the
coreset invariant itself is broken, not merely a bad solve.

For worker fan-out over one reduced instance,
:func:`publish_reduced_views` pushes the three distance views through
:mod:`repro.parallel.shm` so trials attach them zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.algorithms.base import run_algorithm
from repro.core.problem import ClientAssignmentProblem
from repro.core.results import AssignmentResult
from repro.errors import InvalidParameterError, ScaleBoundError
from repro.net.provider import LatencyProvider, provider_name
from repro.obs import Stopwatch, registry, span
from repro.scale.coreset import DEFAULT_CHUNK_SIZE, Coreset, build_coreset
from repro.types import IndexArrayLike, as_index_array


@dataclass(frozen=True)
class ScaleResult:
    """Outcome of :func:`solve_at_scale`.

    ``server_of`` maps every input client (positional, in the order the
    client nodes were given) to a local server index of ``servers``.
    ``d_expanded`` is the exact objective of that full assignment;
    ``d_reduced`` the reduced instance's objective; ``bound`` is
    ``d_reduced + 2 * coreset.epsilon`` (always ``>= d_expanded``).
    """

    server_of: np.ndarray
    d_expanded: float
    d_reduced: float
    bound: float
    coreset: Coreset
    reduced: AssignmentResult
    algorithm: str
    elapsed_seconds: float

    def __post_init__(self) -> None:
        self.server_of.setflags(write=False)

    @property
    def epsilon(self) -> float:
        """The coreset's achieved profile deviation."""
        return self.coreset.epsilon

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready scalar summary (for benchmarks and the CLI)."""
        return {
            "algorithm": self.algorithm,
            "n_clients": self.coreset.n_clients,
            "n_representatives": self.coreset.n_representatives,
            "reduction_ratio": self.coreset.reduction_ratio,
            "epsilon": self.epsilon,
            "cell_size": self.coreset.cell_size,
            "d_reduced": self.d_reduced,
            "d_expanded": self.d_expanded,
            "bound": self.bound,
            "elapsed_seconds": self.elapsed_seconds,
        }


def expanded_objective(
    provider: LatencyProvider,
    servers: np.ndarray,
    clients: np.ndarray,
    server_of: np.ndarray,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> float:
    """Exact D of a full assignment, streamed in O(|S|^2) memory.

    Accumulates per-server farthest outgoing/incoming client legs over
    client chunks, then reduces ``max l_out[s1] + d(s1, s2) + l_in[s2]``
    over used servers — the same decomposition as
    :func:`repro.core.metrics.max_interaction_path_length`, without ever
    holding a ``|C| x |S|`` block.
    """
    n_servers = int(servers.size)
    l_out = np.full(n_servers, -np.inf)
    l_in = np.full(n_servers, -np.inf)
    for start in range(0, clients.size, chunk_size):
        block = clients[start : start + chunk_size]
        assigned = server_of[start : start + block.size]
        rows = np.arange(block.size)
        cs = provider.client_server_distances(block, servers)
        np.maximum.at(l_out, assigned, np.asarray(cs[rows, assigned], dtype=np.float64))
        sc = provider.server_client_distances(servers, block)
        np.maximum.at(l_in, assigned, np.asarray(sc[assigned, rows], dtype=np.float64))
    used = np.flatnonzero(np.isfinite(l_out))
    ss = np.asarray(
        provider.server_server_distances(servers), dtype=np.float64
    )
    sub = ss[np.ix_(used, used)]
    totals = l_out[used][:, None] + sub + l_in[used][None, :]
    return float(totals.max())


def solve_at_scale(
    provider: LatencyProvider,
    servers: IndexArrayLike,
    clients: Optional[IndexArrayLike] = None,
    *,
    cell_size: float,
    algorithm: str = "distributed-greedy",
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    **kwargs: Any,
) -> ScaleResult:
    """Solve a (possibly enormous) instance via the coreset pipeline.

    ``clients`` defaults to every node not hosting a server. The reduced
    instance carries the coreset's weights (so a future capacitated
    variant charges each super-client its true demand) and is solved
    uncapacitated by ``algorithm`` through the standard
    :func:`~repro.algorithms.base.run_algorithm` facade — every
    registered heuristic works unchanged, since |R| is small.

    Peak memory is O(chunk_size · |S| + |R| · |S| + |S|^2); with a
    :class:`~repro.net.provider.CoordinateProvider` no dense
    ``|C| x |S|`` block exists at any point.
    """
    server_arr = as_index_array(servers, "servers")
    if clients is None:
        mask = np.ones(provider.n_nodes, dtype=bool)
        mask[server_arr] = False
        client_arr = np.flatnonzero(mask).astype(np.int64)
    else:
        client_arr = as_index_array(clients, "clients")
    if client_arr.size == 0:
        raise InvalidParameterError("need at least one client")

    with span(
        "scale.solve",
        provider=provider_name(provider),
        clients=int(client_arr.size),
        servers=int(server_arr.size),
        algorithm=algorithm,
    ), Stopwatch() as watch:
        with span("scale.coreset"):
            coreset = build_coreset(
                provider,
                server_arr,
                client_arr,
                cell_size=cell_size,
                chunk_size=chunk_size,
            )
        with span("scale.reduce_solve", representatives=coreset.n_representatives):
            reduced_problem = ClientAssignmentProblem(
                provider,
                server_arr,
                clients=coreset.representatives,
                client_weights=coreset.weights,
            )
            reduced = run_algorithm(
                algorithm,
                reduced_problem,
                seed=seed,
                backend=backend,
                **kwargs,
            )
        with span("scale.expand"):
            server_of = coreset.expand(reduced.assignment.server_of)
            d_expanded = expanded_objective(
                provider,
                server_arr,
                client_arr,
                server_of,
                chunk_size=chunk_size,
            )
    bound = reduced.d + 2.0 * coreset.epsilon
    if d_expanded > bound * (1.0 + 1e-9) + 1e-9:
        raise ScaleBoundError(
            f"expanded D {d_expanded} exceeds the coreset bound "
            f"{bound} (= reduced D {reduced.d} + 2 * epsilon "
            f"{coreset.epsilon}); the coreset invariant is broken"
        )
    metrics = registry()
    metrics.counter("scale.solves").inc()
    metrics.gauge("scale.last_reduction_ratio").set(coreset.reduction_ratio)
    return ScaleResult(
        server_of=server_of,
        d_expanded=d_expanded,
        d_reduced=reduced.d,
        bound=bound,
        coreset=coreset,
        reduced=reduced,
        algorithm=algorithm,
        elapsed_seconds=watch.elapsed,
    )


def publish_reduced_views(
    problem: ClientAssignmentProblem, *, prefer_shared: bool = True
) -> Dict[str, "Any"]:
    """Publish a reduced instance's distance views via shared memory.

    Returns ``{"client_server": PublishedArray, "server_client": ...,
    "server_server": ...}``; the caller owns the contexts (close() to
    unlink). Workers rebuild the views with
    :func:`repro.parallel.shm.attach_array` — zero copies of the only
    O(|R| |S|) arrays the reduced solve needs.
    """
    from repro.parallel.shm import publish_array

    return {
        "client_server": publish_array(
            problem.client_server, prefer_shared=prefer_shared
        ),
        "server_client": publish_array(
            problem.server_client, prefer_shared=prefer_shared
        ),
        "server_server": publish_array(
            problem.server_server, prefer_shared=prefer_shared
        ),
    }
