"""Region-sharded online assignment for large client universes.

One :class:`~repro.algorithms.online.OnlineAssignmentManager` holds an
incremental engine over its whole client universe — O(|universe| · |S|)
distance state. :class:`ShardedOnlineManager` splits the universe into
``config.shards`` **regions** (clients hashed by their nearest-server
index, so a region's clients share latency geometry) and gives each
region its own manager over only its slice of nodes. Joins, leaves and
moves route to the owning shard in O(1); per-shard engine state shrinks
by the shard count.

The objective stays **exact**: D decomposes into per-server farthest
outgoing/incoming legs, and a max decomposes over any partition of the
clients — merging the shards' ``l`` vectors elementwise and running the
O(|S|^2) server reduction recovers the global D, cross-shard client
pairs included. ``shards=1`` degenerates to a single manager over the
full universe and is byte-identical to using
:class:`~repro.algorithms.online.OnlineAssignmentManager` directly
(test-enforced at shard counts 1/2/8 in
``tests/scale/test_sharded.py``).

Rebalancing runs bounded Distributed-Greedy repair inside each shard,
then spends any remaining budget on the shards that own the current
global witness path — the only shards whose moves can lower the global
maximum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.algorithms.policies import OnlinePolicy, PlacementView, resolve_policy
from repro.core.assignment import Assignment
from repro.core.problem import ClientAssignmentProblem
from repro.errors import (
    CapacityError,
    InvalidAssignmentError,
    InvalidParameterError,
)
from repro.net.provider import LatencyProvider
from repro.obs.metrics import registry
from repro.scale.coreset import DEFAULT_CHUNK_SIZE
from repro.types import IndexArrayLike, as_index_array


class ShardedOnlineManager:
    """Routes online churn to per-region shard managers (see module docs).

    Parameters
    ----------
    matrix:
        Latency source over the node universe (any provider).
    servers:
        Node indices hosting servers (shared by every shard).
    config:
        An :class:`~repro.algorithms.online.OnlineConfig`;
        ``config.shards`` sets the region count.
    client_nodes:
        The joinable client universe. Defaults to every non-server node.
    chunk_size:
        Chunking of the nearest-server routing precompute (memory knob
        for million-node universes).
    """

    def __init__(
        self,
        matrix: LatencyProvider,
        servers: IndexArrayLike,
        config: Optional[OnlineConfig] = None,
        *,
        client_nodes: Optional[IndexArrayLike] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        config = config or OnlineConfig()
        self._matrix = matrix
        self._servers = as_index_array(servers, "servers")
        if self._servers.size == 0:
            raise InvalidParameterError("need at least one server")
        self._config = config
        if client_nodes is None:
            mask = np.ones(matrix.n_nodes, dtype=bool)
            mask[self._servers] = False
            universe = np.flatnonzero(mask).astype(np.int64)
        else:
            universe = as_index_array(client_nodes, "client_nodes")
            if universe.size == 0:
                raise InvalidParameterError(
                    "client_nodes must be non-empty when given"
                )
        self._universe = universe
        self._policy = resolve_policy(config.join_policy)
        n_shards = min(config.shards, universe.size)
        #: node -> shard index, for O(1) routing
        self._shard_of: Dict[int, int] = {}
        shard_nodes: List[List[int]] = [[] for _ in range(n_shards)]
        if n_shards == 1:
            for node in universe:
                self._shard_of[int(node)] = 0
            shard_nodes[0] = [int(n) for n in universe]
        else:
            # Region key: nearest-server index, computed in chunks so a
            # million-node universe never materializes |C| x |S| at once.
            for start in range(0, universe.size, chunk_size):
                block = universe[start : start + chunk_size]
                cs = self._matrix.client_server_distances(block, self._servers)
                nearest = np.argmin(cs, axis=1)
                shards = nearest % n_shards
                for node, shard in zip(block, shards):
                    self._shard_of[int(node)] = int(shard)
                    shard_nodes[int(shard)].append(int(node))
        # Empty regions still get a manager (a manager needs >= 1
        # client node); park them on the first universe node — they
        # simply never receive a join.
        self._managers: List[OnlineAssignmentManager] = []
        for shard in range(n_shards):
            nodes = shard_nodes[shard] or [int(universe[0])]
            self._managers.append(
                OnlineAssignmentManager(
                    matrix,
                    self._servers,
                    config,
                    client_nodes=np.asarray(nodes, dtype=np.int64),
                )
            )

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of region shards."""
        return len(self._managers)

    @property
    def n_servers(self) -> int:
        """Number of servers."""
        return int(self._servers.size)

    @property
    def config(self) -> OnlineConfig:
        """The shared configuration."""
        return self._config

    @property
    def n_clients(self) -> int:
        """Number of currently connected clients across all shards."""
        return sum(m.n_clients for m in self._managers)

    # Sharded managers do not model server fault events (crash,
    # partition), so every server is always active, reachable, usable —
    # the properties exist so service-layer introspection works
    # uniformly across manager kinds.
    @property
    def n_active_servers(self) -> int:
        """Number of up servers (always all of them; no fault events)."""
        return self.n_servers

    @property
    def n_reachable_servers(self) -> int:
        """Number of reachable servers (always all of them)."""
        return self.n_servers

    @property
    def n_usable_servers(self) -> int:
        """Number of servers accepting clients (always all of them)."""
        return self.n_servers

    @property
    def capacity(self) -> Optional[int]:
        """The per-server capacity, if any."""
        return self._config.capacity

    @property
    def matrix(self) -> LatencyProvider:
        """The latency source shared by every shard."""
        return self._matrix

    @property
    def server_nodes(self) -> np.ndarray:
        """Node indices hosting the servers (read-only view)."""
        return self._servers

    @property
    def clients(self) -> Tuple[int, ...]:
        """Currently connected client nodes (sorted, all shards)."""
        out: List[int] = []
        for m in self._managers:
            out.extend(m.clients)
        return tuple(sorted(out))

    def shard_of_node(self, client_node: int) -> int:
        """The shard that owns ``client_node``."""
        try:
            return self._shard_of[int(client_node)]
        except KeyError:
            raise InvalidAssignmentError(
                f"client node {client_node} is outside this manager's "
                f"client universe"
            ) from None

    def shard(self, index: int) -> OnlineAssignmentManager:
        """The shard manager at ``index`` (for inspection/tests)."""
        return self._managers[index]

    def loads(self) -> np.ndarray:
        """Per-server client counts, summed over shards."""
        total = np.zeros(self.n_servers, dtype=np.int64)
        for m in self._managers:
            total += m.loads()
        return total

    def is_connected(self, client_node: int) -> bool:
        """Whether ``client_node`` is currently connected."""
        shard = self._shard_of.get(int(client_node))
        return shard is not None and self._managers[shard].is_connected(
            client_node
        )

    def server_of(self, client_node: int) -> int:
        """Local server index of a connected client."""
        return self._managers[self.shard_of_node(client_node)].server_of(
            client_node
        )

    # ------------------------------------------------------------------
    def _out_leg(self, client_node: int) -> np.ndarray:
        node_arr = np.array([client_node], dtype=np.int64)
        return np.ascontiguousarray(
            self._matrix.client_server_distances(node_arr, self._servers)[0],
            dtype=np.float64,
        )

    def _nearest_join_costs(self, client_node: int) -> np.ndarray:
        """The client's outgoing legs, capacity-masked against global loads."""
        costs = self._out_leg(client_node).copy()
        if self._config.capacity is not None:
            costs = np.where(
                self.loads() >= self._config.capacity, np.inf, costs
            )
        return costs

    def _path_join_costs(
        self, client_node: int, *, loads: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Candidate path lengths ``L(s')`` from the *merged* global state.

        Reproduces the unsharded manager's greedy decision exactly: the
        same float64 operations, in the same order, as the engine's
        fused kernel on a full-universe engine — which is what makes
        shard counts 1/2/8 decide identically. Capacity masks against
        *global* loads (or the adjusted ``loads`` a caller passes).
        """
        node_arr = np.array([client_node], dtype=np.int64)
        out_leg = self._out_leg(client_node)
        in_leg = np.ascontiguousarray(
            self._matrix.server_client_distances(self._servers, node_arr)[
                :, 0
            ],
            dtype=np.float64,
        )
        l_out, l_in = self.merged_l_vectors()
        ss = np.asarray(
            self._matrix.server_server_distances(self._servers),
            dtype=np.float64,
        )
        best_in = (ss + l_in[None, :]).max(axis=1)
        best_out = (l_out[:, None] + ss).max(axis=0)
        costs = np.maximum(out_leg + best_in, best_out + in_leg)
        np.maximum(costs, out_leg + in_leg, out=costs)
        if self._config.capacity is not None:
            if loads is None:
                loads = self.loads()
            costs = np.where(loads >= self._config.capacity, np.inf, costs)
        return costs

    def placement_view(self, client_node: int) -> PlacementView:
        """The policy's view of one arriving client (merged global state)."""
        return PlacementView(
            client_node=client_node,
            n_servers=self.n_servers,
            capacity=self._config.capacity,
            nearest_costs=lambda: self._nearest_join_costs(client_node),
            path_costs=lambda: self._path_join_costs(client_node),
            loads=self.loads,
        )

    @property
    def policy(self) -> OnlinePolicy:
        """The resolved placement policy shared by this manager."""
        return self._policy

    def candidate_costs(self, client_node: int) -> np.ndarray:
        """Public masked ``L(s')`` vector for a client (policy seam).

        Mirrors :meth:`OnlineAssignmentManager.candidate_costs` from
        merged global state. A connected client's own contribution is
        *not* removed from the merged ``l`` vectors (the reduction
        keeps it), so the stay-put cost is an upper bound —
        conservative for remediation policies. Capacity credits the
        client's own slot back.
        """
        loads = None
        if (
            self._config.capacity is not None
            and self.is_connected(client_node)
        ):
            loads = self.loads()
            loads[self.server_of(client_node)] -= 1
        return self._path_join_costs(client_node, loads=loads)

    def join(self, client_node: int) -> int:
        """Connect a new client; returns its assigned local server index.

        The placement decision is delegated to the shared policy over a
        merged-state :meth:`placement_view`; the binding is then
        installed into the owning region shard.
        """
        manager = self._managers[self.shard_of_node(client_node)]
        if manager.is_connected(client_node):
            raise InvalidAssignmentError(
                f"client {client_node} already connected"
            )
        best = self._policy.choose_server(self.placement_view(client_node))
        manager.restore_client(client_node, best)
        registry().counter("scale.sharded.joins").inc()
        return best

    def leave(self, client_node: int) -> None:
        """Disconnect a client from its region shard."""
        self._managers[self.shard_of_node(client_node)].leave(client_node)
        registry().counter("scale.sharded.leaves").inc()

    def move(self, client_node: int, server: int) -> None:
        """Reassign a connected client (delegated to its shard).

        Capacity is checked against *global* per-server loads before
        delegation — a shard manager only sees its own members.
        """
        if (
            self._config.capacity is not None
            and 0 <= server < self.n_servers
            and self.is_connected(client_node)
            and self.server_of(client_node) != server
            and int(self.loads()[server]) >= self._config.capacity
        ):
            raise CapacityError(f"server {server} is at capacity")
        self._managers[self.shard_of_node(client_node)].move(
            client_node, server
        )

    # ------------------------------------------------------------------
    def merged_l_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Global per-server ``(l_out, l_in)``: elementwise shard maxima."""
        l_out = np.full(self.n_servers, -np.inf)
        l_in = np.full(self.n_servers, -np.inf)
        for m in self._managers:
            if m.n_clients == 0:
                continue
            shard_out, shard_in = m.l_vectors()
            np.maximum(l_out, shard_out, out=l_out)
            np.maximum(l_in, shard_in, out=l_in)
        return l_out, l_in

    def current_d(self) -> float:
        """The exact global maximum interaction path length.

        Merges the shards' farthest-client vectors (a max decomposes
        over any client partition) and runs the O(|S|^2) server
        reduction; 0.0 with no clients connected.
        """
        l_out, l_in = self.merged_l_vectors()
        used = np.flatnonzero(np.isfinite(l_out))
        if used.size == 0:
            return 0.0
        ss = np.asarray(
            self._matrix.server_server_distances(self._servers),
            dtype=np.float64,
        )
        sub = ss[np.ix_(used, used)]
        totals = l_out[used][:, None] + sub + l_in[used][None, :]
        return float(totals.max())

    # ------------------------------------------------------------------
    def rebalance(self, *, max_moves: int = 16) -> int:
        """Bounded repair: per-shard DGA, then witness-shard focus.

        Each shard first runs Distributed-Greedy repair with an equal
        slice of the budget. Any remaining budget goes to the shards
        owning the current global witness path (the farthest outgoing
        and incoming legs of the merged reduction) — only their moves
        can lower the global maximum. Returns total moves made.
        """
        if max_moves < 1 or self.n_clients == 0:
            return 0
        per_shard = max(1, max_moves // self.n_shards)
        moves = 0
        for m in self._managers:
            if moves >= max_moves:
                break
            if m.n_clients:
                # reserved = the other shards' loads, recomputed per
                # shard since earlier repairs in this pass moved clients.
                moves += m.rebalance(
                    max_moves=min(per_shard, max_moves - moves),
                    reserved=self.loads() - m.loads(),
                )
        remaining = max_moves - moves
        if remaining > 0 and self.n_shards > 1:
            for shard in self._witness_shards():
                if remaining <= 0:
                    break
                manager = self._managers[shard]
                if manager.n_clients:
                    global_loads = self.loads()
                    made = manager.rebalance(
                        max_moves=remaining,
                        reserved=global_loads - manager.loads(),
                    )
                    moves += made
                    remaining -= made
        registry().counter("scale.sharded.rebalance_moves").inc(moves)
        return moves

    def _witness_shards(self) -> Tuple[int, ...]:
        """Shards owning the legs of the current global witness path."""
        l_out, l_in = self.merged_l_vectors()
        used = np.flatnonzero(np.isfinite(l_out))
        if used.size == 0:
            return ()
        ss = np.asarray(
            self._matrix.server_server_distances(self._servers),
            dtype=np.float64,
        )
        sub = ss[np.ix_(used, used)]
        totals = l_out[used][:, None] + sub + l_in[used][None, :]
        flat = int(np.argmax(totals))
        s_out = int(used[flat // used.size])
        s_in = int(used[flat % used.size])
        shards: List[int] = []
        for server, vector_index in ((s_out, 0), (s_in, 1)):
            target = (l_out if vector_index == 0 else l_in)[server]
            for shard, m in enumerate(self._managers):
                if m.n_clients == 0:
                    continue
                if m.l_vectors()[vector_index][server] == target:
                    if shard not in shards:
                        shards.append(shard)
                    break
        return tuple(shards)

    def snapshot(
        self,
    ) -> Tuple[ClientAssignmentProblem, Assignment, Tuple[int, ...]]:
        """Freeze the global state into problem + assignment objects.

        Same contract as :meth:`OnlineAssignmentManager.snapshot`, over
        the union of all shards' connected clients.
        """
        nodes = self.clients
        if not nodes:
            raise InvalidAssignmentError("no clients connected")
        problem = ClientAssignmentProblem(
            self._matrix,
            self._servers,
            clients=list(nodes),
            capacities=self._config.capacity,
        )
        server_of = np.array(
            [self.server_of(n) for n in nodes], dtype=np.int64
        )
        return problem, Assignment(problem, server_of), nodes

    def verify(self) -> bool:
        """Cross-check every shard engine plus the merged global D."""
        for m in self._managers:
            if m.n_clients and not m.verify():
                return False
        # Recompute the global D from scratch via shard snapshots.
        if self.n_clients == 0:
            return True
        d = self.current_d()
        best = -np.inf
        l_out, l_in = self.merged_l_vectors()
        used = np.flatnonzero(np.isfinite(l_out))
        ss = np.asarray(
            self._matrix.server_server_distances(self._servers),
            dtype=np.float64,
        )
        for u in used:
            for v in used:
                best = max(best, l_out[u] + ss[u, v] + l_in[v])
        return abs(best - d) <= 1e-9 * max(1.0, abs(best))

    def __repr__(self) -> str:
        return (
            f"ShardedOnlineManager({self.n_shards} shards, "
            f"{self.n_clients} clients, |S|={self.n_servers})"
        )
