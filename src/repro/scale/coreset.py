"""Client coresets: weighted super-clients with an additive D bound.

The objective D is a *maximum* over client pairs, so two clients whose
latency profiles — the ``2|S|`` vector of distances to and from every
server — differ by at most ``epsilon`` per coordinate are exchangeable
up to ``epsilon`` per path leg. Grid-quantizing profiles at cell size
``cell_size`` groups such clients; keeping one **representative** per
occupied cell with the cell population as its integer weight yields a
reduced instance whose size depends on the latency geometry, not on
|C|.

**Guarantee.** Let ``eps`` be the *achieved* deviation
(:attr:`Coreset.epsilon`): the maximum over clients ``c`` and servers
``s`` of ``|d(c, s) - d(rep(c), s)|`` and ``|d(s, c) - d(s, rep(c))|``.
Expanding a reduced assignment by giving every client its
representative's server changes each interaction path's two client legs
by at most ``eps`` each, hence::

    D_expanded <= D_reduced + 2 * eps

(``tests/scale/test_coreset.py`` enforces this on random instances;
``eps < cell_size`` always holds since cell-mates share every floor
bucket.)

Construction is **chunked**: profiles are synthesized
``chunk_size`` clients at a time through the
:class:`~repro.net.provider.LatencyProvider` views, so peak memory is
O(chunk_size · |S| + |R| · |S|) — a million clients never materialize a
dense ``|C| x |S|`` block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.provider import LatencyProvider
from repro.obs.metrics import registry
from repro.types import IndexArrayLike, as_index_array

#: Default number of clients whose profiles are synthesized per chunk.
DEFAULT_CHUNK_SIZE = 65536


@dataclass(frozen=True)
class Coreset:
    """A weighted reduction of a client set (see module docs).

    ``representatives[g]`` is the *node id* of group ``g``'s
    representative; ``labels[i]`` maps input client ``i`` (positional,
    in the order the client nodes were given) to its group;
    ``weights[g]`` counts the group's members. ``epsilon`` is the
    achieved per-coordinate profile deviation — the quantity the
    ``D_expanded <= D_reduced + 2 * epsilon`` bound is stated in —
    and ``cell_size`` the quantization cell it was built with
    (``epsilon < cell_size`` by construction).
    """

    representatives: np.ndarray
    weights: np.ndarray
    labels: np.ndarray
    epsilon: float
    cell_size: float

    def __post_init__(self) -> None:
        for name in ("representatives", "weights", "labels"):
            getattr(self, name).setflags(write=False)

    @property
    def n_clients(self) -> int:
        """Number of input clients."""
        return int(self.labels.size)

    @property
    def n_representatives(self) -> int:
        """Number of super-clients in the reduced instance."""
        return int(self.representatives.size)

    @property
    def reduction_ratio(self) -> float:
        """``|C| / |R|`` — how many clients one super-client stands for."""
        return self.n_clients / max(1, self.n_representatives)

    def expand(self, server_of_representatives: np.ndarray) -> np.ndarray:
        """Expand a reduced assignment to all clients.

        ``server_of_representatives[g]`` is group ``g``'s server (any
        index space); every member inherits its representative's server.
        """
        server_of = np.asarray(server_of_representatives)
        if server_of.shape != (self.n_representatives,):
            raise InvalidParameterError(
                f"expected one server per representative "
                f"({self.n_representatives}), got shape {server_of.shape}"
            )
        return server_of[self.labels]

    def __repr__(self) -> str:
        return (
            f"Coreset({self.n_clients} clients -> "
            f"{self.n_representatives} representatives, "
            f"epsilon={self.epsilon:.4g})"
        )


def build_coreset(
    provider: LatencyProvider,
    servers: IndexArrayLike,
    clients: IndexArrayLike,
    *,
    cell_size: float,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Coreset:
    """Group ``clients`` into weighted super-clients (see module docs).

    ``cell_size`` is the quantization grid pitch in latency units (ms
    for the bundled data sets): clients whose profiles fall in the same
    grid cell collapse into one representative — the first member
    encountered, so the construction is deterministic in the client
    order. The achieved :attr:`Coreset.epsilon` is measured, not
    assumed, and is strictly below ``cell_size``.
    """
    if not (np.isfinite(cell_size) and cell_size > 0):
        raise InvalidParameterError(
            f"cell_size must be positive, got {cell_size}"
        )
    if chunk_size < 1:
        raise InvalidParameterError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    server_arr = as_index_array(servers, "servers")
    client_arr = as_index_array(clients, "clients")
    if client_arr.size == 0:
        raise InvalidParameterError("need at least one client")

    #: quantized-profile bytes -> group index
    groups: Dict[bytes, int] = {}
    rep_nodes: list = []
    rep_profiles: list = []
    labels = np.empty(client_arr.size, dtype=np.int64)
    epsilon = 0.0

    for start in range(0, client_arr.size, chunk_size):
        block = client_arr[start : start + chunk_size]
        cs = provider.client_server_distances(block, server_arr)
        sc = provider.server_client_distances(server_arr, block)
        # (B, 2|S|) profiles in float64 so quantization cannot alias
        # across dtypes.
        profiles = np.concatenate(
            [np.asarray(cs, dtype=np.float64),
             np.asarray(sc, dtype=np.float64).T],
            axis=1,
        )
        quantized = np.floor(profiles / cell_size).astype(np.int64)
        # Dedup within the chunk first (one sort), then resolve each
        # distinct cell against the global dictionary — the per-row
        # Python cost scales with distinct cells, not clients.
        # return_index points at the *first* chunk member of each cell,
        # and iterating distinct cells by that first occurrence (not in
        # np.unique's sorted-cell order) numbers new groups in global
        # first-encounter order, keeping representatives, labels and
        # weights identical to a naive one-pass scan for every
        # chunk_size.
        cells, first, inverse = np.unique(
            quantized, axis=0, return_index=True, return_inverse=True
        )
        cell_to_group = np.empty(cells.shape[0], dtype=np.int64)
        for j in np.argsort(first):
            key = cells[j].tobytes()
            group = groups.get(key)
            if group is None:
                group = len(rep_nodes)
                groups[key] = group
                member = int(first[j])
                rep_nodes.append(int(block[member]))
                rep_profiles.append(profiles[member])
            cell_to_group[j] = group
        chunk_labels = cell_to_group[inverse.reshape(-1)]
        labels[start : start + block.size] = chunk_labels
        # Achieved deviation, vectorized per chunk: every member against
        # its representative's profile.
        reps = np.asarray(rep_profiles)
        deviation = np.abs(profiles - reps[chunk_labels]).max(initial=0.0)
        epsilon = max(epsilon, float(deviation))

    representatives = np.asarray(rep_nodes, dtype=np.int64)
    weights = np.bincount(labels, minlength=representatives.size).astype(
        np.int64
    )
    metrics = registry()
    metrics.counter("scale.coreset.clients").inc(int(client_arr.size))
    metrics.counter("scale.coreset.representatives").inc(
        int(representatives.size)
    )
    return Coreset(
        representatives=representatives,
        weights=weights,
        labels=labels,
        epsilon=epsilon,
        cell_size=float(cell_size),
    )
