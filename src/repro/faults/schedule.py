"""Deterministic, composable fault schedules.

A :class:`FaultSchedule` bundles the three fault classes of
:mod:`repro.faults.models` behind one queryable object:

- ``is_down(server, t)`` / ``events()`` — the fail-stop crash timeline,
  consumed by the failover controller and the churn driver;
- ``latency_factor(src, dst, t)`` — the product of all latency spikes
  covering a link at a time, applied by the simulator on top of jitter;
- ``message_fate(rng)`` — the per-message drop/duplicate decision.

Everything is deterministic given the schedule contents and the
caller's seeded RNG: building the same schedule and replaying the same
simulation seed yields bit-identical fault sequences, which is what
makes fault-injection tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import FaultScheduleError
from repro.faults.models import (
    DownInterval,
    LatencySpike,
    LossModel,
    MessageFate,
    NoLoss,
    Partition,
    exponential_crash_schedule,
)
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FaultEvent:
    """One edge of a fault timeline: a server changing availability.

    ``kind`` is ``"crash"``/``"recover"`` for the fail-stop timeline
    and ``"partition"``/``"heal"`` for reachability edges.
    """

    time: float
    kind: str  # "crash" | "recover" | "partition" | "heal"
    server: int


class FaultSchedule:
    """Composition of crash timeline, latency spikes and message loss.

    Parameters
    ----------
    down_intervals:
        Fail-stop outages; intervals of one server must not overlap.
    spikes:
        Windowed latency degradations.
    loss:
        Per-message fate model; default :class:`~repro.faults.models.
        NoLoss`.
    partitions:
        Reachability outages (:class:`~repro.faults.models.Partition`);
        windows isolating one server must not overlap.
    """

    def __init__(
        self,
        down_intervals: Iterable[DownInterval] = (),
        *,
        spikes: Iterable[LatencySpike] = (),
        loss: Optional[LossModel] = None,
        partitions: Iterable[Partition] = (),
    ) -> None:
        self._intervals: Tuple[DownInterval, ...] = tuple(
            sorted(down_intervals, key=lambda iv: (iv.start, iv.server))
        )
        self._spikes: Tuple[LatencySpike, ...] = tuple(spikes)
        self._loss = loss if loss is not None else NoLoss()
        self._partitions: Tuple[Partition, ...] = tuple(
            sorted(partitions, key=lambda p: (p.start, p.servers))
        )
        by_server: Dict[int, List[DownInterval]] = {}
        for iv in self._intervals:
            by_server.setdefault(iv.server, []).append(iv)
        for server, ivs in by_server.items():
            for a, b in zip(ivs, ivs[1:]):
                if b.start < a.end:
                    raise FaultScheduleError(
                        f"overlapping outages for server {server}: "
                        f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                    )
        self._by_server = by_server
        unreachable_by_server: Dict[int, List[Partition]] = {}
        for p in self._partitions:
            for server in p.servers:
                unreachable_by_server.setdefault(server, []).append(p)
        for server, windows in unreachable_by_server.items():
            for a, b in zip(windows, windows[1:]):
                if b.start < a.end:
                    raise FaultScheduleError(
                        f"overlapping partitions for server {server}: "
                        f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                    )
        self._unreachable_by_server = unreachable_by_server

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        n_servers: int,
        horizon: float,
        *,
        mttf: float,
        mttr: float,
        seed: SeedLike = 0,
        max_concurrent_down: Optional[int] = None,
        spikes: Iterable[LatencySpike] = (),
        loss: Optional[LossModel] = None,
        partitions: Iterable[Partition] = (),
    ) -> "FaultSchedule":
        """Draw a crash timeline from MTTF/MTTR and wrap it up.

        Thin convenience over :func:`~repro.faults.models.
        exponential_crash_schedule`; see there for semantics.
        ``partitions`` (explicit or from :func:`~repro.faults.models.
        random_partition_schedule`) ride along unchanged.
        """
        intervals = exponential_crash_schedule(
            n_servers,
            horizon,
            mttf=mttf,
            mttr=mttr,
            seed=seed,
            max_concurrent_down=max_concurrent_down,
        )
        return cls(intervals, spikes=spikes, loss=loss, partitions=partitions)

    # ------------------------------------------------------------------
    @property
    def down_intervals(self) -> Tuple[DownInterval, ...]:
        """All outages, sorted by start time."""
        return self._intervals

    @property
    def spikes(self) -> Tuple[LatencySpike, ...]:
        """All latency spikes."""
        return self._spikes

    @property
    def loss(self) -> LossModel:
        """The per-message fate model."""
        return self._loss

    @property
    def partitions(self) -> Tuple[Partition, ...]:
        """All partition windows, sorted by start time."""
        return self._partitions

    def reset(self) -> None:
        """Reset stateful components (burst-loss chains) for a new run."""
        self._loss.reset()

    # ------------------------------------------------------------------
    def is_down(self, server: int, wall: float) -> bool:
        """Whether local server ``server`` is crashed at ``wall``."""
        return any(
            iv.covers(wall) for iv in self._by_server.get(server, ())
        )

    def servers_down(self, wall: float) -> Tuple[int, ...]:
        """Local indices of all servers down at ``wall`` (sorted)."""
        return tuple(
            sorted(
                server
                for server, ivs in self._by_server.items()
                if any(iv.covers(wall) for iv in ivs)
            )
        )

    def events(self) -> List[FaultEvent]:
        """The crash/recover edges in time order.

        Recoveries at ``inf`` (never-recovering crashes) are omitted.
        Ties are ordered recover-before-crash so that a back-to-back
        handoff at the same instant never reports every server down.
        """
        out: List[FaultEvent] = []
        for iv in self._intervals:
            out.append(FaultEvent(iv.start, "crash", iv.server))
            if np.isfinite(iv.end):
                out.append(FaultEvent(iv.end, "recover", iv.server))
        order = {"recover": 0, "crash": 1}
        out.sort(key=lambda e: (e.time, order[e.kind], e.server))
        return out

    # ------------------------------------------------------------------
    def is_unreachable(self, server: int, wall: float) -> bool:
        """Whether ``server`` is behind a partition at ``wall``."""
        return any(
            p.covers(wall)
            for p in self._unreachable_by_server.get(server, ())
        )

    def servers_unreachable(self, wall: float) -> Tuple[int, ...]:
        """Local indices of all servers partitioned at ``wall`` (sorted)."""
        return tuple(
            sorted(
                server
                for server, windows in self._unreachable_by_server.items()
                if any(p.covers(wall) for p in windows)
            )
        )

    def partition_events(self) -> List[FaultEvent]:
        """The partition/heal edges in time order, one per server.

        Heals at ``inf`` are omitted; ties order heal-before-partition,
        mirroring :meth:`events`.
        """
        out: List[FaultEvent] = []
        for p in self._partitions:
            for server in p.servers:
                out.append(FaultEvent(p.start, "partition", server))
                if np.isfinite(p.end):
                    out.append(FaultEvent(p.end, "heal", server))
        order = {"heal": 0, "partition": 1}
        out.sort(key=lambda e: (e.time, order[e.kind], e.server))
        return out

    def all_events(self) -> List[FaultEvent]:
        """Crash/recover and partition/heal edges merged in time order.

        At a shared instant, availability-restoring edges (recover,
        heal) sort before availability-removing ones (crash,
        partition), so a same-instant handoff never reports every
        server unavailable. :meth:`events` keeps its crash/recover-only
        contract for existing consumers.
        """
        order = {"recover": 0, "heal": 1, "crash": 2, "partition": 3}
        merged = self.events() + self.partition_events()
        merged.sort(key=lambda e: (e.time, order[e.kind], e.server))
        return merged

    # ------------------------------------------------------------------
    def latency_factor(self, src_node: int, dst_node: int, wall: float) -> float:
        """Product of all spike factors covering (src, dst) at ``wall``."""
        factor = 1.0
        for spike in self._spikes:
            if spike.applies(src_node, dst_node, wall):
                factor *= spike.factor
        return factor

    def message_fate(self, rng: np.random.Generator) -> str:
        """Fate of the next message (delegates to the loss model)."""
        return self._loss.classify(rng)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"FaultSchedule({len(self._intervals)} outage(s), "
            f"{len(self._spikes)} spike(s), "
            f"{len(self._partitions)} partition(s), loss={self._loss!r})"
        )


def no_faults() -> FaultSchedule:
    """An empty schedule (useful as a default)."""
    return FaultSchedule()
