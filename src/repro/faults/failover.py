"""Failover control: crash evacuation and recovery re-admission.

:class:`FailoverController` drives an
:class:`~repro.algorithms.online.OnlineAssignmentManager` through the
crash/recover edges of a fault schedule:

- **crash** — the dead server is deactivated and its clients evacuated
  capacity-aware onto the survivors, each placed by the same ``L(s')``
  move-cost rule a join uses. When surviving capacity cannot hold every
  stranded client, the controller either fails loudly
  (``shed_policy="strict"``) or degrades gracefully by disconnecting the
  overflow (``shed_policy="shed"``), farthest clients first.
- **recover** — the server is reactivated and, optionally, a bounded
  Distributed-Greedy rebalance re-admits it, pulling back the clients
  whose interaction paths it shortens.

Every transition is recorded (:class:`CrashRecord`,
:class:`RecoveryRecord`) with the D before and after, so experiments
can report the degraded-mode inflation and the post-recovery repair
quality without re-deriving them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from repro.algorithms.online import OnlineAssignmentManager
from repro.core.incremental import count_evaluations
from repro.errors import FailoverError, InvalidParameterError
from repro.faults.schedule import FaultEvent
from repro.obs import registry, span


@dataclass(frozen=True)
class CrashRecord:
    """Outcome of handling one server crash."""

    time: float
    server: int
    #: Clients moved: (client_node, new_local_server) in evacuation order.
    moves: Tuple[Tuple[int, int], ...]
    #: Clients disconnected because no surviving capacity could hold them.
    shed: Tuple[int, ...]
    #: D immediately before the crash.
    d_before: float
    #: D after the evacuation (the degraded-mode value).
    d_degraded: float
    #: Candidate (client, server) evaluations spent on the repair.
    n_evaluations: int = 0

    @property
    def n_evacuated(self) -> int:
        return len(self.moves)

    @property
    def inflation(self) -> float:
        """Degraded D as a multiple of the pre-fault D (1.0 = no change)."""
        if self.d_before <= 0.0:
            return 1.0
        return self.d_degraded / self.d_before

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (floats hex-encoded, bit-exact)."""
        return {
            "time": float(self.time).hex(),
            "server": self.server,
            "moves": [[int(c), int(s)] for c, s in self.moves],
            "shed": [int(c) for c in self.shed],
            "d_before": float(self.d_before).hex(),
            "d_degraded": float(self.d_degraded).hex(),
            "n_evaluations": self.n_evaluations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float.fromhex(data["time"]),
            server=int(data["server"]),
            moves=tuple((int(c), int(s)) for c, s in data["moves"]),
            shed=tuple(int(c) for c in data["shed"]),
            d_before=float.fromhex(data["d_before"]),
            d_degraded=float.fromhex(data["d_degraded"]),
            n_evaluations=int(data["n_evaluations"]),
        )


@dataclass(frozen=True)
class RecoveryRecord:
    """Outcome of handling one server recovery."""

    time: float
    server: int
    #: Bounded Distributed-Greedy moves run after reactivation.
    rebalance_moves: int
    #: D immediately before the recovery (degraded value).
    d_before: float
    #: D after reactivation + rebalance.
    d_after: float
    #: Candidate (client, server) evaluations spent on the re-admission.
    n_evaluations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (floats hex-encoded, bit-exact)."""
        return {
            "time": float(self.time).hex(),
            "server": self.server,
            "rebalance_moves": self.rebalance_moves,
            "d_before": float(self.d_before).hex(),
            "d_after": float(self.d_after).hex(),
            "n_evaluations": self.n_evaluations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RecoveryRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float.fromhex(data["time"]),
            server=int(data["server"]),
            rebalance_moves=int(data["rebalance_moves"]),
            d_before=float.fromhex(data["d_before"]),
            d_after=float.fromhex(data["d_after"]),
            n_evaluations=int(data["n_evaluations"]),
        )


class FailoverController:
    """Applies crash/recover events to an online assignment manager.

    Parameters
    ----------
    manager:
        The live assignment state to repair.
    readmit_moves:
        Distributed-Greedy move budget spent when a server recovers
        (0 disables re-admission rebalancing; clients then only return
        through later joins or explicit rebalances).
    shed_policy:
        ``"strict"`` raises :class:`~repro.errors.FailoverError` when
        surviving capacity cannot hold the stranded clients; ``"shed"``
        disconnects the overflow (farthest-first) and records it.
    """

    def __init__(
        self,
        manager: OnlineAssignmentManager,
        *,
        readmit_moves: int = 8,
        shed_policy: str = "strict",
    ) -> None:
        if readmit_moves < 0:
            raise InvalidParameterError(
                f"readmit_moves must be nonnegative, got {readmit_moves}"
            )
        if shed_policy not in ("strict", "shed"):
            raise InvalidParameterError(
                f"shed_policy must be 'strict' or 'shed', got {shed_policy!r}"
            )
        self._manager = manager
        self._readmit_moves = readmit_moves
        self._shed_policy = shed_policy
        self._crashes: List[CrashRecord] = []
        self._recoveries: List[RecoveryRecord] = []

    # ------------------------------------------------------------------
    @property
    def manager(self) -> OnlineAssignmentManager:
        """The managed assignment state."""
        return self._manager

    @property
    def crash_records(self) -> Tuple[CrashRecord, ...]:
        """All crashes handled, in order."""
        return tuple(self._crashes)

    @property
    def recovery_records(self) -> Tuple[RecoveryRecord, ...]:
        """All recoveries handled, in order."""
        return tuple(self._recoveries)

    def restore_records(
        self,
        crashes: Iterable[CrashRecord],
        recoveries: Iterable[RecoveryRecord],
    ) -> None:
        """Replace the record history (checkpoint recovery path).

        Refuses to overwrite live history: a controller being restored
        must be freshly constructed.
        """
        if self._crashes or self._recoveries:
            raise FailoverError(
                "cannot restore records onto a controller with history"
            )
        self._crashes = list(crashes)
        self._recoveries = list(recoveries)

    # ------------------------------------------------------------------
    def on_crash(self, server: int, *, time: float = 0.0) -> CrashRecord:
        """Handle a fail-stop crash of local server ``server``.

        Deactivates the server and evacuates its clients onto the
        survivors. See the class docstring for the shed semantics.
        """
        manager = self._manager
        d_before = manager.current_d()
        stranded = manager.deactivate_server(server)
        shed: Tuple[int, ...] = ()
        with span(
            "failover.crash", server=server, stranded=len(stranded)
        ), count_evaluations() as counter:
            if stranded and self._shed_policy == "shed":
                if manager.n_usable_servers == 0:
                    # Total outage: nothing to evacuate to — disconnect all.
                    for client in stranded:
                        manager.leave(client)
                    shed = stranded
                else:
                    shed = self._shed_overflow(server, len(stranded))
            moves = tuple(manager.evacuate(server))
        metrics = registry()
        metrics.counter("failover.crashes").inc()
        metrics.counter("failover.evacuations").inc(len(moves))
        metrics.counter("failover.shed").inc(len(shed))
        record = CrashRecord(
            time=time,
            server=server,
            moves=moves,
            shed=shed,
            d_before=d_before,
            d_degraded=manager.current_d(),
            n_evaluations=counter.count,
        )
        self._crashes.append(record)
        return record

    def _shed_overflow(self, server: int, n_stranded: int) -> Tuple[int, ...]:
        """Disconnect stranded clients that no surviving slot can hold."""
        manager = self._manager
        capacity = manager.capacity
        if capacity is None:
            return ()
        loads = manager.loads()
        free = 0
        for s in range(manager.n_servers):
            if (
                s != server
                and manager.is_active(s)
                and manager.is_reachable(s)
            ):
                free += max(0, capacity - int(loads[s]))
        overflow = n_stranded - free
        if overflow <= 0:
            return ()
        # Shed the farthest clients: they inflate the degraded D most
        # and are the least likely to find a nearby surviving slot.
        # Provider block calls keep this dense-free.
        members = np.asarray(manager.members_of(server), dtype=np.int64)
        node = manager.server_nodes[server]
        node_arr = np.array([node], dtype=np.int64)
        to_node = manager.matrix.client_server_distances(members, node_arr)
        from_node = manager.matrix.server_client_distances(node_arr, members)
        round_trip = {
            int(c): max(float(to_node[i, 0]), float(from_node[0, i]))
            for i, c in enumerate(members)
        }
        victims = sorted(
            manager.members_of(server),
            key=lambda c: (-round_trip[c], c),
        )[:overflow]
        for client in victims:
            manager.leave(client)
        return tuple(victims)

    def on_recover(self, server: int, *, time: float = 0.0) -> RecoveryRecord:
        """Handle the recovery of local server ``server``.

        Reactivates it and spends the ``readmit_moves`` budget pulling
        clients back where that shortens their interaction paths.
        """
        manager = self._manager
        d_before = manager.current_d()
        manager.reactivate_server(server)
        moves = 0
        with span(
            "failover.recover", server=server
        ), count_evaluations() as counter:
            if self._readmit_moves > 0 and manager.n_clients > 0:
                moves = manager.rebalance(max_moves=self._readmit_moves)
        registry().counter("failover.recoveries").inc()
        record = RecoveryRecord(
            time=time,
            server=server,
            rebalance_moves=moves,
            d_before=d_before,
            d_after=manager.current_d(),
            n_evaluations=counter.count,
        )
        self._recoveries.append(record)
        return record

    def apply(self, event: FaultEvent) -> None:
        """Dispatch one availability edge from a fault schedule.

        Partition edges need no repair work — members ride out the
        window on their stale assignment — so they pass straight
        through to the manager's reachability mask.
        """
        if event.kind == "crash":
            self.on_crash(event.server, time=event.time)
        elif event.kind == "recover":
            self.on_recover(event.server, time=event.time)
        elif event.kind == "partition":
            self._manager.partition_server(event.server)
            registry().counter("failover.partitions").inc()
        elif event.kind == "heal":
            self._manager.heal_server(event.server)
            registry().counter("failover.heals").inc()
        else:
            raise FailoverError(f"unknown fault event kind {event.kind!r}")
