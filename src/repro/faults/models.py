"""Fault primitives: crashes, message loss, latency spikes.

Three orthogonal fault classes, each deterministic under a seed:

- **Server crashes** — fail-stop :class:`DownInterval` timelines, either
  written explicitly or drawn from exponential MTTF/MTTR distributions
  (:func:`exponential_crash_schedule`).
- **Message faults** — per-message drop/duplicate decisions from a
  :class:`LossModel`: i.i.d. (:class:`IIDLoss`) or bursty two-state
  Gilbert–Elliott (:class:`GilbertElliottLoss`), the standard model for
  correlated Internet packet loss.
- **Latency spikes** — :class:`LatencySpike` multiplies the latency of
  matching links during a wall-clock window, composing multiplicatively
  with any :class:`~repro.net.jitter.JitterModel` the simulation
  already applies.

:class:`~repro.faults.schedule.FaultSchedule` composes the three.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import FaultScheduleError, InvalidParameterError
from repro.utils.rng import SeedLike, ensure_rng


class MessageFate:
    """What the network does to one message (string constants)."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"


# ----------------------------------------------------------------------
# Message loss
# ----------------------------------------------------------------------
class LossModel(abc.ABC):
    """Per-message fate decision, possibly stateful (burst models)."""

    @abc.abstractmethod
    def classify(self, rng: np.random.Generator) -> str:
        """Draw the fate of the next message (a :class:`MessageFate`)."""

    def reset(self) -> None:
        """Return any internal state to its initial value.

        Called once per simulation run so the same model object replays
        identically; stateless models inherit this no-op.
        """


class NoLoss(LossModel):
    """Every message is delivered exactly once."""

    def classify(self, rng: np.random.Generator) -> str:
        return MessageFate.DELIVER

    def __repr__(self) -> str:
        return "NoLoss()"


class IIDLoss(LossModel):
    """Independent per-message loss (and optional duplication).

    Each message is dropped with probability ``p_drop`` and, if not
    dropped, duplicated with probability ``p_duplicate``.
    """

    def __init__(self, p_drop: float, p_duplicate: float = 0.0) -> None:
        for name, p in (("p_drop", p_drop), ("p_duplicate", p_duplicate)):
            if not 0.0 <= p <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {p}"
                )
        self.p_drop = float(p_drop)
        self.p_duplicate = float(p_duplicate)

    def classify(self, rng: np.random.Generator) -> str:
        u = rng.uniform()
        if u < self.p_drop:
            return MessageFate.DROP
        if u < self.p_drop + (1.0 - self.p_drop) * self.p_duplicate:
            return MessageFate.DUPLICATE
        return MessageFate.DELIVER

    def __repr__(self) -> str:
        return f"IIDLoss(p_drop={self.p_drop}, p_duplicate={self.p_duplicate})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) burst loss.

    The channel alternates between a *good* and a *bad* state with
    per-message transition probabilities ``p_good_to_bad`` and
    ``p_bad_to_good``; each state drops messages i.i.d. at its own rate.
    With ``loss_bad`` near 1 and a small ``p_bad_to_good`` this produces
    the correlated loss bursts that make naive retry/percentile planning
    fail, which i.i.d. models cannot express.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.0,
        loss_bad: float = 0.8,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {p}"
                )
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self._bad = False

    def reset(self) -> None:
        self._bad = False

    def classify(self, rng: np.random.Generator) -> str:
        flip = self.p_bad_to_good if self._bad else self.p_good_to_bad
        if rng.uniform() < flip:
            self._bad = not self._bad
        loss = self.loss_bad if self._bad else self.loss_good
        if rng.uniform() < loss:
            return MessageFate.DROP
        return MessageFate.DELIVER

    def steady_state_loss(self) -> float:
        """Long-run loss rate implied by the chain parameters."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return self.loss_good
        p_bad = self.p_good_to_bad / denom
        return (1.0 - p_bad) * self.loss_good + p_bad * self.loss_bad

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_good_to_bad={self.p_good_to_bad}, "
            f"p_bad_to_good={self.p_bad_to_good}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )


# ----------------------------------------------------------------------
# Latency spikes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencySpike:
    """A windowed multiplicative latency degradation.

    During ``[start, start + duration)`` every message on a matching
    link is slowed by ``factor``. ``src``/``dst`` are node indices;
    ``None`` matches every node on that side, so ``LatencySpike(10, 5,
    3.0)`` is a global 3× slowdown and ``LatencySpike(10, 5, 3.0,
    src=7)`` degrades only node 7's outgoing links.
    """

    start: float
    duration: float
    factor: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise FaultScheduleError(
                f"spike duration must be positive, got {self.duration}"
            )
        if self.factor <= 0:
            raise FaultScheduleError(
                f"spike factor must be positive, got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def applies(self, src_node: int, dst_node: int, wall: float) -> bool:
        """Whether this spike affects a message on (src, dst) at ``wall``."""
        if not self.start <= wall < self.end:
            return False
        if self.src is not None and self.src != src_node:
            return False
        if self.dst is not None and self.dst != dst_node:
            return False
        return True


# ----------------------------------------------------------------------
# Server crash timelines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DownInterval:
    """One fail-stop outage of one server.

    ``server`` is the *local* server index (position in the manager's
    server list, matching :class:`~repro.algorithms.online.
    OnlineAssignmentManager`). ``end`` may be ``inf`` for a crash with
    no recovery.
    """

    server: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise FaultScheduleError(
                f"server index must be nonnegative, got {self.server}"
            )
        if not self.end > self.start:
            raise FaultScheduleError(
                f"outage must end after it starts, got "
                f"[{self.start}, {self.end})"
            )

    def covers(self, wall: float) -> bool:
        return self.start <= wall < self.end


@dataclass(frozen=True)
class Partition:
    """A windowed network partition isolating a server subset.

    During ``[start, end)`` the servers in ``servers`` (local indices,
    matching :class:`~repro.algorithms.online.OnlineAssignmentManager`)
    are *unreachable*: still running — their clients ride out the
    window on a stale assignment — but invalid as placement targets.
    This is the fault class that is a partition rather than a crash:
    nothing is lost when the window closes, so no evacuation or
    re-admission rebalance is implied.
    """

    servers: Tuple[int, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        servers = tuple(int(s) for s in self.servers)
        object.__setattr__(self, "servers", servers)
        if not servers:
            raise FaultScheduleError("partition must isolate at least one server")
        if any(s < 0 for s in servers):
            raise FaultScheduleError(
                f"server indices must be nonnegative, got {servers}"
            )
        if len(set(servers)) != len(servers):
            raise FaultScheduleError(f"duplicate servers in partition: {servers}")
        if not self.end > self.start:
            raise FaultScheduleError(
                f"partition must end after it starts, got "
                f"[{self.start}, {self.end})"
            )

    def covers(self, wall: float) -> bool:
        return self.start <= wall < self.end

    def isolates(self, server: int, wall: float) -> bool:
        """Whether ``server`` is unreachable at ``wall`` due to this window."""
        return server in self.servers and self.covers(wall)


def random_partition_schedule(
    n_servers: int,
    horizon: float,
    *,
    mtbp: float,
    mttr: float,
    size: int = 1,
    seed: SeedLike = 0,
) -> List[Partition]:
    """Draw partition windows from mean-time-between/mean-time-to-repair.

    Partition onsets arrive with exponential inter-arrival times of
    mean ``mtbp``; each isolates ``size`` uniformly drawn servers for
    an exponential duration of mean ``mttr``, truncated to
    ``[0, horizon)``. Deterministic under ``seed``. Windows that would
    overlap an admitted window on any shared server are skipped, so
    each server's unreachable intervals never overlap (the invariant
    :class:`~repro.faults.schedule.FaultSchedule` enforces).
    """
    if n_servers < 1:
        raise InvalidParameterError(f"n_servers must be >= 1, got {n_servers}")
    if horizon <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {horizon}")
    if mtbp <= 0 or mttr <= 0:
        raise InvalidParameterError(
            f"mtbp and mttr must be positive, got mtbp={mtbp}, mttr={mttr}"
        )
    if not 1 <= size <= n_servers:
        raise InvalidParameterError(
            f"size must be in [1, {n_servers}], got {size}"
        )
    rng = ensure_rng(seed)
    admitted: List[Partition] = []
    t = float(rng.exponential(mtbp))
    while t < horizon:
        duration = float(rng.exponential(mttr))
        servers = tuple(
            sorted(int(s) for s in rng.choice(n_servers, size=size, replace=False))
        )
        window = Partition(servers, t, min(t + duration, horizon))
        overlaps = any(
            set(window.servers) & set(other.servers)
            and window.start < other.end
            and other.start < window.end
            for other in admitted
        )
        if not overlaps:
            admitted.append(window)
        t += float(rng.exponential(mtbp))
    return admitted


def exponential_crash_schedule(
    n_servers: int,
    horizon: float,
    *,
    mttf: float,
    mttr: float,
    seed: SeedLike = 0,
    max_concurrent_down: Optional[int] = None,
) -> List[DownInterval]:
    """Draw per-server crash/recover timelines from MTTF/MTTR.

    Each server alternates up-time ``~ Exp(mean=mttf)`` and down-time
    ``~ Exp(mean=mttr)`` independently, truncated to ``[0, horizon)``.
    Deterministic under ``seed``. ``max_concurrent_down`` caps how many
    servers may be down at once (extra crashes are skipped, keeping at
    least ``n_servers - max_concurrent_down`` servers up at all times) —
    set it when the consumer must always have somewhere to evacuate to.
    """
    if n_servers < 1:
        raise InvalidParameterError(
            f"n_servers must be >= 1, got {n_servers}"
        )
    if horizon <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {horizon}")
    if mttf <= 0 or mttr <= 0:
        raise InvalidParameterError(
            f"mttf and mttr must be positive, got mttf={mttf}, mttr={mttr}"
        )
    if max_concurrent_down is not None and max_concurrent_down < 1:
        raise InvalidParameterError(
            f"max_concurrent_down must be >= 1, got {max_concurrent_down}"
        )
    rng = ensure_rng(seed)
    raw: List[DownInterval] = []
    for server in range(n_servers):
        t = float(rng.exponential(mttf))
        while t < horizon:
            down = float(rng.exponential(mttr))
            raw.append(
                DownInterval(server, t, min(t + down, horizon))
            )
            t += down + float(rng.exponential(mttf))
    if max_concurrent_down is None:
        return sorted(raw, key=lambda iv: (iv.start, iv.server))
    # Enforce the concurrency cap by admitting crashes in start order
    # and skipping any that would exceed it.
    admitted: List[DownInterval] = []
    for iv in sorted(raw, key=lambda iv: (iv.start, iv.server)):
        active = sum(
            1 for other in admitted if other.covers(iv.start)
        )
        if active < max_concurrent_down:
            admitted.append(iv)
    return admitted
