"""Fault injection and failover for the client assignment system.

The paper's §VI argues that client assignment — unlike server placement
— "can be adjusted promptly to adapt to system dynamics". This package
makes the claim testable under *hostile* dynamics rather than benign
churn: fail-stop server crashes, lossy and bursty links, and latency
spikes, all deterministic under a seed.

- :mod:`repro.faults.models` — the fault primitives: crash/recovery
  interval generators (explicit timeline or MTTF/MTTR), message-loss
  models (i.i.d. and Gilbert–Elliott burst loss, with duplication),
  windowed latency spikes composable with
  :class:`~repro.net.jitter.JitterModel`, and network
  :class:`Partition` windows that make a server subset *unreachable*
  (still running, excluded from placement) rather than down.
- :mod:`repro.faults.schedule` — :class:`FaultSchedule`, the seedable
  composition the simulator and the failover controller both consume.
- :mod:`repro.faults.failover` — :class:`FailoverController`: evacuates
  a crashed server's clients capacity-aware using the same ``L(s')``
  move-cost machinery as joins, tracks the degraded D, and re-admits
  recovered servers via bounded Distributed-Greedy moves.
- :mod:`repro.faults.experiment` — a churn driver that interleaves
  crash/recover cycles with joins and leaves and records the full
  D-over-time recovery timeline (``dia-cap faults``,
  ``benchmarks/bench_faults.py``).
"""

from repro.faults.models import (
    DownInterval,
    GilbertElliottLoss,
    IIDLoss,
    LatencySpike,
    LossModel,
    MessageFate,
    NoLoss,
    Partition,
    exponential_crash_schedule,
    random_partition_schedule,
)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.faults.failover import (
    CrashRecord,
    FailoverController,
    RecoveryRecord,
)
from repro.faults.experiment import (
    CrashCycle,
    FaultChurnResult,
    FaultTracePoint,
    simulate_churn_with_faults,
)

__all__ = [
    "MessageFate",
    "LossModel",
    "NoLoss",
    "IIDLoss",
    "GilbertElliottLoss",
    "LatencySpike",
    "DownInterval",
    "Partition",
    "exponential_crash_schedule",
    "random_partition_schedule",
    "FaultEvent",
    "FaultSchedule",
    "FailoverController",
    "CrashRecord",
    "RecoveryRecord",
    "FaultTracePoint",
    "CrashCycle",
    "FaultChurnResult",
    "simulate_churn_with_faults",
]
