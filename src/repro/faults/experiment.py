"""Fault-injection churn experiments: D over time through crash cycles.

:func:`simulate_churn_with_faults` extends
:func:`~repro.algorithms.online.simulate_churn` with a
:class:`~repro.faults.schedule.FaultSchedule`: Poisson-style joins and
leaves tick at unit-spaced times while the schedule's crash/recover
edges fire in between, each handled by a
:class:`~repro.faults.failover.FailoverController`. The result carries
the full D-over-time trace plus per-crash :class:`CrashCycle` summaries
— pre-fault D, degraded D after evacuation, and D after the server
returns and a bounded rebalance runs — which is exactly the recovery
timeline the paper's §VI "prompt adaptation" argument predicts client
assignment can deliver and server placement cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.online import OnlineAssignmentManager, OnlineConfig
from repro.errors import CapacityError, InvalidParameterError
from repro.faults.failover import (
    CrashRecord,
    FailoverController,
    RecoveryRecord,
)
from repro.faults.schedule import FaultSchedule
from repro.types import IndexArrayLike, as_index_array
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FaultTracePoint:
    """State after one timeline event."""

    time: float
    event: str  # "join" | "leave" | "crash" | "recover" | "rebalance"
    n_clients: int
    n_active_servers: int
    d: float


@dataclass(frozen=True)
class CrashCycle:
    """One crash → degraded mode → recovery arc, summarized."""

    server: int
    crash_time: float
    #: None when the server never recovers within the horizon.
    recover_time: Optional[float]
    #: D just before the crash.
    d_pre_fault: float
    #: D after the evacuation (degraded mode).
    d_degraded: float
    #: D after recovery + bounded rebalance; None without a recovery.
    d_after_recovery: Optional[float]
    n_evacuated: int
    n_shed: int
    rebalance_moves: int

    @property
    def inflation(self) -> float:
        """Degraded D over pre-fault D (1.0 = crash cost nothing)."""
        if self.d_pre_fault <= 0.0:
            return 1.0
        return self.d_degraded / self.d_pre_fault

    @property
    def recovery_ratio(self) -> Optional[float]:
        """Post-recovery D over pre-fault D (→ 1.0 = full repair)."""
        if self.d_after_recovery is None:
            return None
        if self.d_pre_fault <= 0.0:
            return 1.0
        return self.d_after_recovery / self.d_pre_fault


@dataclass(frozen=True)
class FaultChurnResult:
    """Outcome of a fault-injection churn run."""

    trace: Tuple[FaultTracePoint, ...]
    crash_records: Tuple[CrashRecord, ...]
    recovery_records: Tuple[RecoveryRecord, ...]
    moves_by_rebalance: int

    def mean_d(self) -> float:
        """Time-average D (ignoring empty-system points)."""
        values = [p.d for p in self.trace if p.n_clients > 0]
        return float(np.mean(values)) if values else 0.0

    def peak_d(self) -> float:
        """Worst D seen anywhere on the trace."""
        return max((p.d for p in self.trace), default=0.0)

    def final_d(self) -> float:
        """D after the last event."""
        return self.trace[-1].d if self.trace else 0.0

    def total_shed(self) -> int:
        """Clients disconnected because no surviving capacity held them."""
        return sum(len(r.shed) for r in self.crash_records)

    def cycles(self) -> Tuple[CrashCycle, ...]:
        """Pair each crash with its recovery into arc summaries."""
        recoveries = list(self.recovery_records)
        out: List[CrashCycle] = []
        for crash in self.crash_records:
            match: Optional[RecoveryRecord] = None
            for i, rec in enumerate(recoveries):
                if rec.server == crash.server and rec.time >= crash.time:
                    match = recoveries.pop(i)
                    break
            out.append(
                CrashCycle(
                    server=crash.server,
                    crash_time=crash.time,
                    recover_time=None if match is None else match.time,
                    d_pre_fault=crash.d_before,
                    d_degraded=crash.d_degraded,
                    d_after_recovery=None if match is None else match.d_after,
                    n_evacuated=crash.n_evacuated,
                    n_shed=len(crash.shed),
                    rebalance_moves=0 if match is None else match.rebalance_moves,
                )
            )
        return tuple(out)


def simulate_churn_with_faults(
    matrix,
    servers: IndexArrayLike,
    schedule: FaultSchedule,
    *,
    n_events: int = 200,
    join_probability: float = 0.55,
    rebalance_every: Optional[int] = None,
    rebalance_moves: int = 8,
    capacity: Optional[int] = None,
    join_policy: str = "greedy",
    readmit_moves: int = 8,
    shed_policy: str = "shed",
    seed: SeedLike = 0,
) -> FaultChurnResult:
    """Replay churn through crash/recover cycles and record D over time.

    Churn event ``i`` ticks at time ``i`` (unit spacing); the schedule's
    crash/recover edges fire at their own times in between, so a
    schedule built with ``horizon = n_events`` spans the whole run.
    Joins, leaves and periodic rebalances follow the same rules as
    :func:`~repro.algorithms.online.simulate_churn`; crashes evacuate
    through a :class:`~repro.faults.failover.FailoverController` with
    the given ``readmit_moves`` and ``shed_policy``. Fully deterministic
    under ``seed`` for a fixed schedule.
    """
    if not 0.0 < join_probability < 1.0:
        raise InvalidParameterError("join_probability must be in (0, 1)")
    if n_events < 1:
        raise InvalidParameterError(f"n_events must be >= 1, got {n_events}")
    rng = ensure_rng(seed)
    schedule.reset()
    manager = OnlineAssignmentManager(
        matrix, servers, OnlineConfig(capacity=capacity, join_policy=join_policy)
    )
    controller = FailoverController(
        manager, readmit_moves=readmit_moves, shed_policy=shed_policy
    )
    server_set = set(int(s) for s in as_index_array(servers))
    candidates = [u for u in range(matrix.n_nodes) if u not in server_set]
    fault_events = [e for e in schedule.events() if e.time < n_events]
    next_fault = 0
    trace: List[FaultTracePoint] = []
    total_moves = 0

    def snap(time: float, event: str) -> None:
        trace.append(
            FaultTracePoint(
                time,
                event,
                manager.n_clients,
                manager.n_active_servers,
                manager.current_d(),
            )
        )

    for i in range(n_events):
        # Fire every fault edge due before this churn tick.
        while next_fault < len(fault_events) and fault_events[next_fault].time <= i:
            event = fault_events[next_fault]
            next_fault += 1
            controller.apply(event)
            snap(event.time, event.kind)
        connected = manager.clients
        free = [u for u in candidates if u not in set(connected)]
        do_join = (not connected) or (free and rng.uniform() < join_probability)
        if do_join and free:
            node = int(free[rng.integers(0, len(free))])
            try:
                manager.join(node)
                event_name = "join"
            except CapacityError:
                if not connected:
                    continue
                manager.leave(int(connected[rng.integers(0, len(connected))]))
                event_name = "leave"
        elif connected:
            manager.leave(int(connected[rng.integers(0, len(connected))]))
            event_name = "leave"
        else:
            continue
        snap(float(i), event_name)
        if rebalance_every and (i + 1) % rebalance_every == 0 and manager.n_clients:
            total_moves += manager.rebalance(max_moves=rebalance_moves)
            snap(float(i), "rebalance")
    # Fault edges scheduled after the last churn tick but inside the
    # horizon still fire (e.g. a recovery just before the end).
    while next_fault < len(fault_events):
        event = fault_events[next_fault]
        next_fault += 1
        controller.apply(event)
        snap(event.time, event.kind)
    return FaultChurnResult(
        trace=tuple(trace),
        crash_records=controller.crash_records,
        recovery_records=controller.recovery_records,
        moves_by_rebalance=total_moves,
    )
