"""dia-cap: client assignment for continuous distributed interactive
applications.

A complete reproduction of Zhang & Tang, *The Client Assignment Problem
for Continuous Distributed Interactive Applications* (ICDCS 2011):
problem formulation and interactivity analysis (:mod:`repro.core`), the
four heuristic assignment algorithms with capacitated variants
(:mod:`repro.algorithms`), server placement (:mod:`repro.placement`),
synthetic Internet latency data sets (:mod:`repro.datasets`), a
discrete-event DIA simulator validating the consistency/fairness
analysis (:mod:`repro.sim`), and the full §V experiment harness
(:mod:`repro.experiments`).

Quickstart::

    from repro import (
        ClientAssignmentProblem,
        interaction_lower_bound,
        max_interaction_path_length,
    )
    from repro.algorithms import distributed_greedy
    from repro.datasets import synthesize_meridian_like
    from repro.placement import kcenter_a

    matrix = synthesize_meridian_like(400, seed=0)
    servers = kcenter_a(matrix, 40, seed=0)
    problem = ClientAssignmentProblem(matrix, servers)
    assignment = distributed_greedy(problem)
    d = max_interaction_path_length(assignment)
    print(d / interaction_lower_bound(problem))  # normalized interactivity
"""

from repro._version import __version__
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    OffsetSchedule,
    interaction_lower_bound,
    max_interaction_path_length,
    normalized_interactivity,
)
from repro.errors import ReproError
from repro.net.latency import LatencyMatrix

__all__ = [
    "__version__",
    "LatencyMatrix",
    "ClientAssignmentProblem",
    "Assignment",
    "OffsetSchedule",
    "max_interaction_path_length",
    "normalized_interactivity",
    "interaction_lower_bound",
    "ReproError",
]
