"""Ablation experiments for the design choices DESIGN.md calls out.

Four studies beyond the paper's figures:

1. :func:`ablation_dga_initial` — Distributed-Greedy's initial
   assignment (the paper chooses Nearest-Server without comparison):
   NSA vs LFB vs random vs best-single-server starts.
2. :func:`ablation_greedy_cost` — the Δl/Δn amortized cost of Greedy
   Assignment vs plain Δl (is the amortization doing work?).
3. :func:`ablation_triangle_violations` — how NSA's gap to the greedy
   pair grows with the latency matrix's triangle-violation rate (the
   mechanism behind §V footnote 2).
4. :func:`ablation_estimated_latencies` — run the heuristics on
   Vivaldi-estimated latencies and score the resulting assignments on
   the *true* matrix: the cost of avoiding O(n^2) measurement.
5. :func:`ablation_placement_strategies` — K-center vs K-median vs
   medoids vs (best-of-)random placement, under the best assignment
   algorithm: how much interactivity does placement itself decide?
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import (
    distributed_greedy_detailed,
    get_algorithm,
    longest_first_batch,
    nearest_server,
    random_assignment,
    run_algorithm,
)
from repro.algorithms.baselines import best_single_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.datasets.meridian import meridian_model
from repro.experiments.reporting import format_table
from repro.net.coordinates import embed_latencies
from repro.net.latency import LatencyMatrix
from repro.parallel import TrialPool, instance_cache
from repro.parallel.pool import run_trials, successful_values
from repro.placement import kcenter_a, kcenter_b, random_placement
from repro.placement.extra import (
    best_of_random_placement,
    k_median_placement,
    medoid_placement,
)
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class AblationResult:
    """A titled table of ablation measurements."""

    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def render(self) -> str:
        """ASCII-table rendering."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"

    def column(self, header: str) -> List[object]:
        """One column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


# ----------------------------------------------------------------------
# 1. DGA initial assignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationRunTask:
    """One run of a per-run ablation trial (picklable task)."""

    n_servers: int
    seed: Optional[int]
    #: Strategy/variant name for per-variant trials; unused otherwise.
    variant: Optional[str] = None


_DGA_STARTERS = {
    "nearest-server": lambda p, s: nearest_server(p),
    "longest-first-batch": lambda p, s: longest_first_batch(p),
    "random": lambda p, s: random_assignment(p, seed=s),
    "best-single-server": lambda p, s: best_single_server(p),
}


def _dga_initial_trial(
    matrix: LatencyMatrix, task: AblationRunTask
) -> Dict[str, Tuple[float, int]]:
    """One run: DGA from every starter on one random placement."""
    cached = instance_cache().instance(
        matrix, "random", task.n_servers, task.seed
    )
    problem, lb = cached.problem, cached.lower_bound
    out: Dict[str, Tuple[float, int]] = {}
    for name, make in _DGA_STARTERS.items():
        result = distributed_greedy_detailed(
            problem, initial=make(problem, task.seed)
        )
        out[name] = (result.final_d / lb, result.n_modifications)
    return out


def ablation_dga_initial(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 40,
    n_runs: int = 10,
    seed: int = 0,
    pool: Optional[TrialPool] = None,
) -> AblationResult:
    """Distributed-Greedy from different starting assignments."""
    starters = _DGA_STARTERS
    tasks = [
        AblationRunTask(n_servers=n_servers, seed=derive_seed(seed, 31, run))
        for run in range(n_runs)
    ]
    outcomes = run_trials(_dga_initial_trial, tasks, matrix=matrix, pool=pool)
    runs = successful_values(outcomes, context="DGA-initial ablation")
    sums: Dict[str, List[float]] = {name: [] for name in starters}
    mods: Dict[str, List[int]] = {name: [] for name in starters}
    for per_run in runs:
        for name, (norm, n_mods) in per_run.items():
            sums[name].append(norm)
            mods[name].append(n_mods)
    rows = [
        (
            name,
            float(np.mean(sums[name])),
            float(np.std(sums[name])),
            float(np.mean(mods[name])),
        )
        for name in starters
    ]
    return AblationResult(
        title=(
            f"Ablation: DGA initial assignment ({n_servers} random servers, "
            f"{n_runs} runs)"
        ),
        headers=("initial", "final norm (mean)", "std", "modifications (mean)"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 2. Greedy cost metric
# ----------------------------------------------------------------------
_GREEDY_COST_VARIANTS = ("greedy", "greedy-absolute")


def _greedy_cost_trial(
    matrix: LatencyMatrix, task: AblationRunTask
) -> Dict[str, float]:
    """One run: both greedy cost variants on one random placement."""
    cached = instance_cache().instance(
        matrix, "random", task.n_servers, task.seed
    )
    return {
        name: run_algorithm(name, cached.problem, seed=task.seed).d
        / cached.lower_bound
        for name in _GREEDY_COST_VARIANTS
    }


def ablation_greedy_cost(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 40,
    n_runs: int = 10,
    seed: int = 0,
    pool: Optional[TrialPool] = None,
) -> AblationResult:
    """Δl/Δn (paper) vs plain Δl pair selection in Greedy Assignment."""
    variants = _GREEDY_COST_VARIANTS
    tasks = [
        AblationRunTask(n_servers=n_servers, seed=derive_seed(seed, 32, run))
        for run in range(n_runs)
    ]
    outcomes = run_trials(_greedy_cost_trial, tasks, matrix=matrix, pool=pool)
    runs = successful_values(outcomes, context="greedy-cost ablation")
    samples: Dict[str, List[float]] = {v: [] for v in variants}
    for per_run in runs:
        for name, norm in per_run.items():
            samples[name].append(norm)
    rows = [
        (name, float(np.mean(samples[name])), float(np.std(samples[name])))
        for name in variants
    ]
    return AblationResult(
        title=(
            f"Ablation: Greedy pair-selection cost ({n_servers} random "
            f"servers, {n_runs} runs)"
        ),
        headers=("variant", "norm (mean)", "std"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 3. Triangle-inequality violation rate
# ----------------------------------------------------------------------
def ablation_triangle_violations(
    *,
    n_nodes: int = 200,
    n_servers: int = 20,
    spike_fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    n_runs: int = 5,
    seed: int = 0,
) -> AblationResult:
    """NSA's penalty as a function of the matrix's non-metricity.

    Generates Meridian-like matrices sweeping the BGP-spike fraction,
    measures the realized triangle-violation rate, and reports the mean
    normalized interactivity of NSA vs Distributed-Greedy.
    """
    rows = []
    for fraction in spike_fractions:
        model = dataclasses.replace(
            meridian_model(n_nodes), spike_fraction=fraction
        )
        matrix = model.generate(derive_seed(seed, 33, int(fraction * 1000)))
        violation = matrix.triangle_inequality_report(
            max_triples=50_000
        ).violation_rate
        nsa_vals, dga_vals = [], []
        for run in range(n_runs):
            run_seed = derive_seed(seed, 34, int(fraction * 1000), run)
            servers = random_placement(matrix, n_servers, seed=run_seed)
            problem = ClientAssignmentProblem(matrix, servers)
            lb = interaction_lower_bound(problem)
            nsa_vals.append(
                max_interaction_path_length(nearest_server(problem)) / lb
            )
            dga_vals.append(distributed_greedy_detailed(problem).final_d / lb)
        rows.append(
            (
                fraction,
                violation,
                float(np.mean(nsa_vals)),
                float(np.mean(dga_vals)),
                float(np.mean(nsa_vals)) / float(np.mean(dga_vals)),
            )
        )
    return AblationResult(
        title=(
            "Ablation: NSA penalty vs triangle-inequality violations "
            f"({n_nodes} nodes, {n_servers} servers, {n_runs} runs/point)"
        ),
        headers=(
            "spike fraction",
            "violation rate",
            "NSA norm",
            "DGA norm",
            "NSA/DGA",
        ),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 4. Estimated (Vivaldi) latencies
# ----------------------------------------------------------------------
def ablation_estimated_latencies(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    algorithms: Sequence[str] = (
        "nearest-server",
        "greedy",
        "distributed-greedy",
    ),
    embedding_rounds: int = 30,
    seed: int = 0,
) -> AblationResult:
    """Solve on Vivaldi-estimated latencies, score on the truth.

    For each algorithm: normalized interactivity of the assignment
    computed from measured latencies vs from coordinates, both evaluated
    on the measured matrix.
    """
    estimated, quality = embed_latencies(
        matrix, rounds=embedding_rounds, seed=seed
    )
    servers = random_placement(matrix, n_servers, seed=seed)
    true_problem = ClientAssignmentProblem(matrix, servers)
    est_problem = ClientAssignmentProblem(estimated, servers)
    lb = interaction_lower_bound(true_problem)
    rows = []
    for name in algorithms:
        fn = get_algorithm(name)
        measured = fn(true_problem, seed=seed)
        from_coords = fn(est_problem, seed=seed)
        # Re-score the coordinate-driven assignment on the true matrix.
        rescored = Assignment(true_problem, from_coords.server_of)
        d_measured = max_interaction_path_length(measured) / lb
        d_coords = max_interaction_path_length(rescored) / lb
        rows.append(
            (name, d_measured, d_coords, d_coords / d_measured)
        )
    title = (
        "Ablation: measured vs Vivaldi-estimated latencies "
        f"({n_servers} random servers; embedding median rel. error "
        f"{quality.median_relative_error:.1%})"
    )
    return AblationResult(
        title=title,
        headers=("algorithm", "measured norm", "estimated norm", "penalty"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 5. Placement strategies
# ----------------------------------------------------------------------
_PLACEMENT_ABLATION_STRATEGIES = {
    "random": random_placement,
    "best-of-16-random": best_of_random_placement,
    "k-center-a": kcenter_a,
    "k-center-b": kcenter_b,
    "k-median": k_median_placement,
    "medoids": medoid_placement,
}


def _placement_strategy_trial(
    matrix: LatencyMatrix, task: AblationRunTask
) -> float:
    """One run: DGA's normalized D under one placement strategy.

    Strategies beyond the canonical registry (best-of-random, k-median,
    medoids) are not instance-cache keys, so this trial builds its
    problem directly.
    """
    place = _PLACEMENT_ABLATION_STRATEGIES[task.variant]
    servers = place(matrix, task.n_servers, seed=task.seed)
    problem = ClientAssignmentProblem(matrix, servers)
    lb = interaction_lower_bound(problem)
    return distributed_greedy_detailed(problem).final_d / lb


def ablation_placement_strategies(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    n_runs: int = 5,
    seed: int = 0,
    pool: Optional[TrialPool] = None,
) -> AblationResult:
    """Interactivity of DGA under different server placements."""
    strategies = _PLACEMENT_ABLATION_STRATEGIES
    tasks = [
        AblationRunTask(
            n_servers=n_servers,
            seed=derive_seed(seed, 35, run),
            variant=name,
        )
        for name in strategies
        for run in range(n_runs)
    ]
    outcomes = run_trials(
        _placement_strategy_trial, tasks, matrix=matrix, pool=pool
    )
    norms_by_strategy: Dict[str, List[float]] = {name: [] for name in strategies}
    for task, outcome in zip(tasks, outcomes):
        if outcome.ok:
            norms_by_strategy[task.variant].append(outcome.value)
    rows = []
    for name in strategies:
        norms = norms_by_strategy[name]
        if not norms:
            from repro.errors import TrialExecutionError

            raise TrialExecutionError(
                f"all placement-ablation trials for {name!r} failed"
            )
        rows.append((name, float(np.mean(norms)), float(np.std(norms))))
    return AblationResult(
        title=(
            f"Ablation: server placement strategies under DGA "
            f"({n_servers} servers, {n_runs} runs)"
        ),
        headers=("placement", "DGA norm (mean)", "std"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 6. Measurement error (King campaign)
# ----------------------------------------------------------------------
def ablation_measurement_error(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    probes_sweep: Sequence[int] = (1, 3, 10),
    jitter_sigma: float = 0.3,
    seed: int = 0,
) -> AblationResult:
    """Assign on King-measured latencies, score on the truth.

    Simulates measurement campaigns with increasing probe counts
    (less per-pair noise) and reports the interactivity penalty of the
    resulting assignments relative to assigning on the true matrix.
    Complements :func:`ablation_estimated_latencies` (coordinates) with
    the direct-measurement error mode.
    """
    from repro.datasets.measurement import (
        MeasurementCampaign,
        measurement_error_report,
        simulate_king_measurements,
    )
    from repro.net.jitter import LogNormalJitter

    servers = random_placement(matrix, n_servers, seed=seed)
    true_problem = ClientAssignmentProblem(matrix, servers)
    lb = interaction_lower_bound(true_problem)
    baseline = (
        max_interaction_path_length(get_algorithm("greedy")(true_problem)) / lb
    )
    rows = [("truth", 0.0, baseline, 1.0)]
    for probes in probes_sweep:
        campaign = MeasurementCampaign(
            probes_per_pair=probes, jitter=LogNormalJitter(jitter_sigma)
        )
        raw = simulate_king_measurements(matrix, campaign, seed=seed)
        measured = LatencyMatrix(raw)
        med_err, _p90 = measurement_error_report(matrix, raw)
        measured_problem = ClientAssignmentProblem(measured, servers)
        assignment = get_algorithm("greedy")(measured_problem, seed=seed)
        rescored = Assignment(true_problem, assignment.server_of)
        norm = max_interaction_path_length(rescored) / lb
        rows.append((f"{probes} probe(s)", med_err, norm, norm / baseline))
    return AblationResult(
        title=(
            "Ablation: King measurement error vs assignment quality "
            f"({n_servers} random servers, lognormal sigma={jitter_sigma})"
        ),
        headers=("latency source", "median rel. error", "norm", "penalty"),
        rows=tuple(rows),
    )
