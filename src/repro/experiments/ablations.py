"""Ablation experiments for the design choices DESIGN.md calls out.

Four studies beyond the paper's figures:

1. :func:`ablation_dga_initial` — Distributed-Greedy's initial
   assignment (the paper chooses Nearest-Server without comparison):
   NSA vs LFB vs random vs best-single-server starts.
2. :func:`ablation_greedy_cost` — the Δl/Δn amortized cost of Greedy
   Assignment vs plain Δl (is the amortization doing work?).
3. :func:`ablation_triangle_violations` — how NSA's gap to the greedy
   pair grows with the latency matrix's triangle-violation rate (the
   mechanism behind §V footnote 2).
4. :func:`ablation_estimated_latencies` — run the heuristics on
   Vivaldi-estimated latencies and score the resulting assignments on
   the *true* matrix: the cost of avoiding O(n^2) measurement.
5. :func:`ablation_placement_strategies` — K-center vs K-median vs
   medoids vs (best-of-)random placement, under the best assignment
   algorithm: how much interactivity does placement itself decide?
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.algorithms import (
    distributed_greedy_detailed,
    get_algorithm,
    longest_first_batch,
    nearest_server,
    random_assignment,
    run_algorithm,
)
from repro.algorithms.baselines import best_single_server
from repro.core import (
    Assignment,
    ClientAssignmentProblem,
    interaction_lower_bound,
    max_interaction_path_length,
)
from repro.datasets.meridian import meridian_model
from repro.experiments.reporting import format_table
from repro.net.coordinates import embed_latencies
from repro.net.latency import LatencyMatrix
from repro.placement import kcenter_a, kcenter_b, random_placement
from repro.placement.extra import (
    best_of_random_placement,
    k_median_placement,
    medoid_placement,
)
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class AblationResult:
    """A titled table of ablation measurements."""

    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def render(self) -> str:
        """ASCII-table rendering."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"

    def column(self, header: str) -> List[object]:
        """One column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


# ----------------------------------------------------------------------
# 1. DGA initial assignment
# ----------------------------------------------------------------------
def ablation_dga_initial(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 40,
    n_runs: int = 10,
    seed: int = 0,
) -> AblationResult:
    """Distributed-Greedy from different starting assignments."""
    starters = {
        "nearest-server": lambda p, s: nearest_server(p),
        "longest-first-batch": lambda p, s: longest_first_batch(p),
        "random": lambda p, s: random_assignment(p, seed=s),
        "best-single-server": lambda p, s: best_single_server(p),
    }
    sums: Dict[str, List[float]] = {name: [] for name in starters}
    mods: Dict[str, List[int]] = {name: [] for name in starters}
    for run in range(n_runs):
        run_seed = derive_seed(seed, 31, run)
        servers = random_placement(matrix, n_servers, seed=run_seed)
        problem = ClientAssignmentProblem(matrix, servers)
        lb = interaction_lower_bound(problem)
        for name, make in starters.items():
            result = distributed_greedy_detailed(
                problem, initial=make(problem, run_seed)
            )
            sums[name].append(result.final_d / lb)
            mods[name].append(result.n_modifications)
    rows = [
        (
            name,
            float(np.mean(sums[name])),
            float(np.std(sums[name])),
            float(np.mean(mods[name])),
        )
        for name in starters
    ]
    return AblationResult(
        title=(
            f"Ablation: DGA initial assignment ({n_servers} random servers, "
            f"{n_runs} runs)"
        ),
        headers=("initial", "final norm (mean)", "std", "modifications (mean)"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 2. Greedy cost metric
# ----------------------------------------------------------------------
def ablation_greedy_cost(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 40,
    n_runs: int = 10,
    seed: int = 0,
) -> AblationResult:
    """Δl/Δn (paper) vs plain Δl pair selection in Greedy Assignment."""
    variants = ("greedy", "greedy-absolute")
    samples: Dict[str, List[float]] = {v: [] for v in variants}
    for run in range(n_runs):
        run_seed = derive_seed(seed, 32, run)
        servers = random_placement(matrix, n_servers, seed=run_seed)
        problem = ClientAssignmentProblem(matrix, servers)
        lb = interaction_lower_bound(problem)
        for name in variants:
            result = run_algorithm(name, problem, seed=run_seed)
            samples[name].append(result.d / lb)
    rows = [
        (name, float(np.mean(samples[name])), float(np.std(samples[name])))
        for name in variants
    ]
    return AblationResult(
        title=(
            f"Ablation: Greedy pair-selection cost ({n_servers} random "
            f"servers, {n_runs} runs)"
        ),
        headers=("variant", "norm (mean)", "std"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 3. Triangle-inequality violation rate
# ----------------------------------------------------------------------
def ablation_triangle_violations(
    *,
    n_nodes: int = 200,
    n_servers: int = 20,
    spike_fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    n_runs: int = 5,
    seed: int = 0,
) -> AblationResult:
    """NSA's penalty as a function of the matrix's non-metricity.

    Generates Meridian-like matrices sweeping the BGP-spike fraction,
    measures the realized triangle-violation rate, and reports the mean
    normalized interactivity of NSA vs Distributed-Greedy.
    """
    rows = []
    for fraction in spike_fractions:
        model = dataclasses.replace(
            meridian_model(n_nodes), spike_fraction=fraction
        )
        matrix = model.generate(derive_seed(seed, 33, int(fraction * 1000)))
        violation = matrix.triangle_inequality_report(
            max_triples=50_000
        ).violation_rate
        nsa_vals, dga_vals = [], []
        for run in range(n_runs):
            run_seed = derive_seed(seed, 34, int(fraction * 1000), run)
            servers = random_placement(matrix, n_servers, seed=run_seed)
            problem = ClientAssignmentProblem(matrix, servers)
            lb = interaction_lower_bound(problem)
            nsa_vals.append(
                max_interaction_path_length(nearest_server(problem)) / lb
            )
            dga_vals.append(distributed_greedy_detailed(problem).final_d / lb)
        rows.append(
            (
                fraction,
                violation,
                float(np.mean(nsa_vals)),
                float(np.mean(dga_vals)),
                float(np.mean(nsa_vals)) / float(np.mean(dga_vals)),
            )
        )
    return AblationResult(
        title=(
            "Ablation: NSA penalty vs triangle-inequality violations "
            f"({n_nodes} nodes, {n_servers} servers, {n_runs} runs/point)"
        ),
        headers=(
            "spike fraction",
            "violation rate",
            "NSA norm",
            "DGA norm",
            "NSA/DGA",
        ),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 4. Estimated (Vivaldi) latencies
# ----------------------------------------------------------------------
def ablation_estimated_latencies(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    algorithms: Sequence[str] = (
        "nearest-server",
        "greedy",
        "distributed-greedy",
    ),
    embedding_rounds: int = 30,
    seed: int = 0,
) -> AblationResult:
    """Solve on Vivaldi-estimated latencies, score on the truth.

    For each algorithm: normalized interactivity of the assignment
    computed from measured latencies vs from coordinates, both evaluated
    on the measured matrix.
    """
    estimated, quality = embed_latencies(
        matrix, rounds=embedding_rounds, seed=seed
    )
    servers = random_placement(matrix, n_servers, seed=seed)
    true_problem = ClientAssignmentProblem(matrix, servers)
    est_problem = ClientAssignmentProblem(estimated, servers)
    lb = interaction_lower_bound(true_problem)
    rows = []
    for name in algorithms:
        fn = get_algorithm(name)
        measured = fn(true_problem, seed=seed)
        from_coords = fn(est_problem, seed=seed)
        # Re-score the coordinate-driven assignment on the true matrix.
        rescored = Assignment(true_problem, from_coords.server_of)
        d_measured = max_interaction_path_length(measured) / lb
        d_coords = max_interaction_path_length(rescored) / lb
        rows.append(
            (name, d_measured, d_coords, d_coords / d_measured)
        )
    title = (
        "Ablation: measured vs Vivaldi-estimated latencies "
        f"({n_servers} random servers; embedding median rel. error "
        f"{quality.median_relative_error:.1%})"
    )
    return AblationResult(
        title=title,
        headers=("algorithm", "measured norm", "estimated norm", "penalty"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 5. Placement strategies
# ----------------------------------------------------------------------
def ablation_placement_strategies(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    n_runs: int = 5,
    seed: int = 0,
) -> AblationResult:
    """Interactivity of DGA under different server placements."""
    strategies = {
        "random": random_placement,
        "best-of-16-random": best_of_random_placement,
        "k-center-a": kcenter_a,
        "k-center-b": kcenter_b,
        "k-median": k_median_placement,
        "medoids": medoid_placement,
    }
    rows = []
    for name, place in strategies.items():
        norms = []
        for run in range(n_runs):
            run_seed = derive_seed(seed, 35, run)
            servers = place(matrix, n_servers, seed=run_seed)
            problem = ClientAssignmentProblem(matrix, servers)
            lb = interaction_lower_bound(problem)
            norms.append(distributed_greedy_detailed(problem).final_d / lb)
        rows.append((name, float(np.mean(norms)), float(np.std(norms))))
    return AblationResult(
        title=(
            f"Ablation: server placement strategies under DGA "
            f"({n_servers} servers, {n_runs} runs)"
        ),
        headers=("placement", "DGA norm (mean)", "std"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# 6. Measurement error (King campaign)
# ----------------------------------------------------------------------
def ablation_measurement_error(
    matrix: LatencyMatrix,
    *,
    n_servers: int = 30,
    probes_sweep: Sequence[int] = (1, 3, 10),
    jitter_sigma: float = 0.3,
    seed: int = 0,
) -> AblationResult:
    """Assign on King-measured latencies, score on the truth.

    Simulates measurement campaigns with increasing probe counts
    (less per-pair noise) and reports the interactivity penalty of the
    resulting assignments relative to assigning on the true matrix.
    Complements :func:`ablation_estimated_latencies` (coordinates) with
    the direct-measurement error mode.
    """
    from repro.datasets.measurement import (
        MeasurementCampaign,
        measurement_error_report,
        simulate_king_measurements,
    )
    from repro.net.jitter import LogNormalJitter

    servers = random_placement(matrix, n_servers, seed=seed)
    true_problem = ClientAssignmentProblem(matrix, servers)
    lb = interaction_lower_bound(true_problem)
    baseline = (
        max_interaction_path_length(get_algorithm("greedy")(true_problem)) / lb
    )
    rows = [("truth", 0.0, baseline, 1.0)]
    for probes in probes_sweep:
        campaign = MeasurementCampaign(
            probes_per_pair=probes, jitter=LogNormalJitter(jitter_sigma)
        )
        raw = simulate_king_measurements(matrix, campaign, seed=seed)
        measured = LatencyMatrix(raw)
        med_err, _p90 = measurement_error_report(matrix, raw)
        measured_problem = ClientAssignmentProblem(measured, servers)
        assignment = get_algorithm("greedy")(measured_problem, seed=seed)
        rescored = Assignment(true_problem, assignment.server_of)
        norm = max_interaction_path_length(rescored) / lb
        rows.append((f"{probes} probe(s)", med_err, norm, norm / baseline))
    return AblationResult(
        title=(
            "Ablation: King measurement error vs assignment quality "
            f"({n_servers} random servers, lognormal sigma={jitter_sigma})"
        ),
        headers=("latency source", "median rel. error", "norm", "penalty"),
        rows=tuple(rows),
    )
