"""One-call regeneration of the paper's entire evaluation.

:func:`run_full_evaluation` produces every figure series, the claims
checklist and (optionally) the ablation studies for a profile, writes
machine-readable JSON plus a human-readable ``report.txt`` into an
output directory, and returns the in-memory bundle. The CLI exposes it
as ``dia-cap report``.

Directory layout::

    <out>/
      fig7_random.json  fig7_k-center-a.json  fig7_k-center-b.json
      fig8.json  fig9.json
      fig10_random.json fig10_k-center-a.json fig10_k-center-b.json
      report.txt
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.ablations import (
    AblationResult,
    ablation_dga_initial,
    ablation_greedy_cost,
    ablation_placement_strategies,
)
from repro.experiments.claims import ClaimResult, run_all_claims
from repro.experiments.config import ExperimentProfile
from repro.experiments.figures import (
    Fig7Series,
    Fig8Series,
    Fig9Trace,
    Fig10Series,
    dataset_for,
    fig7,
    fig8,
    fig9,
    fig10,
)
from repro.experiments.persistence import save_result
from repro.experiments.reporting import (
    render_claims,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
)
from repro.experiments.runner import PLACEMENT_NAMES
from repro.obs import span
from repro.parallel import TrialPool
from repro.parallel.pool import WorkersLike

PathLike = Union[str, os.PathLike]


@dataclass
class EvaluationBundle:
    """Everything one profile's evaluation produced."""

    profile: ExperimentProfile
    fig7_panels: Dict[str, Fig7Series]
    fig8_series: Fig8Series
    fig9_traces: List[Fig9Trace]
    fig10_panels: Dict[str, Fig10Series]
    claims: List[ClaimResult]
    ablations: List[AblationResult] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        """Whether every §V claim passed."""
        return all(c.holds for c in self.claims)

    def render(self) -> str:
        """The full text report."""
        sections = [
            f"dia-cap evaluation report — profile '{self.profile.name}' "
            f"({self.profile.n_nodes} nodes, dataset "
            f"{self.profile.dataset}, seed {self.profile.seed})",
            "",
        ]
        from repro.experiments.ascii_charts import render_series_summary

        for placement in PLACEMENT_NAMES:
            panel = self.fig7_panels[placement]
            sections.append(render_fig7(panel))
            sections.append(
                render_series_summary(
                    f"  (trend over {panel.server_counts[0]}..{panel.server_counts[-1]} servers)",
                    panel.server_counts,
                    {a: panel.series(a) for a in panel.points[0].mean},
                )
            )
            sections.append("")
        sections.append(render_fig8(self.fig8_series))
        sections.append("")
        sections.append(render_fig9(self.fig9_traces))
        sections.append("")
        for placement in PLACEMENT_NAMES:
            sections.append(render_fig10(self.fig10_panels[placement]))
            sections.append("")
        sections.append(render_claims(self.claims))
        for ablation in self.ablations:
            sections.append("")
            sections.append(ablation.render())
        sections.append("")
        return "\n".join(sections)


def run_full_evaluation(
    profile: ExperimentProfile,
    *,
    out_dir: Optional[PathLike] = None,
    include_ablations: bool = False,
    progress: Optional[callable] = None,
    workers: WorkersLike = 0,
    pool: Optional[TrialPool] = None,
) -> EvaluationBundle:
    """Regenerate every figure (and optionally the ablations).

    Parameters
    ----------
    profile:
        Scale/seed bundle.
    out_dir:
        When given, JSON series and ``report.txt`` are written there
        (the directory is created if needed).
    include_ablations:
        Also run the matrix-level ablation studies (slower).
    progress:
        Optional ``callable(str)`` invoked before each stage — the CLI
        passes ``print``.
    workers:
        Trial-execution parallelism: ``0`` (default) runs serially,
        ``-1`` uses every CPU, ``N > 0`` spawns ``N`` worker processes.
        Results are bit-identical for every setting (see
        ``docs/parallel.md``).
    pool:
        An existing :class:`~repro.parallel.TrialPool` to submit
        through instead of creating one; ``workers`` is then ignored
        and the caller keeps ownership (the pool is not closed here).
    """
    say = progress if progress is not None else (lambda _msg: None)
    say(f"generating {profile.dataset}-like matrix ({profile.n_nodes} nodes)")
    matrix = dataset_for(profile)

    owns_pool = pool is None
    if owns_pool:
        pool = TrialPool(workers)
    # Entered/exited manually so the span closes inside the existing
    # try/finally without re-indenting the whole stage sequence.
    evaluation_span = span(
        "evaluation.full", profile=profile.name, ablations=include_ablations
    )
    evaluation_span.__enter__()
    try:
        fig7_panels = {}
        for placement in PLACEMENT_NAMES:
            say(f"fig 7 ({placement})")
            fig7_panels[placement] = fig7(
                profile, placement, matrix=matrix, pool=pool
            )
        say("fig 8")
        fig8_series = fig8(profile, matrix=matrix, pool=pool)
        say("fig 9")
        fig9_traces = fig9(profile, matrix=matrix, pool=pool)
        fig10_panels = {}
        for placement in PLACEMENT_NAMES:
            say(f"fig 10 ({placement})")
            fig10_panels[placement] = fig10(
                profile, placement, matrix=matrix, pool=pool
            )

        say("claims")
        claims = run_all_claims(
            fig7_panels["random"],
            fig8_series,
            fig9_traces,
            fig10_panels["random"],
            n_clients=matrix.n_nodes,
        )

        ablations: List[AblationResult] = []
        if include_ablations:
            say("ablations")
            ablations = [
                ablation_dga_initial(
                    matrix,
                    n_servers=min(30, profile.fixed_servers),
                    seed=profile.seed,
                    pool=pool,
                ),
                ablation_greedy_cost(
                    matrix,
                    n_servers=min(30, profile.fixed_servers),
                    seed=profile.seed,
                    pool=pool,
                ),
                ablation_placement_strategies(
                    matrix,
                    n_servers=min(25, profile.fixed_servers),
                    seed=profile.seed,
                    pool=pool,
                ),
            ]
        say(pool.stats.describe())
    finally:
        evaluation_span.__exit__(None, None, None)
        if owns_pool:
            pool.close()

    bundle = EvaluationBundle(
        profile=profile,
        fig7_panels=fig7_panels,
        fig8_series=fig8_series,
        fig9_traces=fig9_traces,
        fig10_panels=fig10_panels,
        claims=claims,
        ablations=ablations,
    )

    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for placement, series in fig7_panels.items():
            save_result(directory / f"fig7_{placement}.json", series)
        save_result(directory / "fig8.json", fig8_series)
        save_result(directory / "fig9.json", fig9_traces)
        for placement, series in fig10_panels.items():
            save_result(directory / f"fig10_{placement}.json", series)
        (directory / "report.txt").write_text(bundle.render(), encoding="utf-8")
        say(f"wrote {directory}/report.txt")
    return bundle
