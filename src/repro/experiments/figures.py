"""Per-figure data-series generators (paper §V, Figs. 7-10).

Each ``figN`` function regenerates the data behind the corresponding
figure as plain dataclasses of numbers — the benchmark harness and CLI
render them as text tables; plotting is deliberately out of scope (no
matplotlib dependency).

All functions take an :class:`~repro.experiments.config.ExperimentProfile`
so the same code runs at test, laptop, or paper scale, and an optional
:class:`~repro.parallel.TrialPool` to fan the figure's trials out across
worker processes. Each figure flattens its *entire* trial grid (all
x-coordinates x all runs) into one batch before submission, so a pool
with N workers stays busy even when individual coordinates have few
runs. Results are bit-identical with and without a pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import distributed_greedy_detailed, paper_algorithm_names
from repro.errors import TrialExecutionError
from repro.experiments.config import ExperimentProfile
from repro.experiments.runner import (
    PLACEMENT_NAMES,
    PlacementTrial,
    SweepPoint,
    aggregate_sweep,
    placement_trials,
    run_placement_trial,
)
from repro.net.latency import LatencyMatrix
from repro.obs import span
from repro.parallel import TrialPool, instance_cache
from repro.parallel.pool import run_trials
from repro.utils.rng import derive_seed


def dataset_for(profile: ExperimentProfile) -> LatencyMatrix:
    """The profile's synthetic latency matrix (deterministic per seed)."""
    from repro.datasets import synthesize_meridian_like, synthesize_mit_like
    from repro.obs import current_manifest, fingerprint_matrix

    if profile.dataset == "mit":
        matrix = synthesize_mit_like(profile.n_nodes, seed=profile.seed)
    else:
        matrix = synthesize_meridian_like(profile.n_nodes, seed=profile.seed)
    # Stamp the ambient run manifest (installed by the CLI) with the
    # dataset's content fingerprint the first time it is generated.
    manifest = current_manifest()
    if manifest is not None and manifest.dataset_fingerprint is None:
        manifest.dataset_fingerprint = fingerprint_matrix(matrix)
    return matrix


# ----------------------------------------------------------------------
# Fig. 7 — normalized interactivity vs number of servers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Series:
    """One panel of Fig. 7 (one placement strategy)."""

    placement: str
    points: Tuple[SweepPoint, ...]

    def series(self, algorithm: str) -> List[float]:
        """Mean normalized interactivity by server count, for plotting."""
        return [p.mean[algorithm] for p in self.points]

    @property
    def server_counts(self) -> List[int]:
        return [p.x for p in self.points]


def fig7(
    profile: ExperimentProfile,
    placement: str = "random",
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
    pool: Optional[TrialPool] = None,
) -> Fig7Series:
    """Fig. 7 panel: interactivity vs server count for one placement.

    ``placement`` is ``random`` (panel a, averaged over
    ``profile.n_random_runs`` placements), ``k-center-a`` (b) or
    ``k-center-b`` (c).
    """
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    trials: List[PlacementTrial] = []
    for k in profile.server_counts:
        trials.extend(
            placement_trials(
                placement,
                k,
                algorithms,
                n_runs=profile.n_random_runs,
                seed=profile.seed,
            )
        )
    with span("fig.fig7", placement=placement, trials=len(trials)):
        outcomes = run_trials(
            run_placement_trial, trials, matrix=matrix, pool=pool
        )
        points = aggregate_sweep(trials, outcomes, algorithms)
    return Fig7Series(placement=placement, points=tuple(points))


# ----------------------------------------------------------------------
# Fig. 8 — CDF of normalized interactivity (80 random servers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Series:
    """Per-algorithm sorted normalized-interactivity samples."""

    n_servers: int
    samples: Dict[str, Tuple[float, ...]]

    def cdf(self, algorithm: str) -> Tuple[np.ndarray, np.ndarray]:
        """(x, fraction-of-runs <= x) arrays for plotting."""
        values = np.sort(np.asarray(self.samples[algorithm]))
        fractions = np.arange(1, values.size + 1) / values.size
        return values, fractions

    def fraction_above(self, algorithm: str, threshold: float) -> float:
        """Fraction of runs with normalized interactivity > threshold."""
        values = np.asarray(self.samples[algorithm])
        return float((values > threshold).mean())


def fig8(
    profile: ExperimentProfile,
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
    pool: Optional[TrialPool] = None,
) -> Fig8Series:
    """Fig. 8: distribution of normalized interactivity over random runs."""
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    # Seeds follow the historical fig-8 stream (derive_seed(seed, 8, run))
    # rather than placement_trials' generic stream, keeping samples
    # byte-compatible with pre-parallel releases.
    trials = [
        PlacementTrial(
            x=run,
            placement="random",
            n_servers=profile.fixed_servers,
            algorithms=tuple(algorithms),
            seed=derive_seed(profile.seed, 8, run),
        )
        for run in range(profile.fig8_runs)
    ]
    with span("fig.fig8", trials=len(trials)):
        outcomes = run_trials(
            run_placement_trial, trials, matrix=matrix, pool=pool
        )
    samples: Dict[str, List[float]] = {name: [] for name in algorithms}
    n_failed = 0
    for outcome in outcomes:
        if not outcome.ok:
            n_failed += 1
            continue
        for name, value in outcome.value.normalized().items():
            samples[name].append(value)
    if n_failed == len(outcomes):
        raise TrialExecutionError(f"all {n_failed} fig-8 trials failed")
    return Fig8Series(
        n_servers=profile.fixed_servers,
        samples={name: tuple(vals) for name, vals in samples.items()},
    )


# ----------------------------------------------------------------------
# Fig. 9 — Distributed-Greedy convergence trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Trace:
    """Normalized D after each DGA assignment modification."""

    placement: str
    n_servers: int
    #: normalized_trace[i] = D after i modifications, divided by LB.
    normalized_trace: Tuple[float, ...]
    converged: bool

    @property
    def n_modifications(self) -> int:
        return len(self.normalized_trace) - 1

    def improvement_fraction_at(self, n: int) -> float:
        """Fraction of the total improvement achieved after n moves."""
        start = self.normalized_trace[0]
        end = self.normalized_trace[-1]
        total = start - end
        if total <= 0:
            return 1.0
        at = self.normalized_trace[min(n, len(self.normalized_trace) - 1)]
        return (start - at) / total


@dataclass(frozen=True)
class Fig9Task:
    """One DGA convergence-trace trial (one placement strategy)."""

    placement: str
    n_servers: int
    seed: Optional[int]


def run_fig9_trial(matrix: LatencyMatrix, task: Fig9Task) -> Fig9Trace:
    """Worker-side Fig. 9 trial: one full DGA trace, normalized."""
    cached = instance_cache().instance(
        matrix, task.placement, task.n_servers, task.seed
    )
    result = distributed_greedy_detailed(cached.problem)
    return Fig9Trace(
        placement=task.placement,
        n_servers=task.n_servers,
        normalized_trace=tuple(t / cached.lower_bound for t in result.trace),
        converged=result.converged,
    )


def fig9(
    profile: ExperimentProfile,
    *,
    placements: Sequence[str] = PLACEMENT_NAMES,
    matrix: Optional[LatencyMatrix] = None,
    pool: Optional[TrialPool] = None,
) -> List[Fig9Trace]:
    """Fig. 9: DGA's D after each modification, per placement."""
    if matrix is None:
        matrix = dataset_for(profile)
    tasks = [
        Fig9Task(
            placement=placement,
            n_servers=profile.fixed_servers,
            seed=derive_seed(profile.seed, 9, PLACEMENT_NAMES.index(placement)),
        )
        for placement in placements
    ]
    with span("fig.fig9", trials=len(tasks)):
        outcomes = run_trials(run_fig9_trial, tasks, matrix=matrix, pool=pool)
    traces: List[Fig9Trace] = []
    for outcome in outcomes:
        if not outcome.ok:
            raise TrialExecutionError(
                f"fig-9 trace for placement "
                f"{tasks[outcome.index].placement!r} failed: {outcome.error}"
            )
        traces.append(outcome.value)
    return traces


# ----------------------------------------------------------------------
# Fig. 10 — impact of server capacity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Series:
    """One panel of Fig. 10 (one placement strategy)."""

    placement: str
    n_servers: int
    points: Tuple[SweepPoint, ...]

    def series(self, algorithm: str) -> List[float]:
        return [p.mean[algorithm] for p in self.points]

    @property
    def capacities(self) -> List[int]:
        return [p.x for p in self.points]


def fig10(
    profile: ExperimentProfile,
    placement: str = "random",
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
    pool: Optional[TrialPool] = None,
) -> Fig10Series:
    """Fig. 10 panel: interactivity vs per-server capacity.

    Capacities are scaled from the paper's 1796-node sweep to the
    profile's client count (see
    :meth:`~repro.experiments.config.ExperimentProfile.scaled_capacities`)
    so that capacity pressure — the ratio to the balanced load
    ``|C| / |S|`` — matches the paper's.

    Every capacity on the x-axis shares its run's server placement, so
    the per-process instance cache builds each placement (and its lower
    bound) once for the whole sweep instead of once per capacity.
    """
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    trials: List[PlacementTrial] = []
    for capacity in profile.scaled_capacities():
        trials.extend(
            placement_trials(
                placement,
                profile.fixed_servers,
                algorithms,
                n_runs=profile.n_random_runs,
                seed=profile.seed,
                capacity=capacity,
            )
        )
    with span("fig.fig10", placement=placement, trials=len(trials)):
        outcomes = run_trials(
            run_placement_trial, trials, matrix=matrix, pool=pool
        )
        points = aggregate_sweep(trials, outcomes, algorithms)
    return Fig10Series(
        placement=placement,
        n_servers=profile.fixed_servers,
        points=tuple(points),
    )
