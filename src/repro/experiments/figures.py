"""Per-figure data-series generators (paper §V, Figs. 7-10).

Each ``figN`` function regenerates the data behind the corresponding
figure as plain dataclasses of numbers — the benchmark harness and CLI
render them as text tables; plotting is deliberately out of scope (no
matplotlib dependency).

All functions take an :class:`~repro.experiments.config.ExperimentProfile`
so the same code runs at test, laptop, or paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import distributed_greedy_detailed, paper_algorithm_names
from repro.core import (
    ClientAssignmentProblem,
    interaction_lower_bound,
)
from repro.datasets import synthesize_meridian_like, synthesize_mit_like
from repro.experiments.config import ExperimentProfile
from repro.experiments.runner import (
    PLACEMENT_NAMES,
    PLACEMENTS,
    SweepPoint,
    run_placement_sweep,
)
from repro.net.latency import LatencyMatrix
from repro.utils.rng import derive_seed


def dataset_for(profile: ExperimentProfile) -> LatencyMatrix:
    """The profile's synthetic latency matrix (deterministic per seed)."""
    if profile.dataset == "mit":
        return synthesize_mit_like(profile.n_nodes, seed=profile.seed)
    return synthesize_meridian_like(profile.n_nodes, seed=profile.seed)


# ----------------------------------------------------------------------
# Fig. 7 — normalized interactivity vs number of servers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Series:
    """One panel of Fig. 7 (one placement strategy)."""

    placement: str
    points: Tuple[SweepPoint, ...]

    def series(self, algorithm: str) -> List[float]:
        """Mean normalized interactivity by server count, for plotting."""
        return [p.mean[algorithm] for p in self.points]

    @property
    def server_counts(self) -> List[int]:
        return [p.x for p in self.points]


def fig7(
    profile: ExperimentProfile,
    placement: str = "random",
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
) -> Fig7Series:
    """Fig. 7 panel: interactivity vs server count for one placement.

    ``placement`` is ``random`` (panel a, averaged over
    ``profile.n_random_runs`` placements), ``k-center-a`` (b) or
    ``k-center-b`` (c).
    """
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    points = []
    for k in profile.server_counts:
        point, _results = run_placement_sweep(
            matrix,
            placement,
            k,
            algorithms,
            n_runs=profile.n_random_runs,
            seed=profile.seed,
        )
        points.append(point)
    return Fig7Series(placement=placement, points=tuple(points))


# ----------------------------------------------------------------------
# Fig. 8 — CDF of normalized interactivity (80 random servers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Series:
    """Per-algorithm sorted normalized-interactivity samples."""

    n_servers: int
    samples: Dict[str, Tuple[float, ...]]

    def cdf(self, algorithm: str) -> Tuple[np.ndarray, np.ndarray]:
        """(x, fraction-of-runs <= x) arrays for plotting."""
        values = np.sort(np.asarray(self.samples[algorithm]))
        fractions = np.arange(1, values.size + 1) / values.size
        return values, fractions

    def fraction_above(self, algorithm: str, threshold: float) -> float:
        """Fraction of runs with normalized interactivity > threshold."""
        values = np.asarray(self.samples[algorithm])
        return float((values > threshold).mean())


def fig8(
    profile: ExperimentProfile,
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
) -> Fig8Series:
    """Fig. 8: distribution of normalized interactivity over random runs."""
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    samples: Dict[str, List[float]] = {name: [] for name in algorithms}
    for run in range(profile.fig8_runs):
        run_seed = derive_seed(profile.seed, 8, run)
        servers = PLACEMENTS["random"](matrix, profile.fixed_servers, seed=run_seed)
        problem = ClientAssignmentProblem(matrix, servers)
        lb = interaction_lower_bound(problem)
        from repro.experiments.runner import evaluate_instance

        result = evaluate_instance(
            problem, algorithms, seed=run_seed, lower_bound=lb
        )
        for name, value in result.normalized().items():
            samples[name].append(value)
    return Fig8Series(
        n_servers=profile.fixed_servers,
        samples={name: tuple(vals) for name, vals in samples.items()},
    )


# ----------------------------------------------------------------------
# Fig. 9 — Distributed-Greedy convergence trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Trace:
    """Normalized D after each DGA assignment modification."""

    placement: str
    n_servers: int
    #: normalized_trace[i] = D after i modifications, divided by LB.
    normalized_trace: Tuple[float, ...]
    converged: bool

    @property
    def n_modifications(self) -> int:
        return len(self.normalized_trace) - 1

    def improvement_fraction_at(self, n: int) -> float:
        """Fraction of the total improvement achieved after n moves."""
        start = self.normalized_trace[0]
        end = self.normalized_trace[-1]
        total = start - end
        if total <= 0:
            return 1.0
        at = self.normalized_trace[min(n, len(self.normalized_trace) - 1)]
        return (start - at) / total


def fig9(
    profile: ExperimentProfile,
    *,
    placements: Sequence[str] = PLACEMENT_NAMES,
    matrix: Optional[LatencyMatrix] = None,
) -> List[Fig9Trace]:
    """Fig. 9: DGA's D after each modification, per placement."""
    if matrix is None:
        matrix = dataset_for(profile)
    traces: List[Fig9Trace] = []
    for placement in placements:
        run_seed = derive_seed(profile.seed, 9, PLACEMENT_NAMES.index(placement))
        servers = PLACEMENTS[placement](matrix, profile.fixed_servers, seed=run_seed)
        problem = ClientAssignmentProblem(matrix, servers)
        lb = interaction_lower_bound(problem)
        result = distributed_greedy_detailed(problem)
        traces.append(
            Fig9Trace(
                placement=placement,
                n_servers=profile.fixed_servers,
                normalized_trace=tuple(t / lb for t in result.trace),
                converged=result.converged,
            )
        )
    return traces


# ----------------------------------------------------------------------
# Fig. 10 — impact of server capacity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Series:
    """One panel of Fig. 10 (one placement strategy)."""

    placement: str
    n_servers: int
    points: Tuple[SweepPoint, ...]

    def series(self, algorithm: str) -> List[float]:
        return [p.mean[algorithm] for p in self.points]

    @property
    def capacities(self) -> List[int]:
        return [p.x for p in self.points]


def fig10(
    profile: ExperimentProfile,
    placement: str = "random",
    *,
    algorithms: Optional[Sequence[str]] = None,
    matrix: Optional[LatencyMatrix] = None,
) -> Fig10Series:
    """Fig. 10 panel: interactivity vs per-server capacity.

    Capacities are scaled from the paper's 1796-node sweep to the
    profile's client count (see
    :meth:`~repro.experiments.config.ExperimentProfile.scaled_capacities`)
    so that capacity pressure — the ratio to the balanced load
    ``|C| / |S|`` — matches the paper's.
    """
    if algorithms is None:
        algorithms = paper_algorithm_names()
    if matrix is None:
        matrix = dataset_for(profile)
    points = []
    for capacity in profile.scaled_capacities():
        point, _results = run_placement_sweep(
            matrix,
            placement,
            profile.fixed_servers,
            algorithms,
            n_runs=profile.n_random_runs,
            seed=profile.seed,
            capacity=capacity,
        )
        points.append(point)
    return Fig10Series(
        placement=placement,
        n_servers=profile.fixed_servers,
        points=tuple(points),
    )
