"""Plain-text rendering of experiment results (figure tables, claims).

The benchmark harness prints "the same rows/series the paper reports";
these helpers format them uniformly. No plotting dependency — the tables
are the artifact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.claims import ClaimResult
from repro.experiments.figures import (
    Fig7Series,
    Fig8Series,
    Fig9Trace,
    Fig10Series,
)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_fig7(series: Fig7Series) -> str:
    """Fig. 7 panel as a table: one row per server count."""
    algorithms = list(series.points[0].mean)
    headers = ["servers", *algorithms]
    rows = [
        [point.x, *[point.mean[a] for a in algorithms]] for point in series.points
    ]
    title = (
        f"Fig.7 normalized interactivity vs number of servers "
        f"({series.placement} placement, {series.points[0].n_runs} run(s)/point)"
    )
    return f"{title}\n{format_table(headers, rows)}"


def render_fig8(series: Fig8Series, *, thresholds: Sequence[float] = (1.5, 2.0, 3.0)) -> str:
    """Fig. 8 as tail-probability rows per algorithm."""
    headers = ["algorithm", "median", *[f"P(>{t:g})" for t in thresholds]]
    rows = []
    import numpy as np

    for name, values in series.samples.items():
        arr = np.asarray(values)
        rows.append(
            [
                name,
                float(np.median(arr)),
                *[f"{(arr > t).mean():.1%}" for t in thresholds],
            ]
        )
    title = (
        f"Fig.8 normalized interactivity distribution "
        f"({series.n_servers} random servers, {len(next(iter(series.samples.values())))} runs)"
    )
    return f"{title}\n{format_table(headers, rows)}"


def render_fig9(traces: Sequence[Fig9Trace]) -> str:
    """Fig. 9 as one row per placement with trace milestones."""
    headers = [
        "placement",
        "initial",
        "after 10",
        "after 20",
        "after 40",
        "final",
        "mods",
        "converged",
    ]
    rows = []
    for t in traces:
        tr = t.normalized_trace

        def at(n: int) -> float:
            return tr[min(n, len(tr) - 1)]

        rows.append(
            [
                t.placement,
                tr[0],
                at(10),
                at(20),
                at(40),
                tr[-1],
                t.n_modifications,
                t.converged,
            ]
        )
    title = "Fig.9 Distributed-Greedy normalized D vs assignment modifications"
    return f"{title}\n{format_table(headers, rows)}"


def render_fig10(series: Fig10Series) -> str:
    """Fig. 10 panel as a table: one row per capacity."""
    algorithms = list(series.points[0].mean)
    headers = ["capacity", *algorithms]
    rows = [
        [point.x, *[point.mean[a] for a in algorithms]] for point in series.points
    ]
    title = (
        f"Fig.10 normalized interactivity vs server capacity "
        f"({series.placement} placement, {series.n_servers} servers)"
    )
    return f"{title}\n{format_table(headers, rows)}"


def render_claims(claims: Sequence[ClaimResult]) -> str:
    """Claims checklist with measured values."""
    headers = ["holds", "claim", "measured"]
    rows = [["PASS" if c.holds else "FAIL", c.claim, c.measured] for c in claims]
    return f"Paper claims (§V):\n{format_table(headers, rows)}"
