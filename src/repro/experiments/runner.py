"""Instance evaluation and multi-run aggregation.

The unit of work is *evaluate one problem instance with one or more
algorithms*: compute the super-optimal lower bound once, run each
algorithm, and record raw D, normalized interactivity, and wall time.
Multi-run helpers sweep placements (the paper averages 1000 random
placements per data point) with per-run derived seeds so any single run
is independently reproducible.

Trials are expressed as :class:`PlacementTrial` tasks executed through
:mod:`repro.parallel` — inline by default, fanned out across worker
processes when the caller supplies a :class:`~repro.parallel.TrialPool`
with ``workers > 0``. Both paths run the same
:func:`run_placement_trial` function on the same derived seeds, so
results are bit-identical regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import run_algorithm
from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.net.latency import LatencyMatrix
from repro.parallel import TrialPool, instance_cache
from repro.parallel.cache import PLACEMENT_STRATEGIES
from repro.parallel.pool import TrialOutcome, run_trials
from repro.utils.rng import derive_seed

#: Placement strategies by experiment name (the canonical registry
#: lives in :mod:`repro.parallel.cache` so worker-side instance caching
#: and the experiment layer agree on names).
PLACEMENTS = PLACEMENT_STRATEGIES

PLACEMENT_NAMES = tuple(PLACEMENTS)


@dataclass(frozen=True)
class AlgorithmScore:
    """One algorithm's result on one instance."""

    algorithm: str
    max_path_length: float
    normalized: float
    seconds: float
    #: Candidate (client, server) objective evaluations performed.
    n_evaluations: int = 0


@dataclass(frozen=True)
class InstanceResult:
    """All algorithms' results on one instance."""

    lower_bound: float
    scores: Tuple[AlgorithmScore, ...]

    def normalized(self) -> Dict[str, float]:
        """``{algorithm: normalized interactivity}``."""
        return {s.algorithm: s.normalized for s in self.scores}


def evaluate_instance(
    problem: ClientAssignmentProblem,
    algorithms: Sequence[str],
    *,
    seed: Optional[int] = None,
    lower_bound: Optional[float] = None,
) -> InstanceResult:
    """Run the named algorithms on one instance and score them.

    ``lower_bound`` can be supplied to avoid recomputation when several
    capacity settings share a placement (the bound ignores capacities).
    """
    if lower_bound is None:
        lower_bound = interaction_lower_bound(problem)
    scores: List[AlgorithmScore] = []
    for name in algorithms:
        result = run_algorithm(name, problem, seed=seed)
        scores.append(
            AlgorithmScore(
                algorithm=name,
                max_path_length=result.d,
                normalized=result.d / lower_bound,
                seconds=result.elapsed_seconds,
                n_evaluations=result.n_evaluations,
            )
        )
    return InstanceResult(lower_bound=lower_bound, scores=tuple(scores))


# ----------------------------------------------------------------------
# Trial tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementTrial:
    """One instance evaluation at one sweep coordinate.

    Fully self-describing and picklable: a worker process needs only
    this task plus the shared latency matrix to reproduce the trial.
    ``seed`` is the *already-derived* per-trial seed — deriving in the
    caller keeps seed streams byte-compatible with the historical
    serial loops no matter how trials are batched or distributed.
    """

    #: Sweep coordinate the trial aggregates under (server count,
    #: capacity, run index — whatever the sweep's x-axis is).
    x: int
    placement: str
    n_servers: int
    algorithms: Tuple[str, ...]
    seed: Optional[int]
    capacity: Optional[int] = None
    #: Kernel backend the trial's algorithms run with (None = default).
    #: Part of the instance-cache key, so mixed-backend sweeps in one
    #: worker never alias each other's cached problems.
    backend: Optional[str] = None


def run_placement_trial(
    matrix: LatencyMatrix, trial: PlacementTrial
) -> InstanceResult:
    """Execute one placement trial (the worker-side entry point).

    The process-local :func:`~repro.parallel.instance_cache` deduplicates
    placement construction and lower-bound computation across trials
    that share an instance (e.g. Fig. 10's capacity sweep re-uses one
    placement for every capacity).
    """
    cached = instance_cache().instance(
        matrix,
        trial.placement,
        trial.n_servers,
        trial.seed,
        capacity=trial.capacity,
        backend=trial.backend,
    )
    return evaluate_instance(
        cached.problem,
        trial.algorithms,
        seed=trial.seed,
        lower_bound=cached.lower_bound,
    )


def placement_trials(
    placement: str,
    n_servers: int,
    algorithms: Sequence[str],
    *,
    n_runs: int,
    seed: int,
    capacity: Optional[int] = None,
    x: Optional[int] = None,
) -> List[PlacementTrial]:
    """The trial tasks behind one (placement, server-count) coordinate.

    Random placement draws ``n_runs`` independent server sets; the
    deterministic K-center placements run once (additional runs would
    be identical, matching the paper's single-curve presentation).
    """
    if placement not in PLACEMENTS:
        raise KeyError(
            f"unknown placement {placement!r}; available: {PLACEMENT_NAMES}"
        )
    effective_runs = n_runs if placement == "random" else 1
    placement_tag = PLACEMENT_NAMES.index(placement)  # stable across runs
    coordinate = (n_servers if capacity is None else capacity) if x is None else x
    return [
        PlacementTrial(
            x=coordinate,
            placement=placement,
            n_servers=n_servers,
            algorithms=tuple(algorithms),
            seed=derive_seed(seed, n_servers, run, placement_tag),
            capacity=capacity,
        )
        for run in range(effective_runs)
    ]


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """Aggregated normalized interactivity at one sweep coordinate."""

    #: The sweep coordinate (number of servers, capacity, ...).
    x: int
    #: Per-algorithm mean normalized interactivity.
    mean: Dict[str, float]
    #: Per-algorithm standard deviation (zero for single-run points).
    std: Dict[str, float]
    #: Number of runs aggregated.
    n_runs: int


def aggregate_point(
    x: int, results: Sequence[InstanceResult], algorithms: Sequence[str]
) -> SweepPoint:
    """Collapse one coordinate's instance results into a sweep point."""
    means: Dict[str, float] = {}
    stds: Dict[str, float] = {}
    for name in algorithms:
        values = np.array([r.normalized()[name] for r in results])
        means[name] = float(values.mean())
        stds[name] = float(values.std())
    return SweepPoint(x=x, mean=means, std=stds, n_runs=len(results))


def aggregate_sweep(
    trials: Sequence[PlacementTrial],
    outcomes: Sequence[TrialOutcome],
    algorithms: Sequence[str],
) -> List[SweepPoint]:
    """Group trial outcomes by coordinate into ordered sweep points.

    Coordinates appear in first-submission order. Failed trials are
    excluded from aggregation (their runs simply don't contribute);
    a coordinate whose trials *all* failed raises
    :class:`~repro.errors.TrialExecutionError` via
    :func:`~repro.parallel.pool.successful_values` semantics.
    """
    from repro.errors import TrialExecutionError

    by_x: Dict[int, List[InstanceResult]] = {}
    failures: Dict[int, int] = {}
    order: List[int] = []
    for trial, outcome in zip(trials, outcomes):
        if trial.x not in by_x:
            by_x[trial.x] = []
            failures[trial.x] = 0
            order.append(trial.x)
        if outcome.ok:
            by_x[trial.x].append(outcome.value)
        else:
            failures[trial.x] += 1
    points: List[SweepPoint] = []
    for x in order:
        if not by_x[x]:
            raise TrialExecutionError(
                f"all {failures[x]} trial(s) at sweep coordinate x={x} failed"
            )
        points.append(aggregate_point(x, by_x[x], algorithms))
    return points


def run_placement_sweep(
    matrix: LatencyMatrix,
    placement: str,
    n_servers: int,
    algorithms: Sequence[str],
    *,
    n_runs: int,
    seed: int,
    capacity: Optional[int] = None,
    pool: Optional[TrialPool] = None,
) -> Tuple[SweepPoint, List[InstanceResult]]:
    """Evaluate algorithms at one (placement, server-count) coordinate.

    With a ``pool``, the runs execute as parallel trials; results are
    identical to the serial default.
    """
    trials = placement_trials(
        placement,
        n_servers,
        algorithms,
        n_runs=n_runs,
        seed=seed,
        capacity=capacity,
    )
    outcomes = run_trials(
        run_placement_trial, trials, matrix=matrix, pool=pool
    )
    (point,) = aggregate_sweep(trials, outcomes, algorithms)
    results = [o.value for o in outcomes if o.ok]
    return point, results
