"""Instance evaluation and multi-run aggregation.

The unit of work is *evaluate one problem instance with one or more
algorithms*: compute the super-optimal lower bound once, run each
algorithm, and record raw D, normalized interactivity, and wall time.
Multi-run helpers sweep placements (the paper averages 1000 random
placements per data point) with per-run derived seeds so any single run
is independently reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import run_algorithm
from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.net.latency import LatencyMatrix
from repro.placement import kcenter_a, kcenter_b, random_placement
from repro.utils.rng import derive_seed

#: Placement strategies by experiment name.
PLACEMENTS = {
    "random": random_placement,
    "k-center-a": kcenter_a,
    "k-center-b": kcenter_b,
}

PLACEMENT_NAMES = tuple(PLACEMENTS)


@dataclass(frozen=True)
class AlgorithmScore:
    """One algorithm's result on one instance."""

    algorithm: str
    max_path_length: float
    normalized: float
    seconds: float
    #: Candidate (client, server) objective evaluations performed.
    n_evaluations: int = 0


@dataclass(frozen=True)
class InstanceResult:
    """All algorithms' results on one instance."""

    lower_bound: float
    scores: Tuple[AlgorithmScore, ...]

    def normalized(self) -> Dict[str, float]:
        """``{algorithm: normalized interactivity}``."""
        return {s.algorithm: s.normalized for s in self.scores}


def evaluate_instance(
    problem: ClientAssignmentProblem,
    algorithms: Sequence[str],
    *,
    seed: Optional[int] = None,
    lower_bound: Optional[float] = None,
) -> InstanceResult:
    """Run the named algorithms on one instance and score them.

    ``lower_bound`` can be supplied to avoid recomputation when several
    capacity settings share a placement (the bound ignores capacities).
    """
    if lower_bound is None:
        lower_bound = interaction_lower_bound(problem)
    scores: List[AlgorithmScore] = []
    for name in algorithms:
        result = run_algorithm(name, problem, seed=seed)
        scores.append(
            AlgorithmScore(
                algorithm=name,
                max_path_length=result.d,
                normalized=result.d / lower_bound,
                seconds=result.elapsed_seconds,
                n_evaluations=result.n_evaluations,
            )
        )
    return InstanceResult(lower_bound=lower_bound, scores=tuple(scores))


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated normalized interactivity at one sweep coordinate."""

    #: The sweep coordinate (number of servers, capacity, ...).
    x: int
    #: Per-algorithm mean normalized interactivity.
    mean: Dict[str, float]
    #: Per-algorithm standard deviation (zero for single-run points).
    std: Dict[str, float]
    #: Number of runs aggregated.
    n_runs: int


def run_placement_sweep(
    matrix: LatencyMatrix,
    placement: str,
    n_servers: int,
    algorithms: Sequence[str],
    *,
    n_runs: int,
    seed: int,
    capacity: Optional[int] = None,
) -> Tuple[SweepPoint, List[InstanceResult]]:
    """Evaluate algorithms at one (placement, server-count) coordinate.

    Random placement draws ``n_runs`` independent server sets; the
    deterministic K-center placements run once (additional runs would be
    identical, matching the paper's single-curve presentation).
    """
    if placement not in PLACEMENTS:
        raise KeyError(
            f"unknown placement {placement!r}; available: {PLACEMENT_NAMES}"
        )
    place = PLACEMENTS[placement]
    effective_runs = n_runs if placement == "random" else 1
    placement_tag = PLACEMENT_NAMES.index(placement)  # stable across runs
    results: List[InstanceResult] = []
    for run in range(effective_runs):
        run_seed = derive_seed(seed, n_servers, run, placement_tag)
        servers = place(matrix, n_servers, seed=run_seed)
        problem = ClientAssignmentProblem(
            matrix, servers, capacities=capacity
        )
        lb = interaction_lower_bound(problem.uncapacitated())
        results.append(
            evaluate_instance(problem, algorithms, seed=run_seed, lower_bound=lb)
        )
    means: Dict[str, float] = {}
    stds: Dict[str, float] = {}
    for name in algorithms:
        values = np.array([r.normalized()[name] for r in results])
        means[name] = float(values.mean())
        stds[name] = float(values.std())
    point = SweepPoint(
        x=n_servers if capacity is None else capacity,
        mean=means,
        std=stds,
        n_runs=effective_runs,
    )
    return point, results
