"""The δ-feasibility knee: sweeping the lag through D (§II-C, live).

The paper's central analytical result is that the minimum feasible
constant lag equals the maximum interaction path length D. This
experiment makes the theorem *visible*: sweep δ across a range spanning
D, run the deterministic protocol simulation at each value (using
non-strict schedules below D), and record the late-message rate.

The expected curve is a hard knee at δ/D = 1: strictly positive
lateness for every δ < D, exactly zero for every δ ≥ D. This is the
strongest end-to-end certification the reproduction offers — the
analysis, the offset construction and the simulator all have to agree
for the knee to land on 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


from repro.core.assignment import Assignment
from repro.core.metrics import max_interaction_path_length
from repro.core.offsets import OffsetSchedule
from repro.sim.dia import simulate_assignment
from repro.sim.events import Operation
from repro.sim.workload import poisson_workload
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DeltaSweepPoint:
    """One δ setting's outcome."""

    #: δ as a fraction of D.
    delta_ratio: float
    #: Absolute δ (ms).
    delta: float
    #: Late messages (server + client side).
    late_messages: int
    #: Total messages delivered.
    total_messages: int
    #: Whether constraints (i)/(ii) report feasible.
    constraints_feasible: bool

    @property
    def late_rate(self) -> float:
        """Fraction of messages that missed their deadline."""
        if self.total_messages == 0:
            return 0.0
        return self.late_messages / self.total_messages


def delta_sweep(
    assignment: Assignment,
    *,
    ratios: Sequence[float] = (0.7, 0.85, 0.95, 0.99, 1.0, 1.05, 1.25),
    operations: Sequence[Operation] = (),
    ops_rate: float = 0.01,
    horizon: float = 500.0,
    seed: SeedLike = 0,
) -> List[DeltaSweepPoint]:
    """Sweep δ = ratio * D and measure lateness at each point.

    With no jitter the simulation is deterministic, so the knee is
    exact: ratios >= 1 must yield zero lateness; ratios < 1 must yield
    some (as long as the workload exercises the longest path's
    endpoints, which a dense Poisson workload does with overwhelming
    probability).
    """
    if not ratios:
        raise ValueError("need at least one ratio")
    d = max_interaction_path_length(assignment)
    problem = assignment.problem
    ops = (
        list(operations)
        if operations
        else poisson_workload(
            problem.n_clients, rate=ops_rate, horizon=horizon, seed=seed
        )
    )
    points: List[DeltaSweepPoint] = []
    for ratio in ratios:
        schedule = OffsetSchedule(assignment, delta=ratio * d, strict=False)
        feasible = schedule.check_constraints().feasible
        report = simulate_assignment(schedule, ops, allow_late=True)
        points.append(
            DeltaSweepPoint(
                delta_ratio=float(ratio),
                delta=float(ratio * d),
                late_messages=report.late_server_arrivals
                + report.late_client_updates,
                total_messages=report.n_messages,
                constraints_feasible=feasible,
            )
        )
    return points


def render_delta_sweep(points: Sequence[DeltaSweepPoint]) -> str:
    """ASCII table of a δ sweep."""
    from repro.experiments.reporting import format_table

    headers = ["delta/D", "delta (ms)", "late msgs", "late rate", "feasible"]
    rows = [
        [
            p.delta_ratio,
            p.delta,
            p.late_messages,
            f"{p.late_rate:.3%}",
            p.constraints_feasible,
        ]
        for p in points
    ]
    return (
        "Delta sweep: lateness vs lag (knee expected exactly at delta/D = 1)\n"
        + format_table(headers, rows)
    )
