"""Programmatic checks of the paper's §V-A headline claims.

Each claim is evaluated on generated figure data and returns a
:class:`ClaimResult` with the measured quantity, so EXPERIMENTS.md can
record paper-vs-measured side by side and the benchmark suite can assert
the *shape* of every claim (who wins, by roughly what factor) without
pinning absolute numbers.

Claims covered (paper §V-A/§V-B):

1. The two greedy algorithms significantly outperform Nearest-Server and
   Longest-First-Batch.
2. Greedy interactivity is generally close to optimal (paper: within
   ~10% of the lower bound at full scale).
3. Nearest-Server is the worst of the four algorithms.
4. In the Fig. 8 CDF, Nearest-Server exceeds 2x the bound in a
   nontrivial fraction of runs while the other algorithms hardly do.
5. Distributed-Greedy achieves >= 99% of its total improvement within a
   number of modifications that is a small fraction of the client count.
6. Under tight capacities, interactivity degrades for every algorithm,
   and Distributed-Greedy remains the best overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.figures import (
    Fig7Series,
    Fig8Series,
    Fig9Trace,
    Fig10Series,
)


@dataclass(frozen=True)
class ClaimResult:
    """One verified (or falsified) claim."""

    claim: str
    holds: bool
    #: The measured quantity backing the verdict, human-readable.
    measured: str


def check_greedy_beats_simple(fig7_series: Fig7Series) -> ClaimResult:
    """Claim 1: greedy algorithms beat NSA and LFB on average."""
    ga = np.mean(fig7_series.series("greedy"))
    dga = np.mean(fig7_series.series("distributed-greedy"))
    nsa = np.mean(fig7_series.series("nearest-server"))
    lfb = np.mean(fig7_series.series("longest-first-batch"))
    holds = max(ga, dga) < min(nsa, lfb)
    return ClaimResult(
        claim="greedy algorithms outperform NSA and LFB",
        holds=holds,
        measured=(
            f"mean normalized: GA={ga:.3f}, DGA={dga:.3f} vs "
            f"NSA={nsa:.3f}, LFB={lfb:.3f} ({fig7_series.placement})"
        ),
    )


def check_greedy_near_optimal(
    fig7_series: Fig7Series, *, tolerance: float = 1.45
) -> ClaimResult:
    """Claim 2: greedy stays close to the lower bound.

    The paper reports within ~10% (ratio 1.1) at 1796 nodes. The
    super-optimal bound is looser at small scale (fewer servers to
    choose from per client pair), so the default tolerance gives 45%
    headroom; the *paper-profile* run should approach 1.1.
    """
    worst = max(
        max(fig7_series.series("greedy")),
        max(fig7_series.series("distributed-greedy")),
    )
    return ClaimResult(
        claim=f"greedy normalized interactivity <= {tolerance}",
        holds=worst <= tolerance,
        measured=f"worst greedy point = {worst:.3f} ({fig7_series.placement})",
    )


def check_nearest_server_worst(fig7_series: Fig7Series) -> ClaimResult:
    """Claim 3: NSA produces the worst interactivity of the four."""
    nsa = float(np.mean(fig7_series.series("nearest-server")))
    others = [
        float(np.mean(fig7_series.series(a)))
        for a in ("longest-first-batch", "greedy", "distributed-greedy")
    ]
    holds = all(nsa >= o - 1e-9 for o in others)
    return ClaimResult(
        claim="nearest-server is the worst algorithm",
        holds=holds,
        measured=f"NSA={nsa:.3f} vs others={[round(o, 3) for o in others]}",
    )


def check_fig8_tail(fig8_series: Fig8Series) -> ClaimResult:
    """Claim 4: NSA has a heavy tail (> 2x bound) that the others lack."""
    nsa_tail = fig8_series.fraction_above("nearest-server", 2.0)
    other_tails = {
        a: fig8_series.fraction_above(a, 2.0)
        for a in ("longest-first-batch", "greedy", "distributed-greedy")
    }
    holds = nsa_tail > max(other_tails.values()) and max(
        other_tails["greedy"], other_tails["distributed-greedy"]
    ) <= 0.05
    return ClaimResult(
        claim="NSA exceeds 2x bound far more often than other algorithms",
        holds=holds,
        measured=(
            f"P(norm > 2): NSA={nsa_tail:.2%}, "
            + ", ".join(f"{k}={v:.2%}" for k, v in other_tails.items())
        ),
    )


def check_dga_fast_convergence(
    traces: Sequence[Fig9Trace],
    *,
    mods_per_server: float = 2.0,
    n_clients: int = 0,
) -> ClaimResult:
    """Claim 5: >= 99% of DGA's improvement lands within a small budget.

    The paper reports that ~80 modifications — about one per server and
    under 5% of the 1796 clients — capture over 99% of the improvement
    across placements. The number of modifications scales with the
    server count, not the client count (each modification targets a
    longest-path endpoint, of which there are O(|S|) groups), so the
    budget here is ``mods_per_server * |S|``; at paper scale that is
    well below 5% of the clients, reproducing the paper's statement.
    """
    if not traces:
        raise ValueError("need at least one trace")
    budget = max(1, int(mods_per_server * traces[0].n_servers))
    fractions = [t.improvement_fraction_at(budget) for t in traces]
    holds = all(f >= 0.99 for f in fractions)
    pct_clients = budget / n_clients if n_clients else float("nan")
    return ClaimResult(
        claim=(
            f">=99% of DGA improvement within {budget} modifications "
            f"({mods_per_server:g} per server; {pct_clients:.0%} of clients)"
        ),
        holds=holds,
        measured=", ".join(
            f"{t.placement}: {f:.1%} in {t.n_modifications} total mods"
            for t, f in zip(traces, fractions)
        ),
    )


def check_capacity_degradation(fig10_series: Fig10Series) -> ClaimResult:
    """Claim 6: tight capacity hurts; DGA stays best overall.

    Checks that every algorithm's tightest-capacity point is no better
    than its loosest-capacity point, and that DGA's mean over the sweep
    is the lowest.
    """
    algorithms = list(fig10_series.points[0].mean)
    degrades = all(
        fig10_series.series(a)[0] >= fig10_series.series(a)[-1] - 1e-9
        for a in algorithms
    )
    means = {a: float(np.mean(fig10_series.series(a))) for a in algorithms}
    dga_best = means["distributed-greedy"] <= min(means.values()) + 1e-9
    return ClaimResult(
        claim="capacity limits degrade interactivity; DGA best overall",
        holds=degrades and dga_best,
        measured=", ".join(f"{a}: mean={m:.3f}" for a, m in means.items()),
    )


def run_all_claims(
    fig7_series: Fig7Series,
    fig8_series: Fig8Series,
    fig9_traces: Sequence[Fig9Trace],
    fig10_series: Fig10Series,
    *,
    n_clients: int,
) -> List[ClaimResult]:
    """Evaluate every claim; order follows the paper's narrative."""
    return [
        check_greedy_beats_simple(fig7_series),
        check_greedy_near_optimal(fig7_series),
        check_nearest_server_worst(fig7_series),
        check_fig8_tail(fig8_series),
        check_dga_fast_convergence(fig9_traces, n_clients=n_clients),
        check_capacity_degradation(fig10_series),
    ]


def run_claims_for_profile(
    profile,
    *,
    matrix=None,
    pool=None,
) -> List[ClaimResult]:
    """Generate the claim-bearing figure data and evaluate every claim.

    Convenience wrapper for the CLI and tests: regenerates exactly the
    panels the checklist reads (Fig. 7/10 ``random`` panels, Fig. 8,
    Fig. 9), submitting all trials through ``pool`` when one is given.
    ``profile`` is an
    :class:`~repro.experiments.config.ExperimentProfile`; ``pool`` a
    :class:`~repro.parallel.TrialPool`.
    """
    from repro.experiments.figures import dataset_for, fig7, fig8, fig9, fig10
    from repro.obs import span

    if matrix is None:
        matrix = dataset_for(profile)
    with span("claims.run", profile=profile.name):
        return run_all_claims(
            fig7(profile, "random", matrix=matrix, pool=pool),
            fig8(profile, matrix=matrix, pool=pool),
            fig9(profile, matrix=matrix, pool=pool),
            fig10(profile, "random", matrix=matrix, pool=pool),
            n_clients=matrix.n_nodes,
        )
