"""Scale sweep: how normalized interactivity depends on instance size.

The paper reports greedy within ~10% of the super-optimal lower bound at
1796 nodes; this reproduction measures ~1.2-1.3 at laptop scales. The
sweep separates two effects:

- with the server count *fixed* (the paper's regime), DGA's normalized
  interactivity drifts down with scale (~1.22 at 200 nodes to ~1.19 at
  1600) while NSA's stays high — partial convergence toward the paper's
  level, the residual being the synthetic matrix's structure rather
  than scale;
- with the server count *proportional* to nodes, every algorithm's
  normalized level is scale-stable.

In both regimes the **gap between algorithms** — the paper's actual
claims — is stable or widening, which is what the benchmark assertions
pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.algorithms import run_algorithm
from repro.core import ClientAssignmentProblem, interaction_lower_bound
from repro.datasets import synthesize_meridian_like
from repro.placement import random_placement
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ScalePoint:
    """Aggregated results at one instance size."""

    n_nodes: int
    n_servers: int
    #: Per-algorithm mean normalized interactivity.
    normalized: Dict[str, float]
    #: Mean (over runs) of D_NSA / D_DGA — the algorithm gap, which
    #: should be roughly scale-invariant.
    nsa_over_dga: float


def scale_sweep(
    *,
    sizes: Sequence[int] = (100, 200, 400, 800),
    server_fraction: float = 0.2,
    algorithms: Sequence[str] = ("nearest-server", "greedy", "distributed-greedy"),
    n_runs: int = 5,
    seed: int = 0,
) -> List[ScalePoint]:
    """Sweep instance sizes at a fixed server-to-node ratio.

    Each size gets a fresh Meridian-like matrix (same generator
    parameters — the structure is size-invariant) and ``n_runs`` random
    placements of ``server_fraction * n`` servers.
    """
    if not 0.0 < server_fraction < 1.0:
        raise ValueError("server_fraction must be in (0, 1)")
    points: List[ScalePoint] = []
    for n in sizes:
        matrix = synthesize_meridian_like(n, seed=derive_seed(seed, 41, n))
        k = max(2, int(round(server_fraction * n)))
        sums: Dict[str, List[float]] = {a: [] for a in algorithms}
        gaps: List[float] = []
        for run in range(n_runs):
            run_seed = derive_seed(seed, 42, n, run)
            servers = random_placement(matrix, k, seed=run_seed)
            problem = ClientAssignmentProblem(matrix, servers)
            lb = interaction_lower_bound(problem)
            ds = {}
            for name in algorithms:
                ds[name] = run_algorithm(name, problem, seed=run_seed).d
                sums[name].append(ds[name] / lb)
            if "nearest-server" in ds and "distributed-greedy" in ds:
                gaps.append(ds["nearest-server"] / ds["distributed-greedy"])
        points.append(
            ScalePoint(
                n_nodes=n,
                n_servers=k,
                normalized={a: float(np.mean(sums[a])) for a in algorithms},
                nsa_over_dga=float(np.mean(gaps)) if gaps else float("nan"),
            )
        )
    return points


def render_scale_sweep(points: Sequence[ScalePoint]) -> str:
    """ASCII table of a scale sweep."""
    from repro.experiments.reporting import format_table

    algorithms = list(points[0].normalized)
    headers = ["nodes", "servers", *algorithms, "NSA/DGA gap"]
    rows = [
        [
            p.n_nodes,
            p.n_servers,
            *[p.normalized[a] for a in algorithms],
            p.nsa_over_dga,
        ]
        for p in points
    ]
    return "Scale sweep: normalized interactivity vs instance size\n" + format_table(
        headers, rows
    )
